//! Computation of the paper's evaluation tables.
//!
//! - Figure 3: total points-to pairs by output type (CI).
//! - Figure 4: locations accessed by indirect memory reads/writes.
//! - Figure 6: CS pair counts, CI totals, percent spurious.
//! - Figure 7: path × referent type distribution, all vs. spurious pairs.
//! - The §4.3 headline check: CS == CI at indirect memory references.

use crate::ci::CiResult;
use crate::cs::CsResult;
use crate::fxhash::HashSet;
use crate::path::{Pair, PathId, PathTable};
use vdg::graph::{BaseKind, Graph, NodeId, OutputId, ValueKind};

/// Abstraction over the two solvers' results, letting the table code run
/// on either.
pub trait PointsToSolution {
    /// Pairs on an output, sorted.
    fn pairs_at(&self, o: OutputId) -> &[Pair];
    /// The path universe of this solution.
    fn path_table(&self) -> &PathTable;
}

impl PointsToSolution for CiResult {
    fn pairs_at(&self, o: OutputId) -> &[Pair] {
        self.pairs(o)
    }
    fn path_table(&self) -> &PathTable {
        &self.paths
    }
}

impl PointsToSolution for CsResult {
    fn pairs_at(&self, o: OutputId) -> &[Pair] {
        self.pairs(o)
    }
    fn path_table(&self) -> &PathTable {
        &self.paths
    }
}

/// §4.2-style cost counters of one solver run, extended with the
/// difference-propagation statistics of the interned-pair-set
/// representation (see DESIGN.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounters {
    /// Pair deliveries consumed (one per `(consumer, pair)`).
    pub flow_ins: u64,
    /// Successful meets: emissions that grew a set.
    pub flow_outs: u64,
    /// Emission attempts deduplicated by the committed sets.
    pub dedup_hits: u64,
    /// Batched delta deliveries; `None` under naive propagation.
    pub delta_batches: Option<u64>,
}

impl CostCounters {
    /// Extracts the counters from a boxed solution; `None` when the
    /// solver counts nothing (Steensgaard).
    pub fn of(sol: &dyn crate::solver::Solution) -> Option<CostCounters> {
        Some(CostCounters {
            flow_ins: sol.flow_ins()?,
            flow_outs: sol.flow_outs()?,
            dedup_hits: sol.dedup_hits().unwrap_or(0),
            delta_batches: sol.delta_batches(),
        })
    }

    /// Total emission attempts — the quantity the paper calls the meet
    /// count (`flow_outs + dedup_hits`).
    pub fn meet_attempts(&self) -> u64 {
        self.flow_outs + self.dedup_hits
    }

    /// Fraction of emission attempts the committed sets rejected.
    pub fn dedup_hit_rate(&self) -> f64 {
        let attempts = self.meet_attempts();
        if attempts == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / attempts as f64
        }
    }

    /// Worklist deliveries the delta batching saved: `flow_ins −
    /// delta_batches`. `None` under naive propagation.
    pub fn deliveries_saved(&self) -> Option<u64> {
        self.delta_batches
            .map(|db| self.flow_ins.saturating_sub(db))
    }
}

/// Pair counts by output type (the columns of Figures 3 and 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairTypeCounts {
    /// Pairs on pointer-typed outputs.
    pub pointer: usize,
    /// Pairs on function-typed outputs.
    pub function: usize,
    /// Pairs on aggregate-typed outputs.
    pub aggregate: usize,
    /// Pairs on store-typed outputs.
    pub store: usize,
}

impl PairTypeCounts {
    /// Sum of all columns.
    pub fn total(&self) -> usize {
        self.pointer + self.function + self.aggregate + self.store
    }
}

/// Computes Figure 3 (or the first columns of Figure 6) for a solution.
pub fn pair_type_counts(graph: &Graph, sol: &dyn PointsToSolution) -> PairTypeCounts {
    let mut c = PairTypeCounts::default();
    for o in graph.output_ids() {
        let n = sol.pairs_at(o).len();
        match graph.output(o).kind {
            ValueKind::Ptr => c.pointer += n,
            ValueKind::Func => c.function += n,
            ValueKind::Agg { .. } => c.aggregate += n,
            ValueKind::Store => c.store += n,
            ValueKind::Scalar => {
                debug_assert_eq!(n, 0, "scalar outputs must not carry pairs");
            }
        }
    }
    c
}

/// One Figure 4 row: indirect reads or writes of one program.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IndirectRefRow {
    /// Number of indirect operations.
    pub total: usize,
    /// Operations referencing exactly one location.
    pub n1: usize,
    /// Operations referencing exactly two locations.
    pub n2: usize,
    /// Operations referencing exactly three locations.
    pub n3: usize,
    /// Operations referencing four or more locations.
    pub n4_plus: usize,
    /// Operations referencing zero locations (null-only pointers; counted
    /// in `total` but no bucket, matching the paper's footnote).
    pub n0: usize,
    /// Maximum locations referenced by any operation.
    pub max: usize,
    /// Mean locations per operation (zero-location ops included).
    pub avg: f64,
}

/// Per-op indirect-reference counts for one solution.
fn loc_count(sol: &dyn PointsToSolution, graph: &Graph, node: NodeId) -> usize {
    let loc_out = graph.input_src(node, 0);
    let mut refs: Vec<PathId> = sol.pairs_at(loc_out).iter().map(|p| p.referent).collect();
    refs.sort_unstable();
    refs.dedup();
    refs.len()
}

/// Computes the Figure 4 rows (reads, writes) for a solution.
pub fn indirect_ref_rows(
    graph: &Graph,
    sol: &dyn PointsToSolution,
) -> (IndirectRefRow, IndirectRefRow) {
    let mut read = IndirectRefRow::default();
    let mut write = IndirectRefRow::default();
    let mut read_sum = 0usize;
    let mut write_sum = 0usize;
    for (node, is_write) in graph.indirect_mem_ops() {
        let n = loc_count(sol, graph, node);
        let (row, sum) = if is_write {
            (&mut write, &mut write_sum)
        } else {
            (&mut read, &mut read_sum)
        };
        row.total += 1;
        *sum += n;
        row.max = row.max.max(n);
        match n {
            0 => row.n0 += 1,
            1 => row.n1 += 1,
            2 => row.n2 += 1,
            3 => row.n3 += 1,
            _ => row.n4_plus += 1,
        }
    }
    if read.total > 0 {
        read.avg = read_sum as f64 / read.total as f64;
    }
    if write.total > 0 {
        write.avg = write_sum as f64 / write.total as f64;
    }
    (read, write)
}

/// A Figure 6 row: CS counts by type, the CI total, and percent spurious.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpuriousRow {
    /// CS pair counts by output type.
    pub cs: PairTypeCounts,
    /// Total CI pairs.
    pub ci_total: usize,
    /// Share of CI pairs the CS analysis proved unrealizable.
    pub percent_spurious: f64,
}

/// Computes the Figure 6 row for a program.
pub fn spurious_row(graph: &Graph, ci: &CiResult, cs: &CsResult) -> SpuriousRow {
    let cs_counts = pair_type_counts(graph, cs);
    let ci_total = ci.total_pairs();
    let cs_total = cs_counts.total();
    let percent = if ci_total == 0 {
        0.0
    } else {
        100.0 * (ci_total - cs_total) as f64 / ci_total as f64
    };
    SpuriousRow {
        cs: cs_counts,
        ci_total,
        percent_spurious: percent,
    }
}

/// Path classification for Figure 7 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathClass {
    /// Paths without base-locations (relative addressing into values).
    Offset,
    /// Procedure locals and parameters.
    Local,
    /// Globals, including string literal storage (paper Fig. 7 caption).
    Global,
    /// Heap allocation sites.
    Heap,
    /// Function constants (referents only).
    Function,
}

/// Classifies a path. Synthetic heap clones classify as their origin.
pub fn classify_path(paths: &PathTable, graph: &Graph, p: PathId) -> PathClass {
    match paths.base_of(p).map(|b| paths.origin_base(b)) {
        None => PathClass::Offset,
        Some(b) => match graph.base(b).kind {
            BaseKind::Local { .. } => PathClass::Local,
            BaseKind::Global { .. } | BaseKind::StrLit { .. } => PathClass::Global,
            BaseKind::Heap { .. } => PathClass::Heap,
            BaseKind::Func { .. } => PathClass::Function,
        },
    }
}

/// A Figure 7 matrix: percentages over (referent row × path column).
/// Rows: function, local, global, heap. Columns: offset, local, global,
/// heap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeMatrix {
    /// `cells[row][col]` as a percentage of `total`.
    pub cells: [[f64; 4]; 4],
    /// Number of pairs classified.
    pub total: usize,
}

const ROW_CLASSES: [PathClass; 4] = [
    PathClass::Function,
    PathClass::Local,
    PathClass::Global,
    PathClass::Heap,
];
const COL_CLASSES: [PathClass; 4] = [
    PathClass::Offset,
    PathClass::Local,
    PathClass::Global,
    PathClass::Heap,
];

fn matrix_of(paths: &PathTable, graph: &Graph, pairs: &[Pair]) -> TypeMatrix {
    let mut counts = [[0usize; 4]; 4];
    let mut total = 0usize;
    for p in pairs {
        let pc = classify_path(paths, graph, p.path);
        let rc = classify_path(paths, graph, p.referent);
        let col = COL_CLASSES.iter().position(|&c| c == pc);
        let row = ROW_CLASSES.iter().position(|&c| c == rc);
        if let (Some(r), Some(c)) = (row, col) {
            counts[r][c] += 1;
            total += 1;
        }
    }
    let mut m = TypeMatrix {
        total,
        ..Default::default()
    };
    if total > 0 {
        for (row, counts_row) in m.cells.iter_mut().zip(counts.iter()) {
            for (cell, &n) in row.iter_mut().zip(counts_row.iter()) {
                *cell = 100.0 * n as f64 / total as f64;
            }
        }
    }
    m
}

/// Computes the two Figure 7 matrices: all CI pairs and spurious-only
/// pairs (CI − CS), aggregated over all outputs of `graph`.
pub fn type_matrices(graph: &Graph, ci: &CiResult, cs: &CsResult) -> (TypeMatrix, TypeMatrix) {
    let mut all = Vec::new();
    let mut spurious = Vec::new();
    for o in graph.output_ids() {
        let cs_set: HashSet<Pair> = cs.pairs(o).iter().copied().collect();
        for &p in ci.pairs(o) {
            all.push(p);
            if !cs_set.contains(&p) {
                spurious.push(p);
            }
        }
    }
    (
        matrix_of(&ci.paths, graph, &all),
        matrix_of(&ci.paths, graph, &spurious),
    )
}

/// One mismatch reported by [`compare_at_indirect_refs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectRefMismatch {
    /// The memory operation that differs.
    pub node: NodeId,
    /// Whether it is a write (update) rather than a read (lookup).
    pub is_write: bool,
    /// Rendered CI referents.
    pub ci_referents: Vec<String>,
    /// Rendered CS referents.
    pub cs_referents: Vec<String>,
}

/// The §4.3 headline experiment: compares the CI and CS solutions at the
/// location inputs of indirect memory references. An empty return value
/// reproduces the paper's result ("the spurious information does not
/// affect the solution at all").
pub fn compare_at_indirect_refs(
    graph: &Graph,
    ci: &CiResult,
    cs: &CsResult,
) -> Vec<IndirectRefMismatch> {
    let mut out = Vec::new();
    for (node, is_write) in graph.indirect_mem_ops() {
        let names = |paths: &PathTable, refs: Vec<PathId>| -> Vec<String> {
            let mut v: Vec<String> = refs.iter().map(|&p| paths.display(p, graph)).collect();
            v.sort();
            v
        };
        let a = names(&ci.paths, ci.loc_referents(graph, node));
        let b = names(&cs.paths, cs.loc_referents(graph, node));
        if a != b {
            out.push(IndirectRefMismatch {
                node,
                is_write,
                ci_referents: a,
                cs_referents: b,
            });
        }
    }
    out
}

/// Count of spurious (CI-only) pairs per output kind, used by the §5.2
/// analysis that all spurious pairs land on store outputs.
pub fn spurious_by_kind(graph: &Graph, ci: &CiResult, cs: &CsResult) -> PairTypeCounts {
    let mut c = PairTypeCounts::default();
    for o in graph.output_ids() {
        let cs_set: HashSet<Pair> = cs.pairs(o).iter().copied().collect();
        let n = ci.pairs(o).iter().filter(|p| !cs_set.contains(p)).count();
        match graph.output(o).kind {
            ValueKind::Ptr => c.pointer += n,
            ValueKind::Func => c.function += n,
            ValueKind::Agg { .. } => c.aggregate += n,
            ValueKind::Store => c.store += n,
            ValueKind::Scalar => {}
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::{analyze_ci, CiConfig};
    use crate::cs::{analyze_cs, CsConfig};
    use vdg::build::{lower, BuildOptions};

    fn pipeline(src: &str) -> (Graph, CiResult, CsResult) {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let ci = analyze_ci(&g, &CiConfig::default());
        let cs = analyze_cs(&g, &ci, &CsConfig::default()).expect("budget");
        (g, ci, cs)
    }

    const OUT_PARAM: &str = "int buf;\n\
        void put(int **slot) { *slot = &buf; }\n\
        int use_a(void) { int *a; put(&a); return *a; }\n\
        int use_b(void) { int *b; put(&b); return *b; }\n\
        int main(void) { return use_a() + use_b(); }";

    #[test]
    fn figure3_counts_by_kind() {
        let (g, ci, _) = pipeline(OUT_PARAM);
        let c = pair_type_counts(&g, &ci);
        assert!(c.pointer > 0);
        assert!(c.store > 0);
        assert!(c.function > 0); // FuncConst values for callees
        assert_eq!(c.total(), ci.total_pairs());
    }

    #[test]
    fn figure4_rows_bucket_by_location_count() {
        let (g, ci, _) = pipeline(
            "int a; int b;\n\
             int main(void) { int *p; int c; c = getchar();\n\
               if (c) { p = &a; } else { p = &b; }\n\
               *p = 1; return *p; }",
        );
        let (read, write) = indirect_ref_rows(&g, &ci);
        assert_eq!(read.total, 1);
        assert_eq!(read.n2, 1);
        assert_eq!(write.total, 1);
        assert_eq!(write.n2, 1);
        assert!((read.avg - 2.0).abs() < 1e-9);
        assert_eq!(read.max, 2);
    }

    #[test]
    fn figure4_counts_null_reads_in_total_only() {
        let (g, ci, _) = pipeline("int main(void) { int *p; p = NULL; return *p; }");
        let (read, _) = indirect_ref_rows(&g, &ci);
        assert_eq!(read.total, 1);
        assert_eq!(read.n0, 1);
        assert_eq!(read.n1 + read.n2 + read.n3 + read.n4_plus, 0);
        assert!(read.avg < 1e-9);
    }

    #[test]
    fn figure6_measures_spurious_percentage() {
        let (g, ci, cs) = pipeline(OUT_PARAM);
        let row = spurious_row(&g, &ci, &cs);
        assert!(row.percent_spurious > 0.0, "{row:?}");
        assert!(row.percent_spurious < 50.0, "{row:?}");
        assert_eq!(row.ci_total, ci.total_pairs());
        assert!(row.cs.total() < row.ci_total);
    }

    #[test]
    fn headline_holds_on_out_param_program() {
        let (g, ci, cs) = pipeline(OUT_PARAM);
        assert!(compare_at_indirect_refs(&g, &ci, &cs).is_empty());
    }

    #[test]
    fn headline_detects_differences_when_present() {
        // Deref of a merged callee result: CS is strictly better here, and
        // the comparator must say so.
        let (g, ci, cs) = pipeline(
            "int a; int b;\n\
             int *id(int *p) { return p; }\n\
             int main(void) { int *x; int *y; x = id(&a); y = id(&b); \
             return *x + *y; }",
        );
        let mismatches = compare_at_indirect_refs(&g, &ci, &cs);
        assert_eq!(mismatches.len(), 2);
        assert_eq!(mismatches[0].ci_referents.len(), 2);
        assert_eq!(mismatches[0].cs_referents.len(), 1);
    }

    #[test]
    fn figure7_matrices_are_percentages() {
        let (g, ci, cs) = pipeline(OUT_PARAM);
        let (all, spurious) = type_matrices(&g, &ci, &cs);
        let sum_all: f64 = all.cells.iter().flatten().sum();
        assert!((sum_all - 100.0).abs() < 1e-6, "sum {sum_all}");
        assert!(all.total > 0);
        assert!(spurious.total > 0);
        // Spurious pairs here involve locals (other callers' slots).
        let local_col: f64 = (0..4).map(|r| spurious.cells[r][1]).sum();
        assert!(local_col > 0.0);
    }

    #[test]
    fn spurious_pairs_live_on_store_outputs() {
        // Paper §5.2: "in every test case other than compress and span,
        // all of the spurious pairs are on store-valued outputs".
        let (g, ci, cs) = pipeline(OUT_PARAM);
        let spurious = spurious_by_kind(&g, &ci, &cs);
        assert!(spurious.store > 0);
        assert_eq!(spurious.pointer, 0);
        assert_eq!(spurious.function, 0);
        assert_eq!(spurious.aggregate, 0);
    }
}
