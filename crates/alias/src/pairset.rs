//! Interned points-to pairs and compact pair-id sets.
//!
//! The solvers' hot loops insert, test, and iterate points-to pairs
//! millions of times on larger programs. Hash-consing every [`Pair`]
//! into a dense `u32` [`PairId`] (backed by the crate's fixed-seed
//! FxHash, so interning order is deterministic) turns per-output
//! points-to sets into sets of small integers, which [`PairSet`] stores
//! as a sorted small-vector that spills into a bitset: O(1) membership
//! and insertion once spilled, cache-friendly ascending-id iteration,
//! and word-at-a-time union.
//!
//! [`PairSet`] also carries the *difference propagation* state: the
//! committed set plus a pending delta of ids that have been inserted
//! but not yet delivered to consumers. The invariant (documented in
//! DESIGN.md) is that every id enters the delta exactly once — at the
//! insertion that first committed it — so batched delivery forwards
//! each pair to each consumer exactly once.

use crate::fxhash::HashMap;
use crate::path::Pair;

/// How a solver schedules propagation of newly discovered pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Propagation {
    /// The seed discipline: one `(input, pair)` delivery per worklist
    /// step. Kept for the equivalence tests; results are identical.
    Naive,
    /// Difference propagation: the worklist carries outputs whose delta
    /// is non-empty, and transfer functions consume whole deltas per
    /// step (the default).
    #[default]
    Delta,
}

/// Dense id of an interned [`Pair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairId(pub u32);

/// Hash-consing table mapping [`Pair`]s to dense [`PairId`]s.
///
/// Ids are handed out in first-intern order; with the deterministic
/// FxHash seed and deterministic solver scheduling, the numbering is
/// reproducible run-to-run.
#[derive(Debug, Clone, Default)]
pub struct PairInterner {
    pairs: Vec<Pair>,
    ids: HashMap<Pair, u32>,
}

impl PairInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `p`, returning its dense id.
    #[inline]
    pub fn intern(&mut self, p: Pair) -> PairId {
        if let Some(&id) = self.ids.get(&p) {
            return PairId(id);
        }
        let id = self.pairs.len() as u32;
        self.pairs.push(p);
        self.ids.insert(p, id);
        PairId(id)
    }

    /// Resolves an id back to its pair.
    #[inline]
    pub fn resolve(&self, id: PairId) -> Pair {
        self.pairs[id.0 as usize]
    }

    /// Number of distinct interned pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Threshold (in elements) at which a set spills from the sorted
/// small-vector to the bitset representation.
const SPILL: usize = 64;

/// A set of [`PairId`]s with difference-propagation state.
///
/// Small sets are a sorted `Vec<u32>` (binary-search membership, most
/// outputs hold a handful of pairs and never allocate a bitset); past
/// [`SPILL`] elements the set becomes a bitset indexed by id with O(1)
/// membership and insertion. Iteration is always in ascending id order,
/// so downstream consumption is deterministic.
#[derive(Debug, Clone, Default)]
pub struct PairSet {
    small: Vec<u32>,
    bits: Vec<u64>,
    len: u32,
    spilled: bool,
    /// Committed-but-undelivered ids; each id is pushed exactly once,
    /// by the insertion that committed it.
    delta: Vec<u32>,
}

impl PairSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed ids.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1)/O(log n) membership test.
    #[inline]
    pub fn contains(&self, id: PairId) -> bool {
        if self.spilled {
            let (w, b) = (id.0 as usize / 64, id.0 % 64);
            self.bits.get(w).is_some_and(|word| word & (1 << b) != 0)
        } else {
            self.small.binary_search(&id.0).is_ok()
        }
    }

    /// Inserts `id` into the committed set; on first insertion also
    /// records it in the pending delta. Returns whether it was new.
    #[inline]
    pub fn insert(&mut self, id: PairId) -> bool {
        if self.spilled {
            let (w, b) = (id.0 as usize / 64, id.0 % 64);
            if w >= self.bits.len() {
                self.bits.resize(w + 1, 0);
            }
            let word = &mut self.bits[w];
            let mask = 1u64 << b;
            if *word & mask != 0 {
                return false;
            }
            *word |= mask;
        } else {
            match self.small.binary_search(&id.0) {
                Ok(_) => return false,
                Err(at) => self.small.insert(at, id.0),
            }
            if self.small.len() > SPILL {
                self.spill();
            }
        }
        self.len += 1;
        self.delta.push(id.0);
        true
    }

    fn spill(&mut self) {
        let max = *self.small.last().expect("non-empty at spill") as usize;
        self.bits = vec![0u64; max / 64 + 1];
        for &id in &self.small {
            self.bits[id as usize / 64] |= 1 << (id % 64);
        }
        self.small = Vec::new();
        self.spilled = true;
    }

    /// Takes the pending delta, leaving it empty (capacity retained by
    /// the caller handing the buffer back via [`PairSet::recycle`]).
    pub fn take_delta(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.delta)
    }

    /// Whether any committed id awaits delivery.
    pub fn has_delta(&self) -> bool {
        !self.delta.is_empty()
    }

    /// Returns a drained buffer's capacity to the delta.
    pub fn recycle(&mut self, mut buf: Vec<u32>) {
        if self.delta.is_empty() && buf.capacity() > self.delta.capacity() {
            buf.clear();
            self.delta = buf;
        }
    }

    /// Iterates the committed ids in ascending order.
    pub fn iter(&self) -> PairSetIter<'_> {
        PairSetIter {
            set: self,
            idx: 0,
            word: if self.spilled {
                self.bits.first().copied().unwrap_or(0)
            } else {
                0
            },
        }
    }

    /// Unions `other` into `self` (committed sets; deltas updated so
    /// the invariant holds: every newly committed id is pending).
    pub fn union_with(&mut self, other: &PairSet) {
        if self.spilled && other.spilled {
            if other.bits.len() > self.bits.len() {
                self.bits.resize(other.bits.len(), 0);
            }
            for (w, (dst, &src)) in self.bits.iter_mut().zip(&other.bits).enumerate() {
                let mut new = src & !*dst;
                *dst |= src;
                while new != 0 {
                    let b = new.trailing_zeros();
                    self.delta.push((w * 64) as u32 + b);
                    self.len += 1;
                    new &= new - 1;
                }
            }
        } else {
            for id in other.iter() {
                self.insert(id);
            }
        }
    }
}

/// Ascending-id iterator over a [`PairSet`].
pub struct PairSetIter<'a> {
    set: &'a PairSet,
    idx: usize,
    word: u64,
}

impl Iterator for PairSetIter<'_> {
    type Item = PairId;

    #[inline]
    fn next(&mut self) -> Option<PairId> {
        if self.set.spilled {
            loop {
                if self.word != 0 {
                    let b = self.word.trailing_zeros();
                    self.word &= self.word - 1;
                    return Some(PairId((self.idx * 64) as u32 + b));
                }
                self.idx += 1;
                if self.idx >= self.set.bits.len() {
                    return None;
                }
                self.word = self.set.bits[self.idx];
            }
        } else {
            let id = *self.set.small.get(self.idx)?;
            self.idx += 1;
            Some(PairId(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathId;

    fn pid(n: u32) -> PairId {
        PairId(n)
    }

    #[test]
    fn interner_is_idempotent_and_dense() {
        let mut it = PairInterner::new();
        let a = it.intern(Pair::new(PathId(1), PathId(2)));
        let b = it.intern(Pair::new(PathId(3), PathId(4)));
        let a2 = it.intern(Pair::new(PathId(1), PathId(2)));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(it.resolve(b), Pair::new(PathId(3), PathId(4)));
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn set_insert_contains_iter_small() {
        let mut s = PairSet::new();
        for n in [5u32, 1, 9, 5, 3] {
            s.insert(pid(n));
        }
        assert_eq!(s.len(), 4);
        assert!(s.contains(pid(9)));
        assert!(!s.contains(pid(2)));
        let ids: Vec<u32> = s.iter().map(|i| i.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
        // Delta saw each committed id exactly once.
        let mut d = s.take_delta();
        d.sort_unstable();
        assert_eq!(d, vec![1, 3, 5, 9]);
        assert!(!s.has_delta());
    }

    #[test]
    fn set_spills_and_stays_correct() {
        let mut s = PairSet::new();
        // Insert enough scattered ids to cross the spill threshold.
        let ids: Vec<u32> = (0..200).map(|i| (i * 37) % 1000).collect();
        let mut expect: Vec<u32> = ids.clone();
        expect.sort_unstable();
        expect.dedup();
        for &i in &ids {
            s.insert(pid(i));
        }
        assert_eq!(s.len(), expect.len());
        let got: Vec<u32> = s.iter().map(|i| i.0).collect();
        assert_eq!(got, expect);
        for &i in &expect {
            assert!(s.contains(pid(i)));
        }
        assert!(!s.contains(pid(1)));
        // No duplicate insertions after spilling either.
        assert!(!s.insert(pid(expect[0])));
        let mut d = s.take_delta();
        d.sort_unstable();
        assert_eq!(d, expect);
    }

    #[test]
    fn union_preserves_delta_invariant() {
        let mut a = PairSet::new();
        let mut b = PairSet::new();
        for n in 0..100 {
            a.insert(pid(n * 2));
        }
        for n in 0..100 {
            b.insert(pid(n * 3));
        }
        a.take_delta();
        a.union_with(&b);
        let mut fresh = a.take_delta();
        fresh.sort_unstable();
        // Exactly the multiples of 3 not already in `a` (evens 0..=198).
        let expect: Vec<u32> = (0..100)
            .map(|n| n * 3)
            .filter(|m| m % 2 != 0 || *m > 198)
            .collect();
        assert_eq!(fresh, expect);
        assert_eq!(a.len(), 100 + expect.len());
    }
}
