//! A uniform driver-facing API over the five analyses.
//!
//! Historically each analysis had its own free-function entry point with
//! its own shape (`analyze_ci`, `analyze_cs`, `analyze_weihl_from`,
//! `analyze_steensgaard`, `analyze_callstring_from`), which forced every
//! harness — the CLI `spectrum` command, the figure binaries, the
//! parallel engine — to hard-code all five call sites. The [`Solver`]
//! trait unifies them:
//!
//! ```text
//!                    ┌───────────────┐
//!  Graph ──────────▶ │  dyn Solver   │ ──▶ SolutionBox (dyn Solution)
//!  Option<&CiResult> │ ci/cs/weihl/  │       ├─ pairs(), flow counts
//!       (shared      │ steensgaard/  │       ├─ loc_referent_bases()
//!        vocabulary) │ k=1 callstring│       └─ as_points_to() / as_ci() / as_cs()
//!                    └───────────────┘
//! ```
//!
//! Passing the CI result is optional but meaningful twice over: the CS
//! solver *requires* CI facts for its §4.2 pruning (it computes its own
//! when given `None`), and the pair-based baselines seed their
//! [`PathTable`] from the CI one so that [`Pair`] ids remain comparable
//! across solutions of the same graph.
//!
//! The concrete result types are still reachable — [`Solution::as_ci`]
//! and friends downcast without `Any` machinery — so existing
//! [`crate::stats::PointsToSolution`] consumers keep working on the
//! boxed solutions of every pair-based solver.

use crate::callstring::{analyze_callstring_from, CallStringConfig, CallStringResult};
use crate::ci::{analyze_ci, CiConfig, CiResult};
use crate::cs::{analyze_cs, CsConfig, CsResult};
use crate::pairset::Propagation;
use crate::path::{PathId, PathTable};
use crate::stats::PointsToSolution;
use crate::steensgaard::{analyze_steensgaard, SteensResult};
use crate::weihl::{analyze_weihl_with, WeihlResult};
use crate::AnalysisError;
use std::cell::RefCell;
use vdg::graph::{BaseId, Graph, NodeId};

/// A solved analysis, boxed behind the uniform [`Solution`] view.
pub type SolutionBox = Box<dyn Solution>;

/// One of the five analyses, behind a uniform entry point.
pub trait Solver: Send + Sync {
    /// Stable machine-readable name (`"ci"`, `"cs"`, `"weihl"`,
    /// `"steensgaard"`, `"k1"`).
    fn name(&self) -> &str;

    /// Runs the analysis over `graph`.
    ///
    /// `ci` is an optional previously computed context-insensitive
    /// solution *for the same graph*: the CS solver uses it for the
    /// §4.2 pruning optimizations (and computes its own if absent), and
    /// the pair-based baselines adopt its path table so pair ids stay
    /// comparable across solvers. Passing a CI result from a different
    /// graph is a logic error.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::StepLimit`] if the solver exhausts its step
    /// budget; the always-terminating solvers never fail.
    fn solve(&self, graph: &Graph, ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError>;
}

/// Uniform read-side view of any solver's result.
///
/// Everything a generic consumer (metrics, spectrum tables, the
/// parallel engine) needs, implementable even by the unification-based
/// solver that has no per-program-point pair sets.
pub trait Solution: Send {
    /// The [`Solver::name`] that produced this solution.
    fn analysis(&self) -> &'static str;

    /// Total points-to pairs, for solvers with a pair representation.
    /// `None` for Steensgaard, whose solution is an ECR partition.
    fn pairs(&self) -> Option<usize>;

    /// Transfer-function applications (§4.2 `flow-in`s), if counted.
    fn flow_ins(&self) -> Option<u64>;

    /// Meet operations (§4.2 `flow-out`s), if counted.
    fn flow_outs(&self) -> Option<u64>;

    /// Emission attempts deduplicated by the committed sets (a
    /// representation statistic; scheduling-dependent). `None` when the
    /// solver does not track it.
    fn dedup_hits(&self) -> Option<u64> {
        None
    }

    /// Batched delta deliveries consumed under difference propagation.
    /// `None` for naive propagation or solvers without a delta mode.
    fn delta_batches(&self) -> Option<u64> {
        None
    }

    /// Worklist deliveries saved by batching: `flow_ins − delta_batches`,
    /// when both are known.
    fn deliveries_saved(&self) -> Option<u64> {
        match (self.flow_ins(), self.delta_batches()) {
            (Some(fi), Some(db)) => Some(fi.saturating_sub(db)),
            _ => None,
        }
    }

    /// Distinct base-locations the location input of memory-op `node`
    /// may reference — the coarsest granularity every solver supports,
    /// hence the common precision currency of the spectrum table.
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId>;

    /// Pair-level view, when the representation has one.
    fn as_points_to(&self) -> Option<&dyn PointsToSolution> {
        None
    }

    /// Downcast to the concrete CI result.
    fn as_ci(&self) -> Option<&CiResult> {
        None
    }

    /// Downcast to the concrete CS result.
    fn as_cs(&self) -> Option<&CsResult> {
        None
    }
}

/// Collapses path-granular referents to distinct bases.
fn bases_of(paths: &PathTable, refs: &[PathId]) -> Vec<BaseId> {
    let mut b: Vec<BaseId> = refs.iter().filter_map(|&p| paths.base_of(p)).collect();
    b.sort_unstable();
    b.dedup();
    b
}

/// The context-insensitive analysis (§3) as a [`Solver`].
#[derive(Debug, Clone, Default)]
pub struct CiSolver {
    /// Solver options.
    pub config: CiConfig,
}

impl Solver for CiSolver {
    fn name(&self) -> &str {
        "ci"
    }

    fn solve(&self, graph: &Graph, _ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        Ok(Box::new(analyze_ci(graph, &self.config)))
    }
}

impl Solution for CiResult {
    fn analysis(&self) -> &'static str {
        "ci"
    }
    fn pairs(&self) -> Option<usize> {
        Some(self.total_pairs())
    }
    fn flow_ins(&self) -> Option<u64> {
        Some(self.flow_ins)
    }
    fn flow_outs(&self) -> Option<u64> {
        Some(self.flow_outs)
    }
    fn dedup_hits(&self) -> Option<u64> {
        Some(self.dedup_hits)
    }
    fn delta_batches(&self) -> Option<u64> {
        self.delta_batches
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        bases_of(&self.paths, &self.loc_referents(graph, node))
    }
    fn as_points_to(&self) -> Option<&dyn PointsToSolution> {
        Some(self)
    }
    fn as_ci(&self) -> Option<&CiResult> {
        Some(self)
    }
}

/// The assumption-set context-sensitive analysis (§4) as a [`Solver`].
#[derive(Debug, Clone, Default)]
pub struct CsSolver {
    /// Solver options.
    pub config: CsConfig,
}

impl Solver for CsSolver {
    fn name(&self) -> &str {
        "cs"
    }

    fn solve(&self, graph: &Graph, ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        let run = |ci: &CiResult| -> Result<SolutionBox, AnalysisError> {
            let cs = analyze_cs(graph, ci, &self.config)?;
            Ok(Box::new(cs) as SolutionBox)
        };
        match ci {
            Some(ci) => run(ci),
            // No shared CI: compute one with matching knobs, since
            // pruning requires heap naming and strong updates to agree.
            None => run(&analyze_ci(
                graph,
                &CiConfig {
                    strong_updates: self.config.strong_updates,
                    heap_naming: self.config.heap_naming,
                    ..CiConfig::default()
                },
            )),
        }
    }
}

impl Solution for CsResult {
    fn analysis(&self) -> &'static str {
        "cs"
    }
    fn pairs(&self) -> Option<usize> {
        Some(self.total_pairs())
    }
    fn flow_ins(&self) -> Option<u64> {
        Some(self.flow_ins)
    }
    fn flow_outs(&self) -> Option<u64> {
        Some(self.flow_outs)
    }
    fn dedup_hits(&self) -> Option<u64> {
        Some(self.dedup_hits)
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        bases_of(&self.paths, &self.loc_referents(graph, node))
    }
    fn as_points_to(&self) -> Option<&dyn PointsToSolution> {
        Some(self)
    }
    fn as_cs(&self) -> Option<&CsResult> {
        Some(self)
    }
}

/// Weihl's program-wide flow-insensitive baseline as a [`Solver`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WeihlSolver {
    /// Worklist discipline (delta by default).
    pub propagation: Propagation,
}

impl Solver for WeihlSolver {
    fn name(&self) -> &str {
        "weihl"
    }

    fn solve(&self, graph: &Graph, ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        let paths = match ci {
            Some(ci) => ci.paths.clone(),
            None => PathTable::for_graph(graph),
        };
        Ok(Box::new(analyze_weihl_with(graph, paths, self.propagation)))
    }
}

impl Solution for WeihlResult {
    fn analysis(&self) -> &'static str {
        "weihl"
    }
    fn pairs(&self) -> Option<usize> {
        Some(self.total_pairs())
    }
    fn flow_ins(&self) -> Option<u64> {
        Some(self.flow_ins)
    }
    fn flow_outs(&self) -> Option<u64> {
        Some(self.flow_outs)
    }
    fn dedup_hits(&self) -> Option<u64> {
        Some(self.dedup_hits)
    }
    fn delta_batches(&self) -> Option<u64> {
        self.delta_batches
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        bases_of(&self.paths, &self.loc_referents(graph, node))
    }
}

/// Steensgaard's unification baseline as a [`Solver`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SteensgaardSolver;

impl Solver for SteensgaardSolver {
    fn name(&self) -> &str {
        "steensgaard"
    }

    fn solve(&self, graph: &Graph, _ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        Ok(Box::new(SteensSolution {
            inner: RefCell::new(analyze_steensgaard(graph)),
        }))
    }
}

/// [`SteensResult`] behind the uniform view. Union-find queries compress
/// paths, so the interior is mutable; the `RefCell` keeps the shared
/// `&self` query API of the other solutions.
pub struct SteensSolution {
    inner: RefCell<SteensResult>,
}

impl SteensSolution {
    /// The wrapped union-find result, cloned out for callers that need
    /// the concrete query API.
    pub fn to_steens(&self) -> SteensResult {
        self.inner.borrow().clone()
    }
}

impl Solution for SteensSolution {
    fn analysis(&self) -> &'static str {
        "steensgaard"
    }
    fn pairs(&self) -> Option<usize> {
        None
    }
    fn flow_ins(&self) -> Option<u64> {
        None
    }
    fn flow_outs(&self) -> Option<u64> {
        None
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        let mut bases = self.inner.borrow_mut().loc_bases(graph, node);
        bases.sort_unstable();
        bases.dedup();
        bases
    }
}

/// The k=1 call-string analysis as a [`Solver`].
#[derive(Debug, Clone, Default)]
pub struct CallStringSolver {
    /// Solver options.
    pub config: CallStringConfig,
}

impl Solver for CallStringSolver {
    fn name(&self) -> &str {
        "k1"
    }

    fn solve(&self, graph: &Graph, ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        let paths = match ci {
            Some(ci) => ci.paths.clone(),
            None => PathTable::for_graph(graph),
        };
        let k1 = analyze_callstring_from(graph, paths, &self.config)?;
        Ok(Box::new(k1))
    }
}

impl Solution for CallStringResult {
    fn analysis(&self) -> &'static str {
        "k1"
    }
    fn pairs(&self) -> Option<usize> {
        Some(self.total_pairs())
    }
    fn flow_ins(&self) -> Option<u64> {
        Some(self.flow_ins)
    }
    fn flow_outs(&self) -> Option<u64> {
        Some(self.flow_outs)
    }
    fn dedup_hits(&self) -> Option<u64> {
        Some(self.dedup_hits)
    }
    fn delta_batches(&self) -> Option<u64> {
        self.delta_batches
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        bases_of(&self.paths, &self.loc_referents(graph, node))
    }
    fn as_points_to(&self) -> Option<&dyn PointsToSolution> {
        Some(self)
    }
}

/// All five solvers with default options, in spectrum order — coarsest
/// (Weihl) to finest (assumption-set CS).
pub fn all_solvers() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(WeihlSolver::default()),
        Box::new(SteensgaardSolver),
        Box::new(CiSolver::default()),
        Box::new(CallStringSolver::default()),
        Box::new(CsSolver::default()),
    ]
}

/// All five solvers with difference propagation disabled wherever a
/// solver has that knob (CI, Weihl, k=1). Steensgaard and the
/// assumption-set CS analysis have no naive/delta distinction.
pub fn all_solvers_naive() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(WeihlSolver {
            propagation: Propagation::Naive,
        }),
        Box::new(SteensgaardSolver),
        Box::new(CiSolver {
            config: CiConfig {
                propagation: Propagation::Naive,
                ..CiConfig::default()
            },
        }),
        Box::new(CallStringSolver {
            config: CallStringConfig {
                propagation: Propagation::Naive,
                ..CallStringConfig::default()
            },
        }),
        Box::new(CsSolver::default()),
    ]
}

/// Looks up a solver (default options) by its [`Solver::name`].
pub fn solver_by_name(name: &str) -> Option<Box<dyn Solver>> {
    all_solvers().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> Graph {
        let p = cfront::compile(src).unwrap();
        vdg::lower(&p, &vdg::BuildOptions::default()).unwrap()
    }

    const SRC: &str = "int g; int h; int *gp;
        int pick(int c, int *a, int *b) { if (c) { gp = a; } else { gp = b; } return *gp; }
        int main(void) { int x; x = pick(1, &g, &h); return x; }";

    #[test]
    fn registry_has_five_distinct_solvers() {
        let names: Vec<String> = all_solvers().iter().map(|s| s.name().to_string()).collect();
        assert_eq!(names, ["weihl", "steensgaard", "ci", "k1", "cs"]);
        assert!(solver_by_name("cs").is_some());
        assert!(solver_by_name("andersen").is_none());
    }

    #[test]
    fn every_solver_produces_a_queryable_solution() {
        let graph = graph_of(SRC);
        let ci = analyze_ci(&graph, &CiConfig::default());
        for s in all_solvers() {
            let sol = s.solve(&graph, Some(&ci)).unwrap();
            assert_eq!(sol.analysis(), s.name());
            for (node, _) in graph.indirect_mem_ops() {
                assert!(
                    !sol.loc_referent_bases(&graph, node).is_empty(),
                    "{}: no referents",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn cs_without_shared_ci_computes_its_own() {
        let graph = graph_of(SRC);
        let ci = analyze_ci(&graph, &CiConfig::default());
        let with = CsSolver::default().solve(&graph, Some(&ci)).unwrap();
        let without = CsSolver::default().solve(&graph, None).unwrap();
        assert_eq!(with.pairs(), without.pairs());
    }
}
