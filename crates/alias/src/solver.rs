//! A uniform driver-facing API over the five analyses.
//!
//! Historically each analysis had its own free-function entry point with
//! its own shape (`analyze_ci`, `analyze_cs`, `analyze_weihl_from`,
//! `analyze_steensgaard`, `analyze_callstring_from`), which forced every
//! harness — the CLI `spectrum` command, the figure binaries, the
//! parallel engine — to hard-code all five call sites. The [`Solver`]
//! trait unifies them:
//!
//! ```text
//!                    ┌───────────────┐
//!  Graph ──────────▶ │  dyn Solver   │ ──▶ SolutionBox (dyn Solution)
//!  Option<&CiResult> │ ci/cs/weihl/  │       ├─ pairs(), flow counts
//!       (shared      │ steensgaard/  │       ├─ loc_referent_bases()
//!        vocabulary) │ k=1 callstring│       └─ as_points_to() / as_ci() / as_cs()
//!                    └───────────────┘
//! ```
//!
//! Passing the CI result is optional but meaningful twice over: the CS
//! solver *requires* CI facts for its §4.2 pruning (it computes its own
//! when given `None`), and the pair-based baselines seed their
//! [`PathTable`] from the CI one so that [`Pair`] ids remain comparable
//! across solutions of the same graph.
//!
//! The concrete result types are still reachable — [`Solution::as_ci`]
//! and friends downcast without `Any` machinery — so existing
//! [`crate::stats::PointsToSolution`] consumers keep working on the
//! boxed solutions of every pair-based solver.

use crate::callstring::{analyze_callstring_from, CallStringConfig, CallStringResult};
use crate::ci::{
    analyze_ci, analyze_ci_resume, CiConfig, CiResult, Fault, HeapNaming, WorklistOrder,
};
use crate::cs::{analyze_cs, CsConfig, CsResult};
use crate::fingerprint::{plan_ci_resume, GraphIndex, StablePair};
use crate::pairset::Propagation;
use crate::path::{PathId, PathTable};
use crate::stats::PointsToSolution;
use crate::steensgaard::{analyze_steensgaard, SteensResult};
use crate::summary::{FunctionSummary, ResumeStats, SolverSummaries, Vocab};
use crate::weihl::{analyze_weihl_with, WeihlResult};
use crate::AnalysisError;
use std::cell::RefCell;
use vdg::graph::{BaseId, Graph, NodeId, VFuncId};

/// A per-function summary extractor over one solution: `Sync` so the
/// engine's bottom-up composition driver can summarize independent
/// call-graph subtrees in parallel with no shared worklist.
pub type FuncExtractor<'a> = Box<dyn Fn(VFuncId) -> Option<FunctionSummary> + Sync + 'a>;

/// The product of a successful seeded resume: the re-solved solution
/// plus the reuse statistics the engine surfaces in `SolveMode` and
/// `ruf95 stats`.
pub struct ResumeOutcome {
    /// The resumed solution, fixpoint-identical to a fresh solve.
    pub solution: SolutionBox,
    /// Which functions re-summarized, and how much was seeded.
    pub stats: ResumeStats,
}

/// A solved analysis, boxed behind the uniform [`Solution`] view.
pub type SolutionBox = Box<dyn Solution>;

/// One of the five analyses, behind a uniform entry point.
pub trait Solver: Send + Sync {
    /// Stable machine-readable name (`"ci"`, `"cs"`, `"weihl"`,
    /// `"steensgaard"`, `"k1"`).
    fn name(&self) -> &str;

    /// Runs the analysis over `graph`.
    ///
    /// `ci` is an optional previously computed context-insensitive
    /// solution *for the same graph*: the CS solver uses it for the
    /// §4.2 pruning optimizations (and computes its own if absent), and
    /// the pair-based baselines adopt its path table so pair ids stay
    /// comparable across solvers. Passing a CI result from a different
    /// graph is a logic error.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::StepLimit`] if the solver exhausts its step
    /// budget; the always-terminating solvers never fail.
    fn solve(&self, graph: &Graph, ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError>;

    /// **Summarize capability.** Extracts whole-program
    /// [`SolverSummaries`] from `sol` (a solution this solver produced
    /// over `graph`) in the solver's own stable vocabulary. `None` when
    /// the solution cannot be summarized: unstable naming, a vocabulary
    /// the solver does not define (the demand solver), or facts rooted
    /// at synthetic bases.
    ///
    /// The default serial implementation drives the solution's
    /// [`Solution::func_extractor`]; the engine's bottom-up composition
    /// driver uses the same extractor to summarize independent
    /// call-graph subtrees in parallel.
    fn summarize(
        &self,
        graph: &Graph,
        index: &GraphIndex,
        sol: &dyn Solution,
        ci: Option<&CiResult>,
    ) -> Option<SolverSummaries> {
        summarize_serial(graph, index, sol, ci)
    }

    /// **Summarize capability.** Re-solves `graph` seeded from a
    /// previous run's summaries: clean functions' facts replay as
    /// silent seeds, only the dirty cone iterates, and the result is
    /// fixpoint-identical to a fresh solve (the subset-seeding
    /// argument, per vocabulary — see `DESIGN.md` §12).
    ///
    /// Returns `None` when this solver cannot resume from `prev` (wrong
    /// vocabulary, configuration without stable naming, rejected plan):
    /// the caller falls back to a fresh solve. `Some(Err(_))` means the
    /// resume itself exhausted a step budget — also a fresh-solve
    /// fallback, but worth distinguishing for diagnostics.
    fn resume(
        &self,
        _graph: &Graph,
        _index: &GraphIndex,
        _prev: &SolverSummaries,
        _ci: Option<&CiResult>,
    ) -> Option<Result<ResumeOutcome, AnalysisError>> {
        None
    }
}

/// Serial whole-program summary extraction via
/// [`Solution::func_extractor`]: the default [`Solver::summarize`] body
/// and the oracle the parallel composition driver cross-checks against.
pub fn summarize_serial(
    graph: &Graph,
    index: &GraphIndex,
    sol: &dyn Solution,
    ci: Option<&CiResult>,
) -> Option<SolverSummaries> {
    if index.unsafe_reason.is_some() {
        return None;
    }
    let vocab = sol.vocab()?;
    let extract = sol.func_extractor(graph, index, ci)?;
    let mut out = SolverSummaries::new(vocab);
    for f in graph.func_ids() {
        out.funcs.insert(graph.func(f).name.clone(), extract(f)?);
    }
    out.store = sol.summary_store(graph, index)?;
    Some(out)
}

/// Uniform read-side view of any solver's result.
///
/// Everything a generic consumer (metrics, spectrum tables, the
/// parallel engine) needs, implementable even by the unification-based
/// solver that has no per-program-point pair sets.
pub trait Solution: Send {
    /// The [`Solver::name`] that produced this solution.
    fn analysis(&self) -> &'static str;

    /// Total points-to pairs, for solvers with a pair representation.
    /// `None` for Steensgaard, whose solution is an ECR partition.
    fn pairs(&self) -> Option<usize>;

    /// Transfer-function applications (§4.2 `flow-in`s), if counted.
    fn flow_ins(&self) -> Option<u64>;

    /// Meet operations (§4.2 `flow-out`s), if counted.
    fn flow_outs(&self) -> Option<u64>;

    /// Emission attempts deduplicated by the committed sets (a
    /// representation statistic; scheduling-dependent). `None` when the
    /// solver does not track it.
    fn dedup_hits(&self) -> Option<u64> {
        None
    }

    /// Batched delta deliveries consumed under difference propagation.
    /// `None` for naive propagation or solvers without a delta mode.
    fn delta_batches(&self) -> Option<u64> {
        None
    }

    /// Worklist deliveries saved by batching: `flow_ins − delta_batches`,
    /// when both are known.
    fn deliveries_saved(&self) -> Option<u64> {
        match (self.flow_ins(), self.delta_batches()) {
            (Some(fi), Some(db)) => Some(fi.saturating_sub(db)),
            _ => None,
        }
    }

    /// Distinct base-locations the location input of memory-op `node`
    /// may reference — the coarsest granularity every solver supports,
    /// hence the common precision currency of the spectrum table.
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId>;

    /// Distinct base-locations the pointer value carried on `out` may
    /// reference, sorted and deduplicated. The output-level counterpart
    /// of [`Solution::loc_referent_bases`], needed by clients (the
    /// memory-safety checkers) that inspect values which are not the
    /// location input of a memory op — a `free`'s pointer argument, a
    /// `return`'s operand, an update's stored value.
    fn output_referent_bases(&self, graph: &Graph, out: vdg::graph::OutputId) -> Vec<BaseId>;

    /// Path-granular referents of the location input of memory-op
    /// `node`, for solvers with a per-program-point pair
    /// representation. `None` for the unification baseline, whose
    /// solution has no per-point sets; callers (the interpreter oracle,
    /// the fuzz lattice checker) fall back to
    /// [`Solution::loc_referent_bases`].
    fn referents_at(&self, _graph: &Graph, _node: NodeId) -> Option<Vec<PathId>> {
        None
    }

    /// The interned path universe the referents are expressed in, when
    /// the representation has one. Paired with
    /// [`Solution::referents_at`]; both are `Some` or both `None`.
    fn path_universe(&self) -> Option<&PathTable> {
        None
    }

    /// Whether this (coarser) solution covers `finer` at every indirect
    /// memory reference: at each node of `graph.indirect_mem_ops()`,
    /// `finer`'s referent bases must be a subset of ours. This is the
    /// precision-lattice check (CS ⊆ k=1 ⊆ CI ⊆ Weihl) at the base
    /// granularity every solver supports. Returns `None` when the two
    /// solutions cannot be compared (reserved for future
    /// representations; the five built-in solvers always compare).
    fn covers(&self, graph: &Graph, finer: &dyn Solution) -> Option<bool> {
        for (node, _) in graph.indirect_mem_ops() {
            let coarse = self.loc_referent_bases(graph, node);
            let fine = finer.loc_referent_bases(graph, node);
            // Both sides are sorted and deduplicated by contract.
            if !fine.iter().all(|b| coarse.binary_search(b).is_ok()) {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Pair-level view, when the representation has one.
    fn as_points_to(&self) -> Option<&dyn PointsToSolution> {
        None
    }

    /// Downcast to the concrete CI result.
    ///
    /// Legacy escape hatch kept for the paper-table consumers; new code
    /// should query through [`Solution::referents_at`] and
    /// [`Solution::covers`] instead of downcasting.
    fn as_ci(&self) -> Option<&CiResult> {
        None
    }

    /// Downcast to the concrete CS result.
    ///
    /// Legacy escape hatch kept for the paper-table consumers; new code
    /// should query through [`Solution::referents_at`] and
    /// [`Solution::covers`] instead of downcasting.
    fn as_cs(&self) -> Option<&CsResult> {
        None
    }

    /// Downcast to the concrete Weihl result.
    fn as_weihl(&self) -> Option<&WeihlResult> {
        None
    }

    /// Downcast to the concrete k=1 call-string result.
    fn as_k1(&self) -> Option<&CallStringResult> {
        None
    }

    /// Downcast to the Steensgaard union-find solution.
    fn as_steens(&self) -> Option<&SteensSolution> {
        None
    }

    /// Consumes the box into the concrete CI result, for harnesses
    /// (the engine's prepare stage, the demand solver's materializer)
    /// that hold the shared-vocabulary CI solution by value. `None` for
    /// every other analysis.
    fn into_ci(self: Box<Self>) -> Option<CiResult> {
        None
    }

    /// Consumes the box into the concrete CS result, for harnesses that
    /// need the owned concrete query API. `None` for other analyses.
    fn into_cs(self: Box<Self>) -> Option<CsResult> {
        None
    }

    /// Consumes the box into the concrete Weihl result. `None` for
    /// other analyses.
    fn into_weihl(self: Box<Self>) -> Option<WeihlResult> {
        None
    }

    /// Consumes the box into the concrete k=1 call-string result.
    /// `None` for other analyses.
    fn into_k1(self: Box<Self>) -> Option<CallStringResult> {
        None
    }

    /// Consumes the box into the concrete Steensgaard result (the
    /// union-find query API needs `&mut`, hence by value). `None` for
    /// other analyses.
    fn into_steens(self: Box<Self>) -> Option<SteensResult> {
        None
    }

    /// The summary vocabulary this solution can be expressed in, `None`
    /// when it has none (the demand solver's lazy view).
    fn vocab(&self) -> Option<Vocab> {
        None
    }

    /// A `Sync` per-function summary extractor over this solution, or
    /// `None` when the solution cannot be summarized (no vocabulary, or
    /// a required companion — the CS extractor needs the CI solution it
    /// was pruned by — is missing). Drives both the serial
    /// [`summarize_serial`] and the engine's parallel bottom-up
    /// composition.
    fn func_extractor<'a>(
        &'a self,
        _graph: &'a Graph,
        _index: &'a GraphIndex,
        _ci: Option<&'a CiResult>,
    ) -> Option<FuncExtractor<'a>> {
        None
    }

    /// The program-wide store relation in stable vocabulary (Weihl
    /// only; everyone else returns an empty vec). `None` when a store
    /// fact cannot be expressed stably.
    fn summary_store(&self, _graph: &Graph, _index: &GraphIndex) -> Option<Vec<StablePair>> {
        Some(Vec::new())
    }

    /// A deep copy of the boxed solution. The incremental engine uses
    /// this to replay a cached solution without consuming the cache
    /// entry.
    fn clone_box(&self) -> SolutionBox;
}

/// Canonical rendered dump of a solution, for equivalence checks and
/// golden snapshots.
///
/// Everything is rendered to strings against `graph` and sorted, so the
/// dump is independent of solver schedule, path-id numbering, and of
/// *how* the solution was obtained (fresh, seeded resume, or cache
/// replay) — but changes whenever any answer the solution gives
/// changes. Flow counters are deliberately excluded: they describe the
/// work done, not the solution. For the CI solver the dump additionally
/// includes every per-output pair set and the discovered call graph.
pub fn solution_dump(sol: &dyn Solution, graph: &Graph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "analysis: {}", sol.analysis());
    if let Some(n) = sol.pairs() {
        let _ = writeln!(out, "pairs: {n}");
    }
    for (node, _) in graph.indirect_mem_ops() {
        let mut names: Vec<String> = match (sol.referents_at(graph, node), sol.path_universe()) {
            (Some(refs), Some(paths)) => refs.iter().map(|&p| paths.display(p, graph)).collect(),
            _ => sol
                .loc_referent_bases(graph, node)
                .iter()
                .map(|&b| crate::fingerprint::stable_base_key(graph, b))
                .collect(),
        };
        names.sort();
        names.dedup();
        let _ = writeln!(out, "op {}: [{}]", node.0, names.join(", "));
    }
    if let Some(ci) = sol.as_ci() {
        for o in graph.output_ids() {
            let prs = ci.pairs(o);
            if prs.is_empty() {
                continue;
            }
            let mut rendered: Vec<String> = prs
                .iter()
                .map(|p| {
                    format!(
                        "{} -> {}",
                        ci.paths.display(p.path, graph),
                        ci.paths.display(p.referent, graph)
                    )
                })
                .collect();
            rendered.sort();
            let _ = writeln!(out, "out {}: [{}]", o.0, rendered.join(", "));
        }
        let mut calls: Vec<String> = ci
            .callees
            .iter()
            .map(|(n, fs)| {
                let names: Vec<&str> = fs.iter().map(|&f| graph.func(f).name.as_str()).collect();
                format!("call {}: [{}]", n.0, names.join(", "))
            })
            .collect();
        calls.sort();
        for c in calls {
            let _ = writeln!(out, "{c}");
        }
    }
    out
}

/// FNV-1a digest of [`solution_dump`] — the byte-identity currency of
/// the edit-replay equivalence harness.
pub fn solution_fingerprint(sol: &dyn Solution, graph: &Graph) -> u64 {
    crate::fingerprint::fnv64(solution_dump(sol, graph).as_bytes())
}

/// Collapses path-granular referents to distinct bases.
fn bases_of(paths: &PathTable, refs: &[PathId]) -> Vec<BaseId> {
    let mut b: Vec<BaseId> = refs.iter().filter_map(|&p| paths.base_of(p)).collect();
    b.sort_unstable();
    b.dedup();
    b
}

/// The context-insensitive analysis (§3) as a [`Solver`].
#[derive(Debug, Clone, Default)]
pub struct CiSolver {
    /// Solver options.
    pub config: CiConfig,
}

impl Solver for CiSolver {
    fn name(&self) -> &str {
        "ci"
    }

    fn solve(&self, graph: &Graph, _ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        Ok(Box::new(analyze_ci(graph, &self.config)))
    }

    fn resume(
        &self,
        graph: &Graph,
        index: &GraphIndex,
        prev: &SolverSummaries,
        _ci: Option<&CiResult>,
    ) -> Option<Result<ResumeOutcome, AnalysisError>> {
        // Call-string heap naming keys allocations by caller, which the
        // stable vocabulary does not carry; fault injection would make
        // the seeded and fresh runs observe different graphs.
        if self.config.heap_naming != HeapNaming::Site || self.config.fault != Fault::None {
            return None;
        }
        let plan = plan_ci_resume(graph, index, prev)?;
        let stats = ResumeStats {
            dirty: {
                let mut d: Vec<String> = plan
                    .dirty
                    .iter()
                    .map(|f| graph.func(*f).name.clone())
                    .collect();
                d.sort_unstable();
                d
            },
            clean: graph.func_count() - plan.dirty.len(),
            cone_outputs: plan.cone_outputs,
            seeded_outputs: plan.seeded_outputs,
            total_outputs: graph.output_count(),
        };
        let result = analyze_ci_resume(graph, &self.config, plan);
        Some(Ok(ResumeOutcome {
            solution: Box::new(result),
            stats,
        }))
    }
}

impl Solution for CiResult {
    fn analysis(&self) -> &'static str {
        "ci"
    }
    fn pairs(&self) -> Option<usize> {
        Some(self.total_pairs())
    }
    fn flow_ins(&self) -> Option<u64> {
        Some(self.flow_ins)
    }
    fn flow_outs(&self) -> Option<u64> {
        Some(self.flow_outs)
    }
    fn dedup_hits(&self) -> Option<u64> {
        Some(self.dedup_hits)
    }
    fn delta_batches(&self) -> Option<u64> {
        self.delta_batches
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        bases_of(&self.paths, &self.loc_referents(graph, node))
    }
    fn output_referent_bases(&self, _graph: &Graph, out: vdg::graph::OutputId) -> Vec<BaseId> {
        let refs: Vec<PathId> = self.pairs(out).iter().map(|p| p.referent).collect();
        bases_of(&self.paths, &refs)
    }
    fn referents_at(&self, graph: &Graph, node: NodeId) -> Option<Vec<PathId>> {
        Some(self.loc_referents(graph, node))
    }
    fn path_universe(&self) -> Option<&PathTable> {
        Some(&self.paths)
    }
    fn as_points_to(&self) -> Option<&dyn PointsToSolution> {
        Some(self)
    }
    fn as_ci(&self) -> Option<&CiResult> {
        Some(self)
    }
    fn into_ci(self: Box<Self>) -> Option<CiResult> {
        Some(*self)
    }
    fn vocab(&self) -> Option<Vocab> {
        Some(Vocab::Ci)
    }
    fn func_extractor<'a>(
        &'a self,
        graph: &'a Graph,
        index: &'a GraphIndex,
        _ci: Option<&'a CiResult>,
    ) -> Option<FuncExtractor<'a>> {
        Some(Box::new(move |f| {
            crate::fingerprint::extract_ci_func(graph, index, self, f)
        }))
    }
    fn clone_box(&self) -> SolutionBox {
        Box::new(self.clone())
    }
}

/// The assumption-set context-sensitive analysis (§4) as a [`Solver`].
#[derive(Debug, Clone, Default)]
pub struct CsSolver {
    /// Solver options.
    pub config: CsConfig,
}

impl Solver for CsSolver {
    fn name(&self) -> &str {
        "cs"
    }

    fn solve(&self, graph: &Graph, ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        let run = |ci: &CiResult| -> Result<SolutionBox, AnalysisError> {
            let cs = analyze_cs(graph, ci, &self.config)?;
            Ok(Box::new(cs) as SolutionBox)
        };
        match ci {
            Some(ci) => run(ci),
            // No shared CI: compute one with matching knobs, since
            // pruning requires heap naming and strong updates to agree.
            None => run(&analyze_ci(
                graph,
                &CiConfig {
                    strong_updates: self.config.strong_updates,
                    heap_naming: self.config.heap_naming,
                    ..CiConfig::default()
                },
            )),
        }
    }

    fn resume(
        &self,
        graph: &Graph,
        index: &GraphIndex,
        prev: &SolverSummaries,
        ci: Option<&CiResult>,
    ) -> Option<Result<ResumeOutcome, AnalysisError>> {
        // The seeded CS needs the *current* CI companion both for
        // pruning and for the pruning-drift check; compute one with
        // matching knobs if the caller has none, exactly as `solve`.
        let owned;
        let ci = match ci {
            Some(ci) => ci,
            None => {
                owned = analyze_ci(
                    graph,
                    &CiConfig {
                        strong_updates: self.config.strong_updates,
                        heap_naming: self.config.heap_naming,
                        ..CiConfig::default()
                    },
                );
                &owned
            }
        };
        match crate::cs::analyze_cs_resume(graph, index, ci, prev, &self.config)? {
            Ok((result, stats)) => Some(Ok(ResumeOutcome {
                solution: Box::new(result),
                stats,
            })),
            Err(e) => Some(Err(e.into())),
        }
    }
}

impl Solution for CsResult {
    fn analysis(&self) -> &'static str {
        "cs"
    }
    fn pairs(&self) -> Option<usize> {
        Some(self.total_pairs())
    }
    fn flow_ins(&self) -> Option<u64> {
        Some(self.flow_ins)
    }
    fn flow_outs(&self) -> Option<u64> {
        Some(self.flow_outs)
    }
    fn dedup_hits(&self) -> Option<u64> {
        Some(self.dedup_hits)
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        bases_of(&self.paths, &self.loc_referents(graph, node))
    }
    fn output_referent_bases(&self, _graph: &Graph, out: vdg::graph::OutputId) -> Vec<BaseId> {
        let refs: Vec<PathId> = self.pairs_at(out).iter().map(|p| p.referent).collect();
        bases_of(&self.paths, &refs)
    }
    fn referents_at(&self, graph: &Graph, node: NodeId) -> Option<Vec<PathId>> {
        Some(self.loc_referents(graph, node))
    }
    fn path_universe(&self) -> Option<&PathTable> {
        Some(&self.paths)
    }
    fn as_points_to(&self) -> Option<&dyn PointsToSolution> {
        Some(self)
    }
    fn as_cs(&self) -> Option<&CsResult> {
        Some(self)
    }
    fn into_cs(self: Box<Self>) -> Option<CsResult> {
        Some(*self)
    }
    fn vocab(&self) -> Option<Vocab> {
        Some(Vocab::Cs)
    }
    fn func_extractor<'a>(
        &'a self,
        graph: &'a Graph,
        index: &'a GraphIndex,
        ci: Option<&'a CiResult>,
    ) -> Option<FuncExtractor<'a>> {
        // The extractor records the CI pruning facts each memory
        // operation was solved under, so the CI companion is required.
        let ci = ci?;
        Some(Box::new(move |f| {
            crate::cs::extract_func(self, graph, index, ci, f)
        }))
    }
    fn clone_box(&self) -> SolutionBox {
        Box::new(self.clone())
    }
}

/// Weihl's program-wide flow-insensitive baseline as a [`Solver`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WeihlSolver {
    /// Worklist discipline (delta by default).
    pub propagation: Propagation,
}

impl Solver for WeihlSolver {
    fn name(&self) -> &str {
        "weihl"
    }

    fn solve(&self, graph: &Graph, ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        let paths = match ci {
            Some(ci) => ci.paths.clone(),
            None => PathTable::for_graph(graph),
        };
        Ok(Box::new(analyze_weihl_with(graph, paths, self.propagation)))
    }

    fn resume(
        &self,
        graph: &Graph,
        index: &GraphIndex,
        prev: &SolverSummaries,
        ci: Option<&CiResult>,
    ) -> Option<Result<ResumeOutcome, AnalysisError>> {
        let paths = match ci {
            Some(ci) => ci.paths.clone(),
            None => PathTable::for_graph(graph),
        };
        let (result, stats) =
            crate::weihl::analyze_weihl_resume(graph, index, prev, paths, self.propagation)?;
        Some(Ok(ResumeOutcome {
            solution: Box::new(result),
            stats,
        }))
    }
}

impl Solution for WeihlResult {
    fn analysis(&self) -> &'static str {
        "weihl"
    }
    fn pairs(&self) -> Option<usize> {
        Some(self.total_pairs())
    }
    fn flow_ins(&self) -> Option<u64> {
        Some(self.flow_ins)
    }
    fn flow_outs(&self) -> Option<u64> {
        Some(self.flow_outs)
    }
    fn dedup_hits(&self) -> Option<u64> {
        Some(self.dedup_hits)
    }
    fn delta_batches(&self) -> Option<u64> {
        self.delta_batches
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        bases_of(&self.paths, &self.loc_referents(graph, node))
    }
    fn output_referent_bases(&self, _graph: &Graph, out: vdg::graph::OutputId) -> Vec<BaseId> {
        let refs: Vec<PathId> = self.value_pairs(out).iter().map(|p| p.referent).collect();
        bases_of(&self.paths, &refs)
    }
    fn referents_at(&self, graph: &Graph, node: NodeId) -> Option<Vec<PathId>> {
        Some(self.loc_referents(graph, node))
    }
    fn path_universe(&self) -> Option<&PathTable> {
        Some(&self.paths)
    }
    fn as_weihl(&self) -> Option<&WeihlResult> {
        Some(self)
    }
    fn into_weihl(self: Box<Self>) -> Option<WeihlResult> {
        Some(*self)
    }
    fn vocab(&self) -> Option<Vocab> {
        Some(Vocab::Weihl)
    }
    fn func_extractor<'a>(
        &'a self,
        graph: &'a Graph,
        index: &'a GraphIndex,
        _ci: Option<&'a CiResult>,
    ) -> Option<FuncExtractor<'a>> {
        Some(Box::new(move |f| {
            crate::weihl::extract_func(self, graph, index, f)
        }))
    }
    fn summary_store(&self, graph: &Graph, index: &GraphIndex) -> Option<Vec<StablePair>> {
        crate::weihl::extract_store(self, graph, index)
    }
    fn clone_box(&self) -> SolutionBox {
        Box::new(self.clone())
    }
}

/// Steensgaard's unification baseline as a [`Solver`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SteensgaardSolver;

impl Solver for SteensgaardSolver {
    fn name(&self) -> &str {
        "steensgaard"
    }

    fn solve(&self, graph: &Graph, _ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        Ok(Box::new(SteensSolution {
            inner: RefCell::new(analyze_steensgaard(graph)),
        }))
    }

    fn resume(
        &self,
        graph: &Graph,
        index: &GraphIndex,
        prev: &SolverSummaries,
        _ci: Option<&CiResult>,
    ) -> Option<Result<ResumeOutcome, AnalysisError>> {
        let (result, stats) = crate::steensgaard::replay_steensgaard(graph, index, prev)?;
        Some(Ok(ResumeOutcome {
            solution: Box::new(SteensSolution {
                inner: RefCell::new(result),
            }),
            stats,
        }))
    }
}

/// [`SteensResult`] behind the uniform view. Union-find queries compress
/// paths, so the interior is mutable; the `RefCell` keeps the shared
/// `&self` query API of the other solutions.
pub struct SteensSolution {
    inner: RefCell<SteensResult>,
}

impl SteensSolution {
    /// The wrapped union-find result, cloned out for callers that need
    /// the concrete query API.
    pub fn to_steens(&self) -> SteensResult {
        self.inner.borrow().clone()
    }
}

impl Solution for SteensSolution {
    fn analysis(&self) -> &'static str {
        "steensgaard"
    }
    fn pairs(&self) -> Option<usize> {
        None
    }
    fn flow_ins(&self) -> Option<u64> {
        None
    }
    fn flow_outs(&self) -> Option<u64> {
        None
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        let mut bases = self.inner.borrow_mut().loc_bases(graph, node);
        bases.sort_unstable();
        bases.dedup();
        bases
    }
    fn output_referent_bases(&self, graph: &Graph, out: vdg::graph::OutputId) -> Vec<BaseId> {
        let mut bases = self.inner.borrow_mut().points_to_bases(out, graph);
        bases.sort_unstable();
        bases.dedup();
        bases
    }
    fn as_steens(&self) -> Option<&SteensSolution> {
        Some(self)
    }
    fn into_steens(self: Box<Self>) -> Option<SteensResult> {
        Some(self.inner.into_inner())
    }
    fn vocab(&self) -> Option<Vocab> {
        Some(Vocab::Steens)
    }
    fn func_extractor<'a>(
        &'a self,
        graph: &'a Graph,
        index: &'a GraphIndex,
        _ci: Option<&'a CiResult>,
    ) -> Option<FuncExtractor<'a>> {
        // Purely syntactic: the atoms come from the graph alone, so the
        // closure captures no union-find state and is trivially `Sync`.
        Some(Box::new(move |f| {
            Some(crate::steensgaard::extract_func(graph, index, f))
        }))
    }
    fn clone_box(&self) -> SolutionBox {
        Box::new(SteensSolution {
            inner: RefCell::new(self.inner.borrow().clone()),
        })
    }
}

/// The k=1 call-string analysis as a [`Solver`].
#[derive(Debug, Clone, Default)]
pub struct CallStringSolver {
    /// Solver options.
    pub config: CallStringConfig,
}

impl Solver for CallStringSolver {
    fn name(&self) -> &str {
        "k1"
    }

    fn solve(&self, graph: &Graph, ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        let paths = match ci {
            Some(ci) => ci.paths.clone(),
            None => PathTable::for_graph(graph),
        };
        let k1 = analyze_callstring_from(graph, paths, &self.config)?;
        Ok(Box::new(k1))
    }

    fn resume(
        &self,
        graph: &Graph,
        index: &GraphIndex,
        prev: &SolverSummaries,
        ci: Option<&CiResult>,
    ) -> Option<Result<ResumeOutcome, AnalysisError>> {
        let paths = match ci {
            Some(ci) => ci.paths.clone(),
            None => PathTable::for_graph(graph),
        };
        match crate::callstring::analyze_callstring_resume(graph, index, prev, paths, &self.config)?
        {
            Ok((result, stats)) => Some(Ok(ResumeOutcome {
                solution: Box::new(result),
                stats,
            })),
            Err(e) => Some(Err(e.into())),
        }
    }
}

impl Solution for CallStringResult {
    fn analysis(&self) -> &'static str {
        "k1"
    }
    fn pairs(&self) -> Option<usize> {
        Some(self.total_pairs())
    }
    fn flow_ins(&self) -> Option<u64> {
        Some(self.flow_ins)
    }
    fn flow_outs(&self) -> Option<u64> {
        Some(self.flow_outs)
    }
    fn dedup_hits(&self) -> Option<u64> {
        Some(self.dedup_hits)
    }
    fn delta_batches(&self) -> Option<u64> {
        self.delta_batches
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        bases_of(&self.paths, &self.loc_referents(graph, node))
    }
    fn output_referent_bases(&self, _graph: &Graph, out: vdg::graph::OutputId) -> Vec<BaseId> {
        let refs: Vec<PathId> = self.pairs(out).iter().map(|p| p.referent).collect();
        bases_of(&self.paths, &refs)
    }
    fn referents_at(&self, graph: &Graph, node: NodeId) -> Option<Vec<PathId>> {
        Some(self.loc_referents(graph, node))
    }
    fn path_universe(&self) -> Option<&PathTable> {
        Some(&self.paths)
    }
    fn as_points_to(&self) -> Option<&dyn PointsToSolution> {
        Some(self)
    }
    fn as_k1(&self) -> Option<&CallStringResult> {
        Some(self)
    }
    fn into_k1(self: Box<Self>) -> Option<CallStringResult> {
        Some(*self)
    }
    fn vocab(&self) -> Option<Vocab> {
        Some(Vocab::K1)
    }
    fn func_extractor<'a>(
        &'a self,
        graph: &'a Graph,
        index: &'a GraphIndex,
        _ci: Option<&'a CiResult>,
    ) -> Option<FuncExtractor<'a>> {
        Some(Box::new(move |f| {
            crate::callstring::extract_func(self, graph, index, f)
        }))
    }
    fn clone_box(&self) -> SolutionBox {
        Box::new(self.clone())
    }
}

/// Which of the five analyses a [`SolverSpec`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Weihl's program-wide flow-insensitive baseline.
    Weihl,
    /// Steensgaard's unification baseline.
    Steensgaard,
    /// The context-insensitive analysis (§3).
    Ci,
    /// The k=1 call-string analysis.
    CallString1,
    /// The assumption-set context-sensitive analysis (§4).
    Cs,
    /// The demand-driven point-query view of the CI analysis. Not part
    /// of [`SolverSpec::all`]: it answers queries, not spectra.
    Demand,
}

impl SolverKind {
    /// Stable machine-readable name, matching [`Solver::name`].
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Weihl => "weihl",
            SolverKind::Steensgaard => "steensgaard",
            SolverKind::Ci => "ci",
            SolverKind::CallString1 => "k1",
            SolverKind::Cs => "cs",
            SolverKind::Demand => "demand",
        }
    }
}

/// One builder-style description of any solver configuration.
///
/// Collapses the per-solver config scatter (`CiConfig`, `CsConfig`,
/// `CallStringConfig`, the `Propagation` knob, step budgets) into a
/// single value that every harness — the engine, the CLI `spectrum`,
/// the figure bins, the fuzzer — constructs solvers from, so no caller
/// hard-codes five call sites again. Knobs a given analysis does not
/// have are simply ignored by [`SolverSpec::build`]:
///
/// ```
/// use alias::SolverSpec;
/// let spec = SolverSpec::cs().subsumption(false).max_steps(1_000_000);
/// let solver = spec.build(); // Box<dyn Solver>
/// assert_eq!(solver.name(), "cs");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverSpec {
    kind: SolverKind,
    strong_updates: bool,
    order: WorklistOrder,
    heap_naming: HeapNaming,
    propagation: Propagation,
    subsumption: bool,
    ci_pruning: bool,
    max_steps: u64,
    fault: Fault,
}

impl SolverSpec {
    /// A spec for `kind` with the paper-default knobs.
    pub fn new(kind: SolverKind) -> SolverSpec {
        let cs = CsConfig::default();
        SolverSpec {
            kind,
            strong_updates: true,
            order: WorklistOrder::default(),
            heap_naming: HeapNaming::default(),
            propagation: Propagation::default(),
            subsumption: cs.subsumption,
            ci_pruning: cs.ci_pruning,
            max_steps: cs.max_steps,
            fault: Fault::None,
        }
    }

    /// The context-insensitive analysis (§3), default knobs.
    pub fn ci() -> SolverSpec {
        SolverSpec::new(SolverKind::Ci)
    }

    /// The assumption-set CS analysis (§4), default knobs.
    pub fn cs() -> SolverSpec {
        SolverSpec::new(SolverKind::Cs)
    }

    /// Weihl's flow-insensitive baseline, default knobs.
    pub fn weihl() -> SolverSpec {
        SolverSpec::new(SolverKind::Weihl)
    }

    /// Steensgaard's unification baseline (no knobs).
    pub fn steensgaard() -> SolverSpec {
        SolverSpec::new(SolverKind::Steensgaard)
    }

    /// The k=1 call-string analysis, default knobs.
    pub fn k1() -> SolverSpec {
        SolverSpec::new(SolverKind::CallString1)
    }

    /// The demand-driven CI query solver, default knobs and budgets.
    pub fn demand() -> SolverSpec {
        SolverSpec::new(SolverKind::Demand)
    }

    /// Looks up a default spec by [`Solver::name`].
    pub fn by_name(name: &str) -> Option<SolverSpec> {
        let kind = match name {
            "weihl" => SolverKind::Weihl,
            "steensgaard" => SolverKind::Steensgaard,
            "ci" => SolverKind::Ci,
            "k1" => SolverKind::CallString1,
            "cs" => SolverKind::Cs,
            "demand" => SolverKind::Demand,
            _ => return None,
        };
        Some(SolverSpec::new(kind))
    }

    /// All five analyses with default knobs, in spectrum order —
    /// coarsest (Weihl) to finest (assumption-set CS).
    pub fn all() -> Vec<SolverSpec> {
        [
            SolverKind::Weihl,
            SolverKind::Steensgaard,
            SolverKind::Ci,
            SolverKind::CallString1,
            SolverKind::Cs,
        ]
        .into_iter()
        .map(SolverSpec::new)
        .collect()
    }

    /// All five analyses with difference propagation disabled wherever
    /// a solver has that knob (CI, Weihl, k=1). Steensgaard and the
    /// assumption-set CS analysis have no naive/delta distinction.
    pub fn all_naive() -> Vec<SolverSpec> {
        SolverSpec::all()
            .into_iter()
            .map(|s| s.propagation(Propagation::Naive))
            .collect()
    }

    /// Which analysis this spec describes.
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// The spec's [`Solver::name`].
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// A stable textual key over every knob, for cache maps keyed by
    /// solver configuration. Two specs share a key iff they are equal.
    pub fn key(&self) -> String {
        format!("{self:?}")
    }

    /// Perform strong updates (CI, CS, k=1).
    pub fn strong_updates(mut self, on: bool) -> SolverSpec {
        self.strong_updates = on;
        self
    }

    /// Worklist discipline (CI; results are order-independent).
    pub fn order(mut self, order: WorklistOrder) -> SolverSpec {
        self.order = order;
        self
    }

    /// Heap allocation-site naming (CI, CS).
    pub fn heap_naming(mut self, naming: HeapNaming) -> SolverSpec {
        self.heap_naming = naming;
        self
    }

    /// Propagation discipline (CI, Weihl, k=1; results are
    /// discipline-independent).
    pub fn propagation(mut self, propagation: Propagation) -> SolverSpec {
        self.propagation = propagation;
        self
    }

    /// Assumption-set subsumption (CS, §4.2).
    pub fn subsumption(mut self, on: bool) -> SolverSpec {
        self.subsumption = on;
        self
    }

    /// CI-backed assumption pruning (CS, §4.2).
    pub fn ci_pruning(mut self, on: bool) -> SolverSpec {
        self.ci_pruning = on;
        self
    }

    /// Step budget for the potentially exponential solvers (CS, k=1).
    pub fn max_steps(mut self, steps: u64) -> SolverSpec {
        self.max_steps = steps;
        self
    }

    /// Fault injection (CI only), for the fuzzer's planted-bug
    /// self-test. Keep [`Fault::None`] everywhere else.
    pub fn fault(mut self, fault: Fault) -> SolverSpec {
        self.fault = fault;
        self
    }

    /// The spec's knobs projected onto a [`CiConfig`].
    pub fn ci_config(&self) -> CiConfig {
        CiConfig {
            strong_updates: self.strong_updates,
            order: self.order,
            heap_naming: self.heap_naming,
            propagation: self.propagation,
            fault: self.fault,
        }
    }

    /// The spec's knobs projected onto a [`CsConfig`].
    pub fn cs_config(&self) -> CsConfig {
        CsConfig {
            heap_naming: self.heap_naming,
            subsumption: self.subsumption,
            ci_pruning: self.ci_pruning,
            strong_updates: self.strong_updates,
            max_steps: self.max_steps,
        }
    }

    /// The spec's knobs projected onto a [`CallStringConfig`].
    pub fn callstring_config(&self) -> CallStringConfig {
        CallStringConfig {
            strong_updates: self.strong_updates,
            max_steps: self.max_steps,
            propagation: self.propagation,
        }
    }

    /// Constructs the described solver. Knobs the analysis does not
    /// have are ignored.
    pub fn build(&self) -> Box<dyn Solver> {
        match self.kind {
            SolverKind::Weihl => Box::new(WeihlSolver {
                propagation: self.propagation,
            }),
            SolverKind::Steensgaard => Box::new(SteensgaardSolver),
            SolverKind::Ci => Box::new(CiSolver {
                config: self.ci_config(),
            }),
            SolverKind::CallString1 => Box::new(CallStringSolver {
                config: self.callstring_config(),
            }),
            SolverKind::Cs => Box::new(CsSolver {
                config: self.cs_config(),
            }),
            SolverKind::Demand => Box::new(crate::demand::DemandSolver {
                config: crate::demand::DemandConfig {
                    ci: self.ci_config(),
                    ..crate::demand::DemandConfig::default()
                },
            }),
        }
    }

    /// Runs the described solver, like `self.build().solve(..)` but
    /// without the intermediate box.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::StepLimit`] when a budgeted solver (CS, k=1)
    /// exhausts [`SolverSpec::max_steps`].
    pub fn solve(
        &self,
        graph: &Graph,
        ci: Option<&CiResult>,
    ) -> Result<SolutionBox, AnalysisError> {
        self.build().solve(graph, ci)
    }

    /// Runs the CI analysis with this spec's knobs through the unified
    /// solver path and hands back the concrete result — the one typed
    /// entry point harnesses use to compute the shared vocabulary they
    /// then pass to [`SolverSpec::solve`]. The spec's
    /// [`SolverSpec::kind`] is ignored: whatever analysis it names, the
    /// CI projection of its knobs is what runs.
    pub fn solve_ci(&self, graph: &Graph) -> CiResult {
        SolverSpec::new(SolverKind::Ci)
            .strong_updates(self.strong_updates)
            .order(self.order)
            .heap_naming(self.heap_naming)
            .propagation(self.propagation)
            .fault(self.fault)
            .solve(graph, None)
            .expect("the CI solver has no step budget")
            .into_ci()
            .expect("a CI solve yields a CI result")
    }
}

/// All five solvers with default options, in spectrum order — coarsest
/// (Weihl) to finest (assumption-set CS).
pub fn all_solvers() -> Vec<Box<dyn Solver>> {
    SolverSpec::all().iter().map(SolverSpec::build).collect()
}

/// All five solvers with difference propagation disabled wherever a
/// solver has that knob (CI, Weihl, k=1). Steensgaard and the
/// assumption-set CS analysis have no naive/delta distinction.
pub fn all_solvers_naive() -> Vec<Box<dyn Solver>> {
    SolverSpec::all_naive()
        .iter()
        .map(SolverSpec::build)
        .collect()
}

/// Looks up a solver (default options) by its [`Solver::name`].
pub fn solver_by_name(name: &str) -> Option<Box<dyn Solver>> {
    SolverSpec::by_name(name).map(|s| s.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> Graph {
        let p = cfront::compile(src).unwrap();
        vdg::lower(&p, &vdg::BuildOptions::default()).unwrap()
    }

    const SRC: &str = "int g; int h; int *gp;
        int pick(int c, int *a, int *b) { if (c) { gp = a; } else { gp = b; } return *gp; }
        int main(void) { int x; x = pick(1, &g, &h); return x; }";

    #[test]
    fn registry_has_five_distinct_solvers() {
        let names: Vec<String> = all_solvers().iter().map(|s| s.name().to_string()).collect();
        assert_eq!(names, ["weihl", "steensgaard", "ci", "k1", "cs"]);
        assert!(solver_by_name("cs").is_some());
        assert!(solver_by_name("andersen").is_none());
    }

    #[test]
    fn every_solver_produces_a_queryable_solution() {
        let graph = graph_of(SRC);
        let ci = analyze_ci(&graph, &CiConfig::default());
        for s in all_solvers() {
            let sol = s.solve(&graph, Some(&ci)).unwrap();
            assert_eq!(sol.analysis(), s.name());
            for (node, _) in graph.indirect_mem_ops() {
                assert!(
                    !sol.loc_referent_bases(&graph, node).is_empty(),
                    "{}: no referents",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn cs_without_shared_ci_computes_its_own() {
        let graph = graph_of(SRC);
        let ci = analyze_ci(&graph, &CiConfig::default());
        let with = CsSolver::default().solve(&graph, Some(&ci)).unwrap();
        let without = CsSolver::default().solve(&graph, None).unwrap();
        assert_eq!(with.pairs(), without.pairs());
    }
}
