//! A Steensgaard-style *unification-based* baseline.
//!
//! Bjarne Steensgaard's almost-linear points-to analysis (POPL 1996) was
//! developed in the same MSR group as this paper (he is acknowledged in
//! it); it trades precision for near-linear time by *unifying* the
//! targets of every assignment instead of accumulating subset
//! constraints. Implementing it over the same VDG closes the precision
//! spectrum this repository measures:
//!
//! ```text
//! Weihl (program-wide) ⊒ Steensgaard (unification) ⊒ CI (Fig. 1) ⊒ CS (Fig. 5)
//! ```
//!
//! This implementation is field- and flow-insensitive, as the original:
//! all of an object's fields and elements share one equivalence-class
//! representative (ECR), and every value move unifies the pointees of
//! its endpoints.

use crate::fingerprint::GraphIndex;
use crate::fxhash::HashMap;
use crate::summary::{
    FuncFacts, FunctionSummary, ResumeStats, SolverSummaries, SteensConstraint, Vocab,
};
use vdg::graph::{BaseId, Graph, NodeId, NodeKind, OutputId, VFuncId, ValueKind};

/// An equivalence-class representative id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EcrId(pub u32);

/// Union-find over ECRs, each class carrying an optional pointee class.
#[derive(Debug, Clone)]
struct Ecrs {
    parent: Vec<u32>,
    rank: Vec<u8>,
    pts: Vec<Option<u32>>,
}

impl Ecrs {
    fn new() -> Self {
        Ecrs {
            parent: Vec::new(),
            rank: Vec::new(),
            pts: Vec::new(),
        }
    }

    fn fresh(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        self.pts.push(None);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// The pointee class of `x`, created on demand.
    fn pts_of(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        if let Some(p) = self.pts[r as usize] {
            return self.find(p);
        }
        let p = self.fresh();
        let r = self.find(r);
        self.pts[r as usize] = Some(p);
        p
    }

    /// Steensgaard's join: merges two classes and recursively their
    /// pointees.
    fn unify(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (winner, loser) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        if self.rank[winner as usize] == self.rank[loser as usize] {
            self.rank[winner as usize] += 1;
        }
        self.parent[loser as usize] = winner;
        let pw = self.pts[winner as usize];
        let pl = self.pts[loser as usize];
        match (pw, pl) {
            (Some(x), Some(y)) => self.unify(x, y),
            (None, Some(y)) => {
                let w = self.find(winner);
                self.pts[w as usize] = Some(y);
            }
            _ => {}
        }
    }
}

/// Result of the unification analysis.
#[derive(Debug, Clone)]
pub struct SteensResult {
    ecrs: Ecrs,
    /// ECR of each base-location's object.
    base_ecr: Vec<u32>,
    /// ECR of each alias-related output's value.
    out_ecr: HashMap<u32, u32>,
}

impl SteensResult {
    fn class_bases(&mut self, class: u32, graph: &Graph) -> Vec<BaseId> {
        let root = self.ecrs.find(class);
        let mut out = Vec::new();
        for b in graph.base_ids() {
            if self.ecrs.find(self.base_ecr[b.0 as usize]) == root {
                out.push(b);
            }
        }
        out
    }

    /// The base-locations an output's value may point to.
    pub fn points_to_bases(&mut self, out: OutputId, graph: &Graph) -> Vec<BaseId> {
        let Some(&e) = self.out_ecr.get(&out.0) else {
            return Vec::new();
        };
        let p = self.ecrs.pts_of(e);
        self.class_bases(p, graph)
    }

    /// The base-locations a memory operation's location input may
    /// reference — comparable (after collapsing paths to bases) with
    /// [`crate::ci::CiResult::loc_referents`].
    pub fn loc_bases(&mut self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        let loc_out = graph.input_src(node, 0);
        self.points_to_bases(loc_out, graph)
    }

    /// Number of live equivalence classes over base-locations (a size
    /// metric: fewer classes = more merging = less precision).
    pub fn base_class_count(&mut self, graph: &Graph) -> usize {
        let mut roots: Vec<u32> = graph
            .base_ids()
            .map(|b| self.ecrs.find(self.base_ecr[b.0 as usize]))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }
}

/// Runs the unification analysis over a VDG.
///
/// Calls are resolved syntactically: a call whose function input is a
/// direct function constant binds to that function; anything else binds
/// conservatively to every address-taken function.
pub fn analyze_steensgaard(graph: &Graph) -> SteensResult {
    let mut ecrs = Ecrs::new();
    let base_ecr: Vec<u32> = graph.base_ids().map(|_| ecrs.fresh()).collect();
    let mut out_ecr: HashMap<u32, u32> = HashMap::default();
    let ecr_of = |ecrs: &mut Ecrs, out_ecr: &mut HashMap<u32, u32>, o: OutputId| -> u32 {
        *out_ecr.entry(o.0).or_insert_with(|| ecrs.fresh())
    };

    let addr_taken: Vec<vdg::graph::VFuncId> = graph
        .func_ids()
        .filter(|f| graph.func(*f).address_taken)
        .collect();

    for (id, n) in graph.nodes() {
        match &n.kind {
            NodeKind::Base(b) | NodeKind::Alloc(b) | NodeKind::FuncConst(b) => {
                let out = ecr_of(&mut ecrs, &mut out_ecr, n.outputs[0]);
                let p = ecrs.pts_of(out);
                ecrs.unify(p, base_ecr[b.0 as usize]);
            }
            // Field-insensitive: address computations and extractions
            // are plain moves.
            NodeKind::Member(_)
            | NodeKind::IndexElem
            | NodeKind::ExtractField(_)
            | NodeKind::ExtractElem
            | NodeKind::PassThrough => {
                let src = graph.input_src(id, 0);
                if !matches!(graph.output(src).kind, ValueKind::Store) {
                    let a = ecr_of(&mut ecrs, &mut out_ecr, src);
                    let b = ecr_of(&mut ecrs, &mut out_ecr, n.outputs[0]);
                    let (pa, pb) = (ecrs.pts_of(a), ecrs.pts_of(b));
                    ecrs.unify(pa, pb);
                }
            }
            NodeKind::Gamma => {
                if matches!(graph.output(n.outputs[0]).kind, ValueKind::Store) {
                    continue;
                }
                let out = ecr_of(&mut ecrs, &mut out_ecr, n.outputs[0]);
                for port in 0..n.inputs.len() {
                    let src = graph.input_src(id, port);
                    let i = ecr_of(&mut ecrs, &mut out_ecr, src);
                    let (pi, po) = (ecrs.pts_of(i), ecrs.pts_of(out));
                    ecrs.unify(pi, po);
                }
            }
            NodeKind::Lookup { .. } => {
                // out = *loc
                let loc = ecr_of(&mut ecrs, &mut out_ecr, graph.input_src(id, 0));
                let out = ecr_of(&mut ecrs, &mut out_ecr, n.outputs[0]);
                let obj = ecrs.pts_of(loc);
                let contents = ecrs.pts_of(obj);
                let po = ecrs.pts_of(out);
                ecrs.unify(contents, po);
            }
            NodeKind::Update { .. } => {
                // *loc = value
                let loc = ecr_of(&mut ecrs, &mut out_ecr, graph.input_src(id, 0));
                let val = ecr_of(&mut ecrs, &mut out_ecr, graph.input_src(id, 2));
                let obj = ecrs.pts_of(loc);
                let contents = ecrs.pts_of(obj);
                let pv = ecrs.pts_of(val);
                ecrs.unify(contents, pv);
            }
            NodeKind::CopyMem => {
                // *dst = *src
                let dst = ecr_of(&mut ecrs, &mut out_ecr, graph.input_src(id, 1));
                let src = ecr_of(&mut ecrs, &mut out_ecr, graph.input_src(id, 2));
                let od = ecrs.pts_of(dst);
                let os = ecrs.pts_of(src);
                let (cd, cs) = (ecrs.pts_of(od), ecrs.pts_of(os));
                ecrs.unify(cd, cs);
            }
            NodeKind::Call => {
                // Resolve targets syntactically.
                let fsrc = graph.input_src(id, 0);
                let fnode = graph.output(fsrc).node;
                let targets: Vec<vdg::graph::VFuncId> = match &graph.node(fnode).kind {
                    NodeKind::FuncConst(b) => match &graph.base(*b).kind {
                        vdg::graph::BaseKind::Func { func } => vec![*func],
                        _ => addr_taken.clone(),
                    },
                    _ => addr_taken.clone(),
                };
                for f in targets {
                    let entry = graph.func(f).entry;
                    let formals = graph.node(entry).outputs.clone();
                    // Value parameters (skip port 1 = store / formal 0).
                    for port in 2..n.inputs.len() {
                        let idx = port - 1;
                        if idx >= formals.len() {
                            break;
                        }
                        let a = ecr_of(&mut ecrs, &mut out_ecr, graph.input_src(id, port));
                        let p = ecr_of(&mut ecrs, &mut out_ecr, formals[idx]);
                        let (pa, pp) = (ecrs.pts_of(a), ecrs.pts_of(p));
                        ecrs.unify(pa, pp);
                    }
                    // Result.
                    if n.outputs.len() > 1 {
                        let res = ecr_of(&mut ecrs, &mut out_ecr, n.outputs[1]);
                        for &ret in &graph.func(f).returns {
                            if graph.has_input(ret, 1) {
                                let v = ecr_of(&mut ecrs, &mut out_ecr, graph.input_src(ret, 1));
                                let (pv, pr) = (ecrs.pts_of(v), ecrs.pts_of(res));
                                ecrs.unify(pv, pr);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    SteensResult {
        ecrs,
        base_ecr,
        out_ecr,
    }
}

/// Extracts function `f`'s unification constraint atoms — a purely
/// *syntactic* summary over the function's own output offsets, so it
/// needs only the graph, never a solved result. Atoms are sorted and
/// deduplicated: unification is idempotent and order-independent, so
/// the deduplicated replay reaches the identical partition while doing
/// strictly less union-find work than a fresh node walk.
pub(crate) fn extract_func(graph: &Graph, index: &GraphIndex, f: VFuncId) -> FunctionSummary {
    let fi = f.0 as usize;
    let off = |o: OutputId| o.0 - index.out_start[fi];
    let src_off = |n: NodeId, port: usize| off(graph.input_src(n, port));
    let mut atoms: Vec<SteensConstraint> = Vec::new();
    for id in index.node_start[fi]..index.node_end[fi] {
        let id = NodeId(id);
        let n = graph.node(id);
        match &n.kind {
            NodeKind::Base(b) | NodeKind::Alloc(b) | NodeKind::FuncConst(b) => {
                atoms.push(SteensConstraint::Base {
                    out: off(n.outputs[0]),
                    base: index.base_keys[b.0 as usize].clone(),
                });
            }
            NodeKind::Member(_)
            | NodeKind::IndexElem
            | NodeKind::ExtractField(_)
            | NodeKind::ExtractElem
            | NodeKind::PassThrough => {
                let src = graph.input_src(id, 0);
                if !matches!(graph.output(src).kind, ValueKind::Store) {
                    atoms.push(SteensConstraint::Move {
                        dst: off(n.outputs[0]),
                        src: off(src),
                    });
                }
            }
            NodeKind::Gamma => {
                if matches!(graph.output(n.outputs[0]).kind, ValueKind::Store) {
                    continue;
                }
                for port in 0..n.inputs.len() {
                    atoms.push(SteensConstraint::Move {
                        dst: off(n.outputs[0]),
                        src: src_off(id, port),
                    });
                }
            }
            NodeKind::Lookup { .. } => atoms.push(SteensConstraint::Load {
                out: off(n.outputs[0]),
                loc: src_off(id, 0),
            }),
            NodeKind::Update { .. } => atoms.push(SteensConstraint::Store {
                loc: src_off(id, 0),
                val: src_off(id, 2),
            }),
            NodeKind::CopyMem => atoms.push(SteensConstraint::Copy {
                dst: src_off(id, 1),
                src: src_off(id, 2),
            }),
            NodeKind::Call => {
                let args: Vec<u32> = (2..n.inputs.len()).map(|p| src_off(id, p)).collect();
                let result = (n.outputs.len() > 1).then(|| off(n.outputs[1]));
                let fnode = graph.output(graph.input_src(id, 0)).node;
                match &graph.node(fnode).kind {
                    NodeKind::FuncConst(b) => match &graph.base(*b).kind {
                        vdg::graph::BaseKind::Func { func } => {
                            atoms.push(SteensConstraint::CallTo {
                                callee: graph.func(*func).name.clone(),
                                args,
                                result,
                            });
                        }
                        _ => atoms.push(SteensConstraint::CallIndirect { args, result }),
                    },
                    _ => atoms.push(SteensConstraint::CallIndirect { args, result }),
                }
            }
            _ => {}
        }
    }
    atoms.sort_unstable();
    atoms.dedup();
    FunctionSummary {
        fingerprint: index.func_fps[fi],
        // Unification has no dynamic call discovery; targets are bound
        // syntactically inside the atoms, so no call edges to record.
        calls: Vec::new(),
        facts: FuncFacts::Steens(atoms),
    }
}

/// Replays a program's constraint atoms onto a fresh union-find:
/// stored atoms for clean functions, freshly extracted atoms for dirty
/// ones, indirect calls bound to the *current* address-taken set —
/// exactly the unifications of a fresh solve, modulo idempotent
/// duplicates, so the final partition is identical. Returns `None`
/// when stable naming is unsafe or `prev` speaks another vocabulary.
pub(crate) fn replay_steensgaard(
    graph: &Graph,
    index: &GraphIndex,
    prev: &SolverSummaries,
) -> Option<(SteensResult, ResumeStats)> {
    if index.unsafe_reason.is_some() || prev.vocab != Vocab::Steens {
        return None;
    }
    let mut ecrs = Ecrs::new();
    let base_ecr: Vec<u32> = graph.base_ids().map(|_| ecrs.fresh()).collect();
    let mut out_ecr: HashMap<u32, u32> = HashMap::default();
    let addr_taken: Vec<VFuncId> = graph
        .func_ids()
        .filter(|f| graph.func(*f).address_taken)
        .collect();

    let mut stats = ResumeStats {
        total_outputs: graph.output_count(),
        ..ResumeStats::default()
    };
    let mut fresh_atoms: Vec<FunctionSummary> = Vec::new();
    let mut plan: Vec<(VFuncId, &FunctionSummary)> = Vec::new();
    for f in graph.func_ids() {
        let name = &graph.func(f).name;
        let clean = prev
            .funcs
            .get(name)
            .filter(|s| s.fingerprint == index.func_fps[f.0 as usize])
            .filter(|s| matches!(s.facts, FuncFacts::Steens(_)));
        match clean {
            Some(_) => stats.clean += 1,
            None => {
                stats.dirty.push(name.clone());
                let fi = f.0 as usize;
                stats.cone_outputs += (index.out_end[fi] - index.out_start[fi]) as usize;
                fresh_atoms.push(extract_func(graph, index, f));
            }
        }
    }
    stats.dirty.sort_unstable();
    stats.seeded_outputs = stats.total_outputs - stats.cone_outputs;
    let mut fresh_it = fresh_atoms.iter();
    for f in graph.func_ids() {
        let name = &graph.func(f).name;
        let summary = prev
            .funcs
            .get(name)
            .filter(|s| s.fingerprint == index.func_fps[f.0 as usize])
            .filter(|s| matches!(s.facts, FuncFacts::Steens(_)))
            .unwrap_or_else(|| fresh_it.next().expect("fresh atoms per dirty func"));
        plan.push((f, summary));
    }
    for (f, summary) in plan {
        apply_atoms(
            graph,
            index,
            f,
            summary,
            &mut ecrs,
            &base_ecr,
            &mut out_ecr,
            &addr_taken,
        )?;
    }
    Some((
        SteensResult {
            ecrs,
            base_ecr,
            out_ecr,
        },
        stats,
    ))
}

/// Applies one function's atoms to the union-find. `None` when a base
/// key or callee name no longer resolves (only reachable from stale
/// stored atoms; freshly extracted atoms always resolve).
#[allow(clippy::too_many_arguments)]
fn apply_atoms(
    graph: &Graph,
    index: &GraphIndex,
    f: VFuncId,
    summary: &FunctionSummary,
    ecrs: &mut Ecrs,
    base_ecr: &[u32],
    out_ecr: &mut HashMap<u32, u32>,
    addr_taken: &[VFuncId],
) -> Option<()> {
    let FuncFacts::Steens(atoms) = &summary.facts else {
        return None;
    };
    let fi = f.0 as usize;
    let n_outs = index.out_end[fi] - index.out_start[fi];
    let at = |off: u32| -> Option<OutputId> { (off < n_outs).then(|| index.output_at(f, off)) };
    fn ecr_of(out_ecr: &mut HashMap<u32, u32>, ecrs: &mut Ecrs, o: OutputId) -> u32 {
        *out_ecr.entry(o.0).or_insert_with(|| ecrs.fresh())
    }
    fn bind_call(
        graph: &Graph,
        out_ecr: &mut HashMap<u32, u32>,
        ecrs: &mut Ecrs,
        at: &dyn Fn(u32) -> Option<OutputId>,
        targets: &[VFuncId],
        args: &[u32],
        result: Option<u32>,
    ) -> Option<()> {
        for &t in targets {
            let entry = graph.func(t).entry;
            let formals = graph.node(entry).outputs.clone();
            // `args[0]` is call port 2 = first *value* actual; formal 0
            // is the store formal, so value formals start at 1.
            for (idx, &a) in args.iter().enumerate() {
                if idx + 1 >= formals.len() {
                    break;
                }
                let a = ecr_of(out_ecr, ecrs, at(a)?);
                let p = ecr_of(out_ecr, ecrs, formals[idx + 1]);
                let (pa, pp) = (ecrs.pts_of(a), ecrs.pts_of(p));
                ecrs.unify(pa, pp);
            }
            if let Some(res) = result {
                let res = ecr_of(out_ecr, ecrs, at(res)?);
                for &ret in &graph.func(t).returns {
                    if graph.has_input(ret, 1) {
                        let v = ecr_of(out_ecr, ecrs, graph.input_src(ret, 1));
                        let (pv, pr) = (ecrs.pts_of(v), ecrs.pts_of(res));
                        ecrs.unify(pv, pr);
                    }
                }
            }
        }
        Some(())
    }
    for atom in atoms {
        match atom {
            SteensConstraint::Base { out, base } => {
                let b = *index.base_by_key.get(base)?;
                let out = ecr_of(out_ecr, ecrs, at(*out)?);
                let p = ecrs.pts_of(out);
                ecrs.unify(p, base_ecr[b as usize]);
            }
            SteensConstraint::Move { dst, src } => {
                let a = ecr_of(out_ecr, ecrs, at(*src)?);
                let b = ecr_of(out_ecr, ecrs, at(*dst)?);
                let (pa, pb) = (ecrs.pts_of(a), ecrs.pts_of(b));
                ecrs.unify(pa, pb);
            }
            SteensConstraint::Load { out, loc } => {
                let loc = ecr_of(out_ecr, ecrs, at(*loc)?);
                let out = ecr_of(out_ecr, ecrs, at(*out)?);
                let obj = ecrs.pts_of(loc);
                let contents = ecrs.pts_of(obj);
                let po = ecrs.pts_of(out);
                ecrs.unify(contents, po);
            }
            SteensConstraint::Store { loc, val } => {
                let loc = ecr_of(out_ecr, ecrs, at(*loc)?);
                let val = ecr_of(out_ecr, ecrs, at(*val)?);
                let obj = ecrs.pts_of(loc);
                let contents = ecrs.pts_of(obj);
                let pv = ecrs.pts_of(val);
                ecrs.unify(contents, pv);
            }
            SteensConstraint::Copy { dst, src } => {
                let dst = ecr_of(out_ecr, ecrs, at(*dst)?);
                let src = ecr_of(out_ecr, ecrs, at(*src)?);
                let od = ecrs.pts_of(dst);
                let os = ecrs.pts_of(src);
                let (cd, cs) = (ecrs.pts_of(od), ecrs.pts_of(os));
                ecrs.unify(cd, cs);
            }
            SteensConstraint::CallTo {
                callee,
                args,
                result,
            } => {
                let t = *index.func_by_name.get(callee)?;
                bind_call(graph, out_ecr, ecrs, &at, &[t], args, *result)?;
            }
            SteensConstraint::CallIndirect { args, result } => {
                bind_call(graph, out_ecr, ecrs, &at, addr_taken, args, *result)?;
            }
        }
    }
    Some(())
}

/// Collapses a CI referent set to its base-locations, for comparison
/// with the field-insensitive unification result.
pub fn ci_referent_bases(ci: &crate::ci::CiResult, graph: &Graph, node: NodeId) -> Vec<BaseId> {
    let mut bases: Vec<BaseId> = ci
        .loc_referents(graph, node)
        .iter()
        .filter_map(|&p| ci.paths.base_of(p))
        .collect();
    bases.sort_unstable();
    bases.dedup();
    bases
}

/// Whether the CI solution is (base-wise) contained in the unification
/// solution at every memory operation.
pub fn ci_within_steensgaard(
    graph: &Graph,
    ci: &crate::ci::CiResult,
    st: &mut SteensResult,
) -> bool {
    for (node, _) in graph.all_mem_ops() {
        let fine = ci_referent_bases(ci, graph, node);
        let coarse: std::collections::HashSet<BaseId> =
            st.loc_bases(graph, node).into_iter().collect();
        for b in fine {
            if !coarse.contains(&b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::{analyze_ci, CiConfig};
    use vdg::build::{lower, BuildOptions};

    fn pipeline(src: &str) -> (Graph, crate::ci::CiResult, SteensResult) {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let ci = analyze_ci(&g, &CiConfig::default());
        let st = analyze_steensgaard(&g);
        (g, ci, st)
    }

    fn base_names(g: &Graph, bases: &[BaseId]) -> Vec<String> {
        let mut v: Vec<String> = bases.iter().map(|&b| g.base(b).display()).collect();
        v.sort();
        v
    }

    #[test]
    fn simple_pointer_resolves() {
        let (g, _, mut st) = pipeline("int g; int main(void) { int *p; p = &g; return *p; }");
        let (node, _) = g.indirect_mem_ops()[0];
        assert_eq!(base_names(&g, &st.loc_bases(&g, node)), vec!["g"]);
    }

    #[test]
    fn unification_merges_assigned_pointers() {
        // p = &a; q = &b; p = q;  — unification gives q -> {a, b} even
        // though CI keeps q -> {b}. The pointers must be store-resident:
        // register locals are SSA values in the VDG and their "moves"
        // never materialize as assignments (paper §5.1.1).
        let (g, ci, mut st) = pipeline(
            "int a; int b; int *p; int *q;\n\
             int main(void) { p = &a; q = &b; p = q; return *q; }",
        );
        let read = g
            .indirect_mem_ops()
            .into_iter()
            .find(|&(_, w)| !w)
            .map(|(n, _)| n)
            .unwrap();
        assert_eq!(ci_referent_bases(&ci, &g, read).len(), 1, "CI is precise");
        let coarse = base_names(&g, &st.loc_bases(&g, read));
        assert_eq!(coarse, vec!["a", "b"], "unification merged the classes");
    }

    #[test]
    fn ci_is_contained_in_unification() {
        let (g, ci, mut st) = pipeline(
            "struct node { int v; struct node *next; };\n\
             struct node *mk(struct node *t) { struct node *n;\n\
               n = (struct node*)malloc(sizeof(struct node));\n\
               n->next = t; return n; }\n\
             int main(void) { struct node *l; l = mk(mk(NULL));\n\
               while (l != NULL) { l = l->next; } return 0; }",
        );
        assert!(ci_within_steensgaard(&g, &ci, &mut st));
    }

    #[test]
    fn field_insensitivity_collapses_struct_fields() {
        // x and y are distinct paths for CI but one object class here.
        let (g, ci, mut st) = pipeline(
            "struct s { int *x; int *y; };\n\
             int a; int b;\n\
             int main(void) { struct s v; int *r; v.x = &a; v.y = &b; \
             r = v.x; return *r; }",
        );
        let read = g
            .indirect_mem_ops()
            .into_iter()
            .find(|&(_, w)| !w)
            .map(|(n, _)| n)
            .unwrap();
        assert_eq!(ci_referent_bases(&ci, &g, read).len(), 1);
        let coarse = base_names(&g, &st.loc_bases(&g, read));
        assert_eq!(coarse, vec!["a", "b"]);
    }

    #[test]
    fn class_count_shrinks_with_aliasing() {
        let (g, _, mut st) = pipeline(
            "int a; int b; int c; int *p;\n\
             int main(void) { p = &a; p = &b; p = &c; return *p; }",
        );
        // a, b, c all share one class; the remaining bases keep theirs.
        let classes = st.base_class_count(&g);
        assert!(classes < g.base_count(), "{classes} vs {}", g.base_count());
    }

    #[test]
    fn direct_calls_bind_exactly() {
        let (g, _, mut st) = pipeline(
            "int a;\n\
             int *give(void) { return &a; }\n\
             int main(void) { int *p; p = give(); return *p; }",
        );
        let (read, _) = g.indirect_mem_ops()[0];
        assert_eq!(base_names(&g, &st.loc_bases(&g, read)), vec!["a"]);
    }
}
