//! The unified function-summary vocabulary shared by all five solvers.
//!
//! PR 4 introduced caller-independent per-function facts for the CI
//! solver only ([`crate::fingerprint`]); every other solver re-solved
//! from scratch with a recorded excuse. This module generalizes that
//! design into one `FunctionSummary` type able to carry each solver's
//! transfer facts in graph-independent vocabulary:
//!
//! - **CI / Weihl**: committed pairs per output (Weihl additionally
//!   keeps the single program-wide store relation on the container).
//! - **k=1 call-strings**: pairs per output *per context*, a context
//!   being the root or a call site named `(function, node offset)`.
//! - **Assumption-set CS**: per output, each pair with its minimal
//!   antichain of assumption sets; an assumption names a formal *of the
//!   enclosing function* by index (facts inside `f` only ever carry
//!   assumptions on `f`'s own formals — crossing into a callee
//!   introduces the callee's, and resolution at a return rewrites them
//!   onto the caller's). CS summaries also record the CI pruning
//!   information each memory operation was solved under, so a resume
//!   can detect pruning drift.
//! - **Steensgaard**: the function's unification constraint atoms over
//!   its own output offsets — a *syntactic* summary (derivable from the
//!   graph alone) that replays onto a fresh union-find in any order.
//!
//! Summaries are keyed by function name and guarded by the function's
//! content fingerprint ([`crate::fingerprint::GraphIndex`]); the
//! per-solver resume planners translate a clean function's facts into
//! the next graph's vocabulary and install them as seeds outside the
//! dirty cone. The subset-seeding argument of PR 4 carries over to each
//! vocabulary because every solver's transfer system is monotone over
//! its own lattice (pair sets; per-context pair sets; minimal
//! antichains of assumption sets under the superset order; union-find
//! partitions, which are order-independent outright).

use crate::fingerprint::{StablePair, StablePath};
use crate::fxhash::HashMap;

/// Which solver vocabulary a [`SolverSummaries`] is expressed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vocab {
    /// Weihl's program-wide flow-insensitive baseline.
    Weihl,
    /// Steensgaard's unification baseline (constraint atoms).
    Steens,
    /// The context-insensitive analysis (§3).
    Ci,
    /// The k=1 call-string analysis.
    K1,
    /// The assumption-set context-sensitive analysis (§4).
    Cs,
}

impl Vocab {
    /// Stable machine-readable name, used by the persistent store's
    /// versioned `SummaryPayload` and by `ruf95 stats`.
    pub fn name(self) -> &'static str {
        match self {
            Vocab::Weihl => "weihl",
            Vocab::Steens => "steensgaard",
            Vocab::Ci => "ci",
            Vocab::K1 => "k1",
            Vocab::Cs => "cs",
        }
    }

    /// Inverse of [`Vocab::name`].
    pub fn by_name(name: &str) -> Option<Vocab> {
        Some(match name {
            "weihl" => Vocab::Weihl,
            "steensgaard" => Vocab::Steens,
            "ci" => Vocab::Ci,
            "k1" => Vocab::K1,
            "cs" => Vocab::Cs,
            _ => return None,
        })
    }
}

/// A k=1 calling context in stable vocabulary: the root, or a call site
/// named by its owning function and node offset within it. `Ord` so
/// extraction can emit contexts in a canonical order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum StableCtx {
    /// The root context (no pending call).
    Root,
    /// The context of one call site.
    Call {
        /// Name of the function owning the call node.
        func: String,
        /// Node offset of the call within its owner's contiguous range.
        offset: u32,
    },
}

/// One assumption of a CS qualified pair: `pair` must hold on entry at
/// the `formal`-th parameter of the *enclosing* function. `Ord` so
/// extraction can sort sets into a canonical order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StableAssum {
    /// Formal index within the enclosing function's entry outputs.
    pub formal: u32,
    /// The points-to pair assumed to hold there.
    pub pair: StablePair,
}

/// The CI pruning facts one CS memory operation was solved under
/// (paper §4.2). Recorded so a resume can detect that the current CI
/// solution prunes differently and re-derive the operation's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemOpPruning {
    /// Node offset of the memory operation within its owner.
    pub offset: u32,
    /// Whether the CI bound proved exactly one referenced location.
    pub single: bool,
    /// The CI referents at the operation's location input.
    pub loc_refs: Vec<StablePath>,
}

/// One Steensgaard unification constraint, over output offsets within
/// the owning function (every VDG input edge is intra-function by
/// construction, so offsets suffice). `Ord` so extraction can sort and
/// deduplicate: unification is idempotent and order-independent.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SteensConstraint {
    /// `pts(out) ∋ base`: a Base/Alloc/FuncConst node's address seed.
    Base {
        /// Output offset of the constant node's value.
        out: u32,
        /// Stable key of the base-location.
        base: String,
    },
    /// Value move: `pts(dst) ~ pts(src)`.
    Move {
        /// Destination output offset.
        dst: u32,
        /// Source output offset.
        src: u32,
    },
    /// `out = *loc`.
    Load {
        /// Result output offset.
        out: u32,
        /// Location output offset.
        loc: u32,
    },
    /// `*loc = val`.
    Store {
        /// Location output offset.
        loc: u32,
        /// Stored-value output offset.
        val: u32,
    },
    /// `*dst = *src` (CopyMem).
    Copy {
        /// Destination-pointer output offset.
        dst: u32,
        /// Source-pointer output offset.
        src: u32,
    },
    /// A call bound syntactically to one named function.
    CallTo {
        /// Callee name.
        callee: String,
        /// Actual-argument output offsets (value ports, in order).
        args: Vec<u32>,
        /// Result output offset, when the call has a value result.
        result: Option<u32>,
    },
    /// A call through a function pointer: bound at replay time to the
    /// *current* graph's address-taken set, exactly as a fresh solve
    /// binds it.
    CallIndirect {
        /// Actual-argument output offsets (value ports, in order).
        args: Vec<u32>,
        /// Result output offset, when the call has a value result.
        result: Option<u32>,
    },
}

/// Per-solver transfer facts of one function, in stable vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuncFacts {
    /// Committed pairs per output offset.
    Ci(Vec<Vec<StablePair>>),
    /// Committed value pairs per output offset (store-typed outputs are
    /// empty; their pairs live in [`SolverSummaries::store`]).
    Weihl(Vec<Vec<StablePair>>),
    /// Per output offset: each context's committed pairs.
    K1(Vec<Vec<(StableCtx, Vec<StablePair>)>>),
    /// Qualified CS facts.
    Cs {
        /// Per output offset: each pair with its minimal antichain of
        /// assumption sets.
        outputs: Vec<Vec<(StablePair, Vec<Vec<StableAssum>>)>>,
        /// CI pruning records for the function's memory operations.
        memops: Vec<MemOpPruning>,
    },
    /// Unification constraint atoms.
    Steens(Vec<SteensConstraint>),
}

impl FuncFacts {
    /// Number of per-output fact rows, `None` for the offset-free
    /// Steensgaard atoms.
    pub fn output_rows(&self) -> Option<usize> {
        match self {
            FuncFacts::Ci(v) | FuncFacts::Weihl(v) => Some(v.len()),
            FuncFacts::K1(v) => Some(v.len()),
            FuncFacts::Cs { outputs, .. } => Some(outputs.len()),
            FuncFacts::Steens(_) => None,
        }
    }
}

/// Memoized facts of one function from one solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSummary {
    /// The function's content fingerprint at extraction time.
    pub fingerprint: u64,
    /// Call-edge facts: `(call-node offset, sorted callee names)`.
    pub calls: Vec<(u32, Vec<String>)>,
    /// The solver-vocabulary transfer facts.
    pub facts: FuncFacts,
}

/// A whole program's summaries under one solver vocabulary: the unit
/// the [`crate::Solver`] `summarize`/`resume` capability produces and
/// consumes, the `SummaryCache` memoizes, and the disk store persists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverSummaries {
    /// The vocabulary the facts are expressed in.
    pub vocab: Vocab,
    /// Per-function summaries, keyed by function name.
    pub funcs: HashMap<String, FunctionSummary>,
    /// The program-wide store relation (Weihl only; empty otherwise).
    pub store: Vec<StablePair>,
}

impl SolverSummaries {
    /// An empty container for `vocab`.
    pub fn new(vocab: Vocab) -> SolverSummaries {
        SolverSummaries {
            vocab,
            funcs: HashMap::default(),
            store: Vec::new(),
        }
    }

    /// Total fact rows across functions, a coarse size metric for cache
    /// accounting and `ruf95 stats`.
    pub fn fact_rows(&self) -> usize {
        self.funcs
            .values()
            .map(|f| f.facts.output_rows().unwrap_or(1) + f.calls.len())
            .sum::<usize>()
            + self.store.len()
    }
}

/// How a seeded resume went: the numbers the engine surfaces in
/// `SolveMode::DirtyCone` and `ruf95 stats`.
#[derive(Debug, Clone, Default)]
pub struct ResumeStats {
    /// Names of the functions that were re-summarized (fingerprint or
    /// translation changes), sorted.
    pub dirty: Vec<String>,
    /// Number of functions whose summaries replayed clean.
    pub clean: usize,
    /// Outputs inside the dirty cone (recomputed).
    pub cone_outputs: usize,
    /// Outputs seeded from the previous summaries.
    pub seeded_outputs: usize,
    /// Total outputs in the next graph.
    pub total_outputs: usize,
}
