//! The context-insensitive points-to analysis (paper §3, Figure 1).
//!
//! Points-to facts are hash-consed into dense [`PairId`]s and stored in
//! compact [`PairSet`]s (sorted small-vec spilling to a bitset). Under
//! the default [`Propagation::Delta`] discipline the worklist carries
//! *outputs with pending deltas*: each step takes an output's batch of
//! newly committed pairs and pushes the whole batch through every
//! consumer's transfer function, so a pair is delivered to each consumer
//! exactly once and the per-delivery queue traffic of the naive scheme
//! disappears. [`Propagation::Naive`] retains the seed discipline (one
//! `(input, pair)` delivery per step) for the equivalence tests; both
//! schedules reach the same least fixpoint, and because
//! [`PathTable::canonicalize`] renumbers the interned paths at finish,
//! the two modes return *numerically identical* results.
//!
//! Calls and returns are treated like jumps (all information at actuals
//! flows to all callees, all returns flow to all callers). Strong
//! updates block store pairs whose paths are definitely overwritten; the
//! pseudocode's dual-worklist effect (delaying store pairs until a
//! location pair arrives, re-examining blocked pairs when further
//! location pairs arrive) falls out of the arrival-driven transfer
//! functions.

use crate::fxhash::{HashMap, HashSet};
use crate::pairset::{PairId, PairInterner, PairSet, Propagation};
use crate::path::{AccessOp, Pair, PathId, PathTable};
use std::collections::VecDeque;
use vdg::graph::{Graph, InputId, NodeId, NodeKind, OutputId, VFuncId};

/// Worklist discipline; the fixpoint is scheduling-independent (tested).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorklistOrder {
    /// Process oldest deliveries first (queue).
    #[default]
    Fifo,
    /// Process newest deliveries first (stack).
    Lifo,
}

/// How heap allocation sites are named (paper §2 footnote 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapNaming {
    /// One base-location per static allocation site (paper default).
    #[default]
    Site,
    /// Site plus the immediate caller of the allocating function: when a
    /// heap pair leaves the function containing its allocation site, the
    /// base is cloned per call site — "naming such base-locations with a
    /// call string instead of a single allocation site". The paper
    /// (§5.1.1) predicts finer heap naming yields a larger pool of
    /// locations and *more* spurious pairs under context-insensitivity.
    CallString1,
}

/// Deliberate fault injection, exercised by the differential fuzzer's
/// planted-bug self-test (`engine::fuzz`). Every real configuration uses
/// [`Fault::None`]; the other variants exist so the fuzzing pipeline can
/// prove it *detects and minimizes* a genuine soundness bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No injected fault (the only sound configuration).
    #[default]
    None,
    /// Weakened strong-update guard: a store through a *may*-alias
    /// location set kills the previous bindings of **every** referent,
    /// as if each were a must-referent. Unsound as soon as the location
    /// set has two or more entries.
    OverStrongUpdates,
}

/// Configuration of the CI solver.
#[derive(Debug, Clone)]
pub struct CiConfig {
    /// Perform strong updates (paper default: yes). Disabling is an
    /// ablation that degrades precision but stays sound.
    pub strong_updates: bool,
    /// Worklist discipline (results are order-independent).
    pub order: WorklistOrder,
    /// How heap allocation sites are named.
    pub heap_naming: HeapNaming,
    /// Propagation discipline (results are discipline-independent).
    pub propagation: Propagation,
    /// Fault injection for the fuzzer's planted-bug test; keep
    /// [`Fault::None`] everywhere else.
    pub fault: Fault,
}

impl Default for CiConfig {
    fn default() -> Self {
        CiConfig {
            strong_updates: true,
            order: WorklistOrder::Fifo,
            heap_naming: HeapNaming::Site,
            propagation: Propagation::Delta,
            fault: Fault::None,
        }
    }
}

/// Result of the context-insensitive analysis.
///
/// The path table is in canonical (structural) order — see
/// [`PathTable::canonicalize`] — so any two schedules of the solver
/// produce byte-identical results.
#[derive(Debug, Clone)]
pub struct CiResult {
    /// The interned path universe (shared vocabulary with the CS solver).
    pub paths: PathTable,
    pairs: Vec<Vec<Pair>>,
    /// Pair deliveries consumed (`flow-in`s; §4.2 cost metric). One per
    /// `(consumer, pair)` regardless of batching, so the value is
    /// identical under either propagation discipline.
    pub flow_ins: u64,
    /// Successful meets (`flow-out`s; §4.2 cost metric): emissions that
    /// grew an output's set. Redundant emission attempts are counted
    /// separately in [`CiResult::dedup_hits`].
    pub flow_outs: u64,
    /// Emission attempts deduplicated by the committed sets (the
    /// representation's dedup hit count; scheduling-dependent).
    pub dedup_hits: u64,
    /// Batched delta deliveries consumed (`None` under
    /// [`Propagation::Naive`]). `flow_ins − delta_batches` is the
    /// number of worklist deliveries the batching saved.
    pub delta_batches: Option<u64>,
    /// Discovered call graph: call node -> callees (sorted).
    pub callees: HashMap<NodeId, Vec<VFuncId>>,
}

impl CiResult {
    /// The points-to pairs on an output, sorted.
    pub fn pairs(&self, o: OutputId) -> &[Pair] {
        &self.pairs[o.0 as usize]
    }

    /// Total number of points-to pairs across all outputs (Figure 3).
    pub fn total_pairs(&self) -> usize {
        self.pairs.iter().map(|p| p.len()).sum()
    }

    /// Distinct referents of the location input of a memory operation
    /// (the Figure 4 "locations accessed" metric).
    pub fn loc_referents(&self, graph: &Graph, node: NodeId) -> Vec<PathId> {
        let loc_out = graph.input_src(node, 0);
        let mut refs: Vec<PathId> = self.pairs(loc_out).iter().map(|p| p.referent).collect();
        refs.sort_unstable();
        refs.dedup();
        refs
    }
}

/// Runs the context-insensitive analysis over `graph`.
pub fn analyze_ci(graph: &Graph, config: &CiConfig) -> CiResult {
    let mut s = Solver::new(graph, config.clone());
    s.seed();
    s.run();
    s.finish()
}

/// Resumes the context-insensitive analysis from a
/// [`CiResumePlan`](crate::fingerprint::CiResumePlan): outputs outside
/// the edit's dirty cone are installed with their (provably final)
/// committed sets from the previous run, and only the cone is
/// re-solved. Because the transfer system is monotone in the committed
/// sets and the plan seeds a subset of the least fixpoint, the result
/// is numerically identical to [`analyze_ci`] on the same graph — same
/// canonical path ids, same sorted pair sets, same call graph. Flow
/// counters (`flow_ins`/`flow_outs`/…) reflect only the resumed
/// portion of the work and are *not* comparable to a fresh run's.
///
/// The caller must not use [`HeapNaming::CallString1`] or Cooper-style
/// instance naming with a seeded plan; the planner refuses to build
/// one for such graphs (see `GraphIndex::unsafe_reason`).
pub fn analyze_ci_resume(
    graph: &Graph,
    config: &CiConfig,
    plan: crate::fingerprint::CiResumePlan,
) -> CiResult {
    let crate::fingerprint::CiResumePlan {
        paths,
        seeds,
        call_edges,
        ..
    } = plan;
    let mut s = Solver::new(graph, config.clone());
    s.paths = paths;
    let in_cone: Vec<bool> = seeds.iter().map(|p| p.is_none()).collect();

    // 1. Install seeds as committed facts — no deltas, no queueing.
    //    These sets are final; re-delivering them wholesale would redo
    //    the work the cache exists to skip.
    for (o, pairs) in seeds.iter().enumerate() {
        let Some(pairs) = pairs else { continue };
        for &p in pairs {
            let id = s.interner.intern(p);
            s.sets[o].insert(id);
        }
        let d = s.sets[o].take_delta();
        s.sets[o].recycle(d);
    }

    // 2. Install call edges whose callee sets are provably final (the
    //    call's function input is outside the cone). `register_callee`
    //    treats them as already known, skipping the push/pull replay.
    for (&call, callees) in &call_edges {
        for &f in callees {
            s.callees.entry(call).or_default().push(f);
            s.callers.entry(f).or_default().push(call);
        }
    }

    // 3. Constant seeds. On out-of-cone outputs the `(ε, base)` pair is
    //    already committed and dedups silently.
    s.seed();

    // 4. Boundary deliveries: an out-of-cone output's committed set was
    //    installed silently, so any consumer that can emit into the
    //    cone must have it delivered by hand, exactly once, after every
    //    seed is in place (so sibling-set reads in the Lookup/Update/
    //    CopyMem transfers see complete out-of-cone sets).
    //
    //    Plain nodes: deliver out-of-cone inputs of any node with an
    //    in-cone output. Calls and returns route emissions across
    //    function boundaries and are handled by the rules below; Primop
    //    emits nothing; PassThrough only forwards port 0.
    for (id, n) in graph.nodes() {
        match n.kind {
            NodeKind::Call | NodeKind::Return { .. } | NodeKind::Primop => continue,
            _ => {}
        }
        if !n.outputs.iter().any(|&o| in_cone[o.0 as usize]) {
            continue;
        }
        for (port, &inp) in n.inputs.iter().enumerate() {
            if matches!(n.kind, NodeKind::PassThrough) && port != 0 {
                continue;
            }
            let src = graph.input(inp).src;
            if !in_cone[src.0 as usize] {
                deliver_committed(&mut s, id, port, src);
            }
        }
    }
    //    Seeded calls: if any callee entry output is in the cone, the
    //    formals need the actuals from out-of-cone actual inputs.
    //    (Calls whose function input is in-cone have no seeded edges;
    //    `register_callee` pushes the committed actual sets when the
    //    edge is re-discovered during the run.)
    for (&call, callees) in &call_edges {
        let needed = callees.iter().any(|&f| {
            graph
                .node(graph.func(f).entry)
                .outputs
                .iter()
                .any(|&o| in_cone[o.0 as usize])
        });
        if !needed {
            continue;
        }
        for port in 1..graph.node(call).inputs.len() {
            let src = graph.input_src(call, port);
            if !in_cone[src.0 as usize] {
                deliver_committed(&mut s, call, port, src);
            }
        }
    }
    //    Returns: a seeded caller whose call outputs are in the cone
    //    needs the callee's out-of-cone return inputs forwarded.
    //    (Emissions to out-of-cone callers of the same function dedup.)
    let mut ret_needed: crate::fxhash::HashSet<VFuncId> = crate::fxhash::HashSet::default();
    for (&call, callees) in &call_edges {
        if graph
            .node(call)
            .outputs
            .iter()
            .any(|&o| in_cone[o.0 as usize])
        {
            ret_needed.extend(callees.iter().copied());
        }
    }
    for &f in &ret_needed {
        for &ret in &graph.func(f).returns {
            let n_inputs = graph.node(ret).inputs.len();
            for port in 0..n_inputs {
                let src = graph.input_src(ret, port);
                if !in_cone[src.0 as usize] {
                    deliver_committed(&mut s, ret, port, src);
                }
            }
        }
    }

    // 5. Solve the cone to its fixpoint and canonicalize.
    s.run();
    s.finish()
}

/// Delivers the full committed set of `src` to `(node, port)`.
pub(crate) fn deliver_committed(s: &mut Solver, node: NodeId, port: usize, src: OutputId) {
    let pairs: Vec<Pair> = s.sets[src.0 as usize]
        .iter()
        .map(|id| s.interner.resolve(id))
        .collect();
    for p in pairs {
        s.deliver(node, port, p);
    }
}

pub(crate) struct Solver<'g> {
    pub(crate) g: &'g Graph,
    pub(crate) cfg: CiConfig,
    pub(crate) paths: PathTable,
    pub(crate) interner: PairInterner,
    /// Committed pairs (with pending deltas) per output.
    pub(crate) sets: Vec<PairSet>,
    /// Naive-mode worklist: single `(input, pair)` deliveries.
    naive_wl: VecDeque<(InputId, PairId)>,
    /// Delta-mode worklist: outputs with a pending delta.
    out_wl: VecDeque<u32>,
    queued: Vec<bool>,
    pub(crate) callees: HashMap<NodeId, Vec<VFuncId>>,
    pub(crate) callers: HashMap<VFuncId, Vec<NodeId>>,
    /// Owner function of each heap base's allocation site (only filled
    /// under [`HeapNaming::CallString1`]).
    alloc_owner: HashMap<vdg::graph::BaseId, VFuncId>,
    pub(crate) flow_ins: u64,
    flow_outs: u64,
    dedup_hits: u64,
    delta_batches: u64,
    /// Emission mask for the demand-driven solver: when present, an
    /// emission to an output outside the mask is dropped *before* it is
    /// committed, so inactive outputs never accumulate partial sets.
    /// `None` (the exhaustive solvers) admits every output.
    pub(crate) active: Option<Vec<bool>>,
    /// Delivery budget: the run loops stop once `flow_ins` reaches this
    /// limit, leaving the worklists non-empty (the demand solver's
    /// exhaustion signal). `u64::MAX` for the exhaustive solvers.
    pub(crate) step_limit: u64,
    /// Reusable emission and side-input buffers (no per-delivery
    /// allocation in the hot loop).
    em: Vec<(OutputId, Pair)>,
    scratch_a: Vec<Pair>,
    scratch_b: Vec<Pair>,
}

/// The owned, graph-independent portion of a [`Solver`], carried by the
/// demand-driven solver between point queries. The worklists and
/// scratch buffers are deliberately absent: parts may only be extracted
/// from a solver whose worklists are drained (or whose state is being
/// abandoned after budget exhaustion).
#[derive(Debug, Clone)]
pub(crate) struct SolverParts {
    pub(crate) paths: PathTable,
    pub(crate) interner: PairInterner,
    pub(crate) sets: Vec<PairSet>,
    pub(crate) callees: HashMap<NodeId, Vec<VFuncId>>,
    pub(crate) callers: HashMap<VFuncId, Vec<NodeId>>,
    pub(crate) alloc_owner: HashMap<vdg::graph::BaseId, VFuncId>,
    pub(crate) flow_ins: u64,
    pub(crate) flow_outs: u64,
    pub(crate) dedup_hits: u64,
    pub(crate) delta_batches: u64,
}

/// Computes the owning function of every heap allocation site.
pub(crate) fn alloc_owner_map(g: &Graph) -> HashMap<vdg::graph::BaseId, VFuncId> {
    let owner = crate::modref::node_owner_map(g);
    let mut map = HashMap::default();
    for (id, n) in g.nodes() {
        if let NodeKind::Alloc(b) = n.kind {
            map.insert(b, owner[id.0 as usize]);
        }
    }
    map
}

/// Under k=1 heap naming, a heap pair leaving its allocator function
/// `f` through `call` gets its heap bases cloned per call site.
fn rename_heap(
    heap_naming: HeapNaming,
    alloc_owner: &HashMap<vdg::graph::BaseId, VFuncId>,
    paths: &mut PathTable,
    pair: Pair,
    f: VFuncId,
    call: NodeId,
) -> Pair {
    if heap_naming != HeapNaming::CallString1 {
        return pair;
    }
    let mut fix = |p: PathId| -> PathId {
        match paths.base_of(p) {
            Some(b) if !paths.is_synthetic(b) && alloc_owner.get(&b) == Some(&f) => {
                let clone = paths.heap_clone(b, call.0);
                paths.rebase(p, clone)
            }
            _ => p,
        }
    };
    Pair::new(fix(pair.path), fix(pair.referent))
}

/// Cooper-scheme variants of a pair crossing a call/return boundary
/// into/out of `boundary_func`: any base with an `older` companion
/// whose owner may be re-entered through the boundary also denotes
/// older instances on the far side.
fn cooper_variants(
    g: &Graph,
    paths: &mut PathTable,
    pair: Pair,
    boundary_func: VFuncId,
) -> Vec<Pair> {
    let mut out = vec![pair];
    for side in 0..2 {
        let n = out.len();
        for i in 0..n {
            let p = out[i];
            let path = if side == 0 { p.path } else { p.referent };
            let Some(older) = paths.cooper_older_of(path) else {
                continue;
            };
            let Some(base) = paths.base_of(path) else {
                continue;
            };
            let owner = match &g.base(base).kind {
                vdg::graph::BaseKind::Local { func, .. } => *func,
                _ => continue,
            };
            if !g.can_reach(boundary_func, owner) {
                continue;
            }
            let rebased = paths.rebase(path, older);
            let variant = if side == 0 {
                Pair::new(rebased, p.referent)
            } else {
                Pair::new(p.path, rebased)
            };
            out.push(variant);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Call input `port` (1 = store, 2+i = actual i) feeds entry output
/// `port - 1` of the callee.
fn forward_to_formal(
    g: &Graph,
    paths: &mut PathTable,
    port: usize,
    pair: Pair,
    f: VFuncId,
    em: &mut Vec<(OutputId, Pair)>,
) {
    let entry = g.func(f).entry;
    let formals = &g.node(entry).outputs;
    let idx = port - 1;
    if idx >= formals.len() {
        return; // arity mismatch through a function pointer
    }
    let formal = formals[idx];
    for v in cooper_variants(g, paths, pair, f) {
        em.push((formal, v));
    }
}

/// Return input `port` (0 = store, 1 = value) feeds call output `port`.
#[allow(clippy::too_many_arguments)]
fn forward_to_caller(
    g: &Graph,
    heap_naming: HeapNaming,
    alloc_owner: &HashMap<vdg::graph::BaseId, VFuncId>,
    paths: &mut PathTable,
    call: NodeId,
    port: usize,
    pair: Pair,
    f: VFuncId,
    em: &mut Vec<(OutputId, Pair)>,
) {
    let outs = &g.node(call).outputs;
    if port >= outs.len() {
        return; // e.g. value returned to a void-typed call site
    }
    let out = outs[port];
    let pair = rename_heap(heap_naming, alloc_owner, paths, pair, f, call);
    for v in cooper_variants(g, paths, pair, f) {
        em.push((out, v));
    }
}

impl<'g> Solver<'g> {
    pub(crate) fn new(g: &'g Graph, cfg: CiConfig) -> Self {
        let alloc_owner = if cfg.heap_naming == HeapNaming::CallString1 {
            alloc_owner_map(g)
        } else {
            HashMap::default()
        };
        Solver {
            g,
            cfg,
            paths: PathTable::for_graph(g),
            interner: PairInterner::new(),
            sets: vec![PairSet::new(); g.output_count()],
            naive_wl: VecDeque::new(),
            out_wl: VecDeque::new(),
            queued: vec![false; g.output_count()],
            callees: HashMap::default(),
            callers: HashMap::default(),
            alloc_owner,
            flow_ins: 0,
            flow_outs: 0,
            dedup_hits: 0,
            delta_batches: 0,
            active: None,
            step_limit: u64::MAX,
            em: Vec::new(),
            scratch_a: Vec::new(),
            scratch_b: Vec::new(),
        }
    }

    /// Rebuilds a solver around state carried over from earlier demand
    /// queries. The committed sets, interner, path table, and call
    /// graph resume exactly where [`Solver::into_parts`] left them;
    /// worklists start empty (parts are only extracted at fixpoint).
    pub(crate) fn from_parts(
        g: &'g Graph,
        cfg: CiConfig,
        parts: SolverParts,
        active: Vec<bool>,
    ) -> Self {
        let mut s = Solver::new(g, cfg);
        s.paths = parts.paths;
        s.interner = parts.interner;
        s.sets = parts.sets;
        s.callees = parts.callees;
        s.callers = parts.callers;
        s.alloc_owner = parts.alloc_owner;
        s.flow_ins = parts.flow_ins;
        s.flow_outs = parts.flow_outs;
        s.dedup_hits = parts.dedup_hits;
        s.delta_batches = parts.delta_batches;
        s.active = Some(active);
        s
    }

    /// Extracts the carry-over state. Call only at fixpoint (drained
    /// worklists) — any queued deliveries are dropped.
    pub(crate) fn into_parts(self) -> SolverParts {
        SolverParts {
            paths: self.paths,
            interner: self.interner,
            sets: self.sets,
            callees: self.callees,
            callers: self.callers,
            alloc_owner: self.alloc_owner,
            flow_ins: self.flow_ins,
            flow_outs: self.flow_outs,
            dedup_hits: self.dedup_hits,
            delta_batches: self.delta_batches,
        }
    }

    /// Whether the last [`Solver::run`] stopped on [`Solver::step_limit`]
    /// rather than at fixpoint.
    pub(crate) fn exhausted(&self) -> bool {
        !self.naive_wl.is_empty() || !self.out_wl.is_empty()
    }

    /// Seeds address/function/allocation constants with `(ε, base)` —
    /// the paper's initialization loop over base-locations.
    pub(crate) fn seed(&mut self) {
        let mut seeds = Vec::new();
        for (id, n) in self.g.nodes() {
            let base = match n.kind {
                NodeKind::Base(b) | NodeKind::Alloc(b) | NodeKind::FuncConst(b) => b,
                _ => continue,
            };
            let root = self.paths.base_root(base);
            let out = self.g.node(id).outputs[0];
            seeds.push((out, Pair::new(PathTable::EMPTY, root)));
        }
        for (out, pair) in seeds {
            self.flow_out(out, pair);
        }
    }

    pub(crate) fn run(&mut self) {
        match self.cfg.propagation {
            Propagation::Naive => self.run_naive(),
            Propagation::Delta => self.run_delta(),
        }
    }

    fn run_naive(&mut self) {
        loop {
            if self.flow_ins >= self.step_limit {
                break;
            }
            let item = match self.cfg.order {
                WorklistOrder::Fifo => self.naive_wl.pop_front(),
                WorklistOrder::Lifo => self.naive_wl.pop_back(),
            };
            let Some((input, id)) = item else { break };
            self.flow_ins += 1;
            let pair = self.interner.resolve(id);
            let info = self.g.input(input);
            self.deliver(info.node, info.port as usize, pair);
        }
    }

    fn run_delta(&mut self) {
        loop {
            if self.flow_ins >= self.step_limit {
                break;
            }
            let item = match self.cfg.order {
                WorklistOrder::Fifo => self.out_wl.pop_front(),
                WorklistOrder::Lifo => self.out_wl.pop_back(),
            };
            let Some(o) = item else { break };
            self.queued[o as usize] = false;
            let batch = self.sets[o as usize].take_delta();
            let g = self.g;
            for &input in g.consumers(OutputId(o)) {
                self.delta_batches += 1;
                self.flow_ins += batch.len() as u64;
                let info = g.input(input);
                for &id in &batch {
                    let pair = self.interner.resolve(PairId(id));
                    self.deliver(info.node, info.port as usize, pair);
                }
            }
            self.sets[o as usize].recycle(batch);
        }
    }

    /// Applies the transfer function for one delivered pair and flows
    /// the emissions out.
    pub(crate) fn deliver(&mut self, node: NodeId, port: usize, pair: Pair) {
        let mut em = std::mem::take(&mut self.em);
        self.transfer(node, port, pair, &mut em);
        for &(out, p) in &em {
            self.flow_out(out, p);
        }
        em.clear();
        self.em = em;
    }

    pub(crate) fn finish(self) -> CiResult {
        let Solver {
            paths,
            interner,
            sets,
            mut callees,
            cfg,
            flow_ins,
            flow_outs,
            dedup_hits,
            delta_batches,
            ..
        } = self;
        let mut resolved: Vec<Vec<Pair>> = sets
            .iter()
            .map(|s| s.iter().map(|id| interner.resolve(id)).collect())
            .collect();
        let mut used: HashSet<PathId> = HashSet::default();
        for v in &resolved {
            for p in v {
                used.insert(p.path);
                used.insert(p.referent);
            }
        }
        let (canon, remap) = paths.canonicalize(&used);
        for v in &mut resolved {
            for p in v.iter_mut() {
                *p = Pair::new(
                    PathId(remap[p.path.0 as usize]),
                    PathId(remap[p.referent.0 as usize]),
                );
            }
            v.sort_unstable();
        }
        for fs in callees.values_mut() {
            fs.sort_unstable_by_key(|f| f.0);
        }
        CiResult {
            paths: canon,
            pairs: resolved,
            flow_ins,
            flow_outs,
            dedup_hits,
            delta_batches: match cfg.propagation {
                Propagation::Naive => None,
                Propagation::Delta => Some(delta_batches),
            },
            callees,
        }
    }

    pub(crate) fn flow_out(&mut self, out: OutputId, pair: Pair) {
        // Demand mask: emissions to outputs outside the solved region
        // are dropped before they commit, so an inactive output's set
        // stays empty (not partial) until its slice is activated.
        if let Some(active) = &self.active {
            if !active[out.0 as usize] {
                return;
            }
        }
        let id = self.interner.intern(pair);
        let o = out.0 as usize;
        if self.sets[o].insert(id) {
            self.flow_outs += 1;
            match self.cfg.propagation {
                Propagation::Naive => {
                    // Deliveries ride on the worklist directly; the
                    // per-set delta is unused.
                    self.sets[o].take_delta();
                    for &input in self.g.consumers(out) {
                        self.naive_wl.push_back((input, id));
                    }
                }
                Propagation::Delta => {
                    if !self.queued[o] && !self.g.consumers(out).is_empty() {
                        self.queued[o] = true;
                        self.out_wl.push_back(out.0);
                    }
                }
            }
        } else {
            self.dedup_hits += 1;
        }
    }

    /// Collects the committed pairs at `(node, port)` that satisfy
    /// `keep` into `buf` (cleared first).
    fn collect_pairs(
        &self,
        node: NodeId,
        port: usize,
        buf: &mut Vec<Pair>,
        keep: impl Fn(&PathTable, Pair) -> bool,
    ) {
        buf.clear();
        let src = self.g.input_src(node, port);
        buf.extend(
            self.sets[src.0 as usize]
                .iter()
                .map(|id| self.interner.resolve(id))
                .filter(|&p| keep(&self.paths, p)),
        );
    }

    /// The transfer function: a new `pair` arrived on `port` of `node`;
    /// pushes the pairs to emit into `em`. Borrows node metadata from
    /// the graph — no per-delivery allocation.
    fn transfer(&mut self, node: NodeId, port: usize, pair: Pair, em: &mut Vec<(OutputId, Pair)>) {
        let g = self.g;
        let n = g.node(node);
        let mut sa = std::mem::take(&mut self.scratch_a);
        let mut sb = std::mem::take(&mut self.scratch_b);
        match &n.kind {
            NodeKind::Member(f) => {
                let r = self.paths.child(pair.referent, AccessOp::Field(*f));
                em.push((n.outputs[0], Pair::new(pair.path, r)));
            }
            NodeKind::IndexElem => {
                let r = self.paths.child(pair.referent, AccessOp::Index);
                em.push((n.outputs[0], Pair::new(pair.path, r)));
            }
            NodeKind::ExtractField(f) => {
                if let Some(p) = self.paths.strip_first(pair.path, AccessOp::Field(*f)) {
                    em.push((n.outputs[0], Pair::new(p, pair.referent)));
                }
            }
            NodeKind::ExtractElem => {
                if let Some(p) = self.paths.strip_first(pair.path, AccessOp::Index) {
                    em.push((n.outputs[0], Pair::new(p, pair.referent)));
                }
            }
            NodeKind::PassThrough => {
                if port == 0 {
                    em.push((n.outputs[0], pair));
                }
            }
            NodeKind::Gamma => {
                em.push((n.outputs[0], pair));
            }
            NodeKind::Free => {
                // Deallocation is a store identity: store pairs pass
                // through; the pointer input's pairs (the kill-set the
                // checkers read) produce nothing downstream.
                if port == 1 {
                    em.push((n.outputs[0], pair));
                }
            }
            NodeKind::Primop => {}
            NodeKind::Lookup { .. } => {
                let out = n.outputs[0];
                match port {
                    0 => {
                        // New location: read every store pair it may observe.
                        self.collect_pairs(node, 1, &mut sa, |t, sp| t.dom(pair.referent, sp.path));
                        for &sp in &sa {
                            let off = self.paths.subtract(sp.path, pair.referent);
                            let p = self.paths.append(pair.path, off);
                            em.push((out, Pair::new(p, sp.referent)));
                        }
                    }
                    _ => {
                        // New store pair: dereference through every location.
                        self.collect_pairs(node, 0, &mut sa, |t, lp| t.dom(lp.referent, pair.path));
                        for &lp in &sa {
                            let off = self.paths.subtract(pair.path, lp.referent);
                            let p = self.paths.append(lp.path, off);
                            em.push((out, Pair::new(p, pair.referent)));
                        }
                    }
                }
            }
            NodeKind::Update { .. } => {
                let out = n.outputs[0];
                let strong = self.cfg.strong_updates;
                // The planted-bug injection: under `Fault::OverStrongUpdates`
                // every may-referent of the location input acts as a killer,
                // so a two-referent store erases the old binding of *both*
                // targets instead of keeping each (weak-update) copy.
                let fault = strong && self.cfg.fault == Fault::OverStrongUpdates;
                match port {
                    0 => {
                        // New location pair.
                        self.collect_pairs(node, 2, &mut sa, |_, _| true);
                        for &vp in &sa {
                            let path = self.paths.append(pair.referent, vp.path);
                            em.push((out, Pair::new(path, vp.referent)));
                        }
                        let killers: Vec<PathId> = if fault {
                            let loc_src = g.input_src(node, 0);
                            let mut k: Vec<PathId> = self.sets[loc_src.0 as usize]
                                .iter()
                                .map(|id| self.interner.resolve(id).referent)
                                .collect();
                            k.push(pair.referent);
                            k
                        } else {
                            vec![pair.referent]
                        };
                        let src = g.input_src(node, 1);
                        for id in self.sets[src.0 as usize].iter() {
                            let sp = self.interner.resolve(id);
                            let killed = strong
                                && killers.iter().any(|&r| self.paths.strong_dom(r, sp.path));
                            if !killed {
                                em.push((out, sp));
                            }
                        }
                    }
                    1 => {
                        // New store pair: propagated if at least one location
                        // does not strongly update it. (No location pairs yet
                        // means the pair stays blocked — the dual-worklist
                        // delay of [CWZ90].)
                        let src = g.input_src(node, 0);
                        let mut any_lp = false;
                        let mut any_kill = false;
                        let mut all_kill = true;
                        for id in self.sets[src.0 as usize].iter() {
                            let lp = self.interner.resolve(id);
                            any_lp = true;
                            let k = strong && self.paths.strong_dom(lp.referent, pair.path);
                            any_kill |= k;
                            all_kill &= k;
                        }
                        let passes = if fault {
                            any_lp && !any_kill
                        } else {
                            any_lp && !all_kill
                        };
                        if passes {
                            em.push((out, pair));
                        }
                    }
                    _ => {
                        // New value pair: a store pair per location.
                        self.collect_pairs(node, 0, &mut sa, |_, _| true);
                        for &lp in &sa {
                            let path = self.paths.append(lp.referent, pair.path);
                            em.push((out, Pair::new(path, pair.referent)));
                        }
                    }
                }
            }
            NodeKind::CopyMem => {
                let out = n.outputs[0];
                match port {
                    0 => {
                        // Store pairs pass through (the copy only adds), and
                        // pairs under src re-root under dst.
                        em.push((out, pair));
                        self.collect_pairs(node, 1, &mut sb, |_, _| true);
                        self.collect_pairs(node, 2, &mut sa, |t, srcp| {
                            t.dom(srcp.referent, pair.path)
                        });
                        for &srcp in &sa {
                            let off = self.paths.subtract(pair.path, srcp.referent);
                            for dp in &sb {
                                let path = self.paths.append(dp.referent, off);
                                em.push((out, Pair::new(path, pair.referent)));
                            }
                        }
                    }
                    1 => {
                        // New dst pointer.
                        self.collect_pairs(node, 0, &mut sa, |_, _| true);
                        self.collect_pairs(node, 2, &mut sb, |_, _| true);
                        for &srcp in &sb {
                            for &sp in &sa {
                                if self.paths.dom(srcp.referent, sp.path) {
                                    let off = self.paths.subtract(sp.path, srcp.referent);
                                    let path = self.paths.append(pair.referent, off);
                                    em.push((out, Pair::new(path, sp.referent)));
                                }
                            }
                        }
                    }
                    _ => {
                        // New src pointer.
                        self.collect_pairs(node, 0, &mut sa, |_, _| true);
                        self.collect_pairs(node, 1, &mut sb, |_, _| true);
                        for &dp in &sb {
                            for &sp in &sa {
                                if self.paths.dom(pair.referent, sp.path) {
                                    let off = self.paths.subtract(sp.path, pair.referent);
                                    let path = self.paths.append(dp.referent, off);
                                    em.push((out, Pair::new(path, sp.referent)));
                                }
                            }
                        }
                    }
                }
            }
            NodeKind::Call => {
                if port == 0 {
                    // A new function value: extend the call graph and
                    // repropagate existing information (paper Fig. 1,
                    // "performs appropriate repropagation").
                    if let Some(f) = self.paths.func_of(pair.referent) {
                        self.register_callee(node, f, em);
                    }
                } else if let Some(callees) = self.callees.get(&node) {
                    // Actual (or store) pair: forward to the matching
                    // formal of every callee.
                    for &f in callees {
                        forward_to_formal(g, &mut self.paths, port, pair, f, em);
                    }
                }
            }
            NodeKind::Return { func } => {
                if let Some(callers) = self.callers.get(func) {
                    for &call in callers {
                        forward_to_caller(
                            g,
                            self.cfg.heap_naming,
                            &self.alloc_owner,
                            &mut self.paths,
                            call,
                            port,
                            pair,
                            *func,
                            em,
                        );
                    }
                }
            }
            NodeKind::Base(_)
            | NodeKind::Alloc(_)
            | NodeKind::FuncConst(_)
            | NodeKind::InitStore
            | NodeKind::ScalarConst
            | NodeKind::NullConst
            | NodeKind::Entry { .. } => {}
        }
        self.scratch_a = sa;
        self.scratch_b = sb;
    }

    fn register_callee(&mut self, call: NodeId, f: VFuncId, em: &mut Vec<(OutputId, Pair)>) {
        let list = self.callees.entry(call).or_default();
        if list.contains(&f) {
            return;
        }
        list.push(f);
        self.callers.entry(f).or_default().push(call);
        let g = self.g;
        let mut buf: Vec<Pair> = Vec::new();
        // Push existing actual pairs to the new callee's formals.
        let n_inputs = g.node(call).inputs.len();
        for port in 1..n_inputs {
            self.collect_pairs(call, port, &mut buf, |_, _| true);
            for &p in &buf {
                forward_to_formal(g, &mut self.paths, port, p, f, em);
            }
        }
        // Pull existing return pairs to this call's results.
        for ri in 0..g.func(f).returns.len() {
            let ret = g.func(f).returns[ri];
            let n_ret_inputs = g.node(ret).inputs.len();
            for port in 0..n_ret_inputs {
                self.collect_pairs(ret, port, &mut buf, |_, _| true);
                for &p in &buf {
                    forward_to_caller(
                        g,
                        self.cfg.heap_naming,
                        &self.alloc_owner,
                        &mut self.paths,
                        call,
                        port,
                        p,
                        f,
                        em,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdg::build::{lower, BuildOptions};

    fn analyze(src: &str) -> (Graph, CiResult) {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let r = analyze_ci(&g, &CiConfig::default());
        (g, r)
    }

    /// The referents at the sole indirect op, rendered as strings.
    fn indirect_ref_names(src: &str) -> Vec<Vec<String>> {
        let (g, r) = analyze(src);
        g.indirect_mem_ops()
            .iter()
            .map(|&(n, _)| {
                let mut v: Vec<String> = r
                    .loc_referents(&g, n)
                    .iter()
                    .map(|&p| r.paths.display(p, &g))
                    .collect();
                v.sort();
                v
            })
            .collect()
    }

    #[test]
    fn direct_pointer_resolves() {
        let refs = indirect_ref_names("int g; int main(void) { int *p; p = &g; return *p; }");
        assert_eq!(refs, vec![vec!["g".to_string()]]);
    }

    #[test]
    fn merge_yields_two_referents() {
        let refs = indirect_ref_names(
            "int a; int b;\n\
             int main(void) { int *p; int c; c = getchar();\n\
               if (c) { p = &a; } else { p = &b; }\n\
               return *p; }",
        );
        assert_eq!(refs, vec![vec!["a".to_string(), "b".to_string()]]);
    }

    #[test]
    fn strong_update_kills_previous_binding() {
        // p first points to a, then definitely to b: the read sees only b.
        let refs = indirect_ref_names(
            "int a; int b; int *p;\n\
             int main(void) { int **q; q = &p; p = &a; *q = &b; return *p; }",
        );
        // Two indirect ops: `*q = &b` (write through q) and `*p` (read).
        // The read must see only b thanks to the strong update through q
        // (q definitely points to p, p is strongly updateable).
        let read_refs = refs.last().expect("two ops");
        assert_eq!(read_refs, &vec!["b".to_string()]);
    }

    #[test]
    fn weak_update_on_array_keeps_both() {
        let refs = indirect_ref_names(
            "int a; int b; int *arr[4];\n\
             int main(void) { arr[0] = &a; arr[1] = &b; return *(arr[0]); }",
        );
        let read_refs = refs.last().expect("read op");
        assert_eq!(read_refs, &vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn null_only_pointer_has_no_referents() {
        let refs = indirect_ref_names("int main(void) { int *p; p = NULL; return *p; }");
        assert_eq!(refs, vec![Vec::<String>::new()]);
    }

    #[test]
    fn heap_allocation_sites_are_distinct() {
        let refs = indirect_ref_names(
            "int main(void) { int *p; int *q; \
             p = (int*)malloc(4); q = (int*)malloc(4); *p = 1; return *q; }",
        );
        assert_eq!(refs.len(), 2);
        assert_ne!(refs[0], refs[1]);
        assert_eq!(refs[0].len(), 1);
    }

    #[test]
    fn struct_fields_are_separate_paths() {
        let refs = indirect_ref_names(
            "struct s { int *x; int *y; };\n\
             int a; int b;\n\
             int main(void) { struct s v; int *r; v.x = &a; v.y = &b; \
             r = v.x; return *r; }",
        );
        assert_eq!(refs, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn linked_list_collapses_to_site() {
        let (g, r) = analyze(
            "struct node { int v; struct node *next; };\n\
             int main(void) {\n\
               struct node *h; struct node *n; int i; h = NULL;\n\
               for (i = 0; i < 3; i++) {\n\
                 n = (struct node*)malloc(sizeof(struct node));\n\
                 n->v = i; n->next = h; h = n;\n\
               }\n\
               while (h != NULL) { h = h->next; }\n\
               return 0;\n\
             }",
        );
        // Every indirect op references exactly the one heap site.
        for (node, _) in g.indirect_mem_ops() {
            let refs = r.loc_referents(&g, node);
            assert_eq!(refs.len(), 1, "op should see one heap site");
        }
    }

    #[test]
    fn interprocedural_flow_through_call() {
        let refs = indirect_ref_names(
            "int g;\n\
             int *id(int *p) { return p; }\n\
             int main(void) { int *q; q = id(&g); return *q; }",
        );
        assert_eq!(refs, vec![vec!["g".to_string()]]);
    }

    #[test]
    fn out_parameter_flow() {
        let refs = indirect_ref_names(
            "int g;\n\
             void put(int **slot) { *slot = &g; }\n\
             int main(void) { int *p; put(&p); return *p; }",
        );
        // Two indirect ops: `*slot = &g`, `*p`.
        assert_eq!(refs.last().unwrap(), &vec!["g".to_string()]);
    }

    #[test]
    fn context_insensitive_merges_callers() {
        // The classic CI imprecision: both callers' values merge.
        let refs = indirect_ref_names(
            "int a; int b;\n\
             int *id(int *p) { return p; }\n\
             int main(void) { int *x; int *y; x = id(&a); y = id(&b); \
             return *x + *y; }",
        );
        assert_eq!(refs[0], vec!["a".to_string(), "b".to_string()]);
        assert_eq!(refs[1], vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn function_pointers_resolve_indirect_calls() {
        let refs = indirect_ref_names(
            "int a; int b;\n\
             int *fa(void) { return &a; }\n\
             int *fb(void) { return &b; }\n\
             int main(void) { int *(*fp)(void); int c; c = getchar();\n\
               if (c) { fp = fa; } else { fp = fb; }\n\
               return *(fp()); }",
        );
        assert_eq!(refs, vec![vec!["a".to_string(), "b".to_string()]]);
    }

    #[test]
    fn call_graph_discovered() {
        let (g, r) = analyze(
            "int f(void) { return 1; }\n\
             int h(void) { return 2; }\n\
             int main(void) { int (*fp)(void); fp = f; return fp() + h(); }",
        );
        let mut callee_names: Vec<Vec<&str>> = r
            .callees
            .values()
            .map(|fs| fs.iter().map(|f| g.func(*f).name.as_str()).collect())
            .collect();
        callee_names.iter_mut().for_each(|v| v.sort());
        callee_names.sort();
        assert_eq!(callee_names, vec![vec!["f"], vec!["h"], vec!["main"]]);
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let refs = indirect_ref_names(
            "int g;\n\
             int *walk(int n, int *p) { if (n == 0) return p; return walk(n - 1, p); }\n\
             int main(void) { int *q; q = walk(5, &g); return *q; }",
        );
        assert_eq!(refs, vec![vec!["g".to_string()]]);
    }

    #[test]
    fn global_initializers_seed_the_store() {
        let refs = indirect_ref_names(
            "int x; int *gp = &x;\n\
             int main(void) { return *gp; }",
        );
        assert_eq!(refs, vec![vec!["x".to_string()]]);
    }

    #[test]
    fn aggregate_copy_transfers_pointers() {
        let refs = indirect_ref_names(
            "struct s { int *p; };\n\
             int a;\n\
             int main(void) { struct s u; struct s w; u.p = &a; w = u; return *(w.p); }",
        );
        assert_eq!(refs, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn memcpy_reroots_pointers() {
        let refs = indirect_ref_names(
            "struct s { int *p; };\n\
             int a;\n\
             int main(void) { struct s u; struct s w; u.p = &a;\n\
               memcpy(&w, &u, sizeof(struct s));\n\
               return *(w.p); }",
        );
        assert_eq!(refs.last().unwrap(), &vec!["a".to_string()]);
    }

    #[test]
    fn union_members_alias() {
        let refs = indirect_ref_names(
            "union u { int *p; int *q; };\n\
             int a;\n\
             int main(void) { union u v; int *r; v.p = &a; r = v.q; return *r; }",
        );
        assert_eq!(refs, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn scalar_outputs_carry_no_pairs() {
        let (g, r) = analyze("int g; int main(void) { int *p; p = &g; return *p + 3; }");
        for o in g.output_ids() {
            if matches!(g.output(o).kind, vdg::graph::ValueKind::Scalar) {
                assert!(r.pairs(o).is_empty(), "scalar output {o} has pairs");
            }
        }
    }

    #[test]
    fn fifo_and_lifo_agree() {
        let src = "struct node { int v; struct node *next; };\n\
             struct node *cons(int v, struct node *t) {\n\
               struct node *n; n = (struct node*)malloc(sizeof(struct node));\n\
               n->v = v; n->next = t; return n; }\n\
             int main(void) { struct node *l; l = cons(1, cons(2, NULL));\n\
               while (l != NULL) { l = l->next; } return 0; }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let fifo = analyze_ci(&g, &CiConfig::default());
        let lifo = analyze_ci(
            &g,
            &CiConfig {
                order: WorklistOrder::Lifo,
                ..CiConfig::default()
            },
        );
        // Canonicalization at finish renumbers PathIds structurally, so
        // two schedules agree *numerically*, not just up to rendering.
        for o in g.output_ids() {
            assert_eq!(fifo.pairs(o), lifo.pairs(o), "output {o} differs");
        }
        assert_eq!(fifo.flow_ins, lifo.flow_ins);
        assert_eq!(fifo.flow_outs, lifo.flow_outs);
    }

    #[test]
    fn naive_and_delta_agree() {
        // The seed single-delivery discipline and difference propagation
        // reach the same fixpoint with identical scheduling-independent
        // counters — and, thanks to canonical path numbering, identical
        // raw results.
        let src = "struct node { int v; struct node *next; };\n\
             struct node *cons(int v, struct node *t) {\n\
               struct node *n; n = (struct node*)malloc(sizeof(struct node));\n\
               n->v = v; n->next = t; return n; }\n\
             int *pick(int *a, int *b, int c) { if (c) return a; return b; }\n\
             int g0; int g1;\n\
             int main(void) { struct node *l; int *p; l = cons(1, cons(2, NULL));\n\
               p = pick(&g0, &g1, getchar());\n\
               while (l != NULL) { l = l->next; } return *p; }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let naive = analyze_ci(
            &g,
            &CiConfig {
                propagation: Propagation::Naive,
                ..CiConfig::default()
            },
        );
        let delta = analyze_ci(&g, &CiConfig::default());
        for o in g.output_ids() {
            assert_eq!(naive.pairs(o), delta.pairs(o), "output {o} differs");
        }
        assert_eq!(naive.flow_ins, delta.flow_ins);
        assert_eq!(naive.flow_outs, delta.flow_outs);
        assert_eq!(naive.callees, delta.callees);
        assert_eq!(naive.delta_batches, None);
        let batches = delta.delta_batches.expect("delta mode reports batches");
        assert!(
            batches <= delta.flow_ins,
            "batches cannot exceed deliveries"
        );
        assert!(batches > 0);
    }

    #[test]
    fn disabling_strong_updates_is_sound_but_weaker() {
        let src = "int a; int b; int *p;\n\
             int main(void) { int **q; q = &p; p = &a; *q = &b; return *p; }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let strong = analyze_ci(&g, &CiConfig::default());
        let weak = analyze_ci(
            &g,
            &CiConfig {
                strong_updates: false,
                ..CiConfig::default()
            },
        );
        // Strong ⊆ weak on every output. (Both tables are canonical over
        // different universes, so compare rendered pairs.)
        let render = |r: &CiResult, pr: &Pair| {
            (
                r.paths.display(pr.path, &g),
                r.paths.display(pr.referent, &g),
            )
        };
        for o in g.output_ids() {
            let ws: crate::fxhash::HashSet<(String, String)> =
                weak.pairs(o).iter().map(|pr| render(&weak, pr)).collect();
            for pr in strong.pairs(o) {
                assert!(
                    ws.contains(&render(&strong, pr)),
                    "strong found pair weak missed"
                );
            }
        }
        // And the read is strictly more precise with strong updates.
        let read = g
            .indirect_mem_ops()
            .into_iter()
            .find(|&(n, w)| !w && matches!(g.node(n).kind, NodeKind::Lookup { .. }))
            .map(|(n, _)| n)
            .unwrap();
        assert_eq!(strong.loc_referents(&g, read).len(), 1);
        assert_eq!(weak.loc_referents(&g, read).len(), 2);
    }

    #[test]
    fn cooper_and_weak_schemes_agree_without_downward_escape() {
        // Matches the paper's observation that the scheme choice is
        // irrelevant for programs that do not pass addresses of local
        // pointer variables down recursive calls.
        let src = "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }\n\
             int g; int main(void) { int *p; p = &g; return *p + fact(3); }";
        let p = cfront::compile(src).unwrap();
        let g_weak = lower(&p, &BuildOptions::default()).unwrap();
        let g_cooper = lower(
            &p,
            &BuildOptions {
                rec_local_scheme: vdg::RecLocalScheme::Cooper,
            },
        )
        .unwrap();
        let rw = analyze_ci(&g_weak, &CiConfig::default());
        let rc = analyze_ci(&g_cooper, &CiConfig::default());
        let iw = g_weak.indirect_mem_ops();
        let ic = g_cooper.indirect_mem_ops();
        assert_eq!(iw.len(), ic.len());
        for (&(nw, _), &(nc, _)) in iw.iter().zip(ic.iter()) {
            assert_eq!(
                rw.loc_referents(&g_weak, nw).len(),
                rc.loc_referents(&g_cooper, nc).len()
            );
        }
    }

    #[test]
    fn callstring_heap_naming_splits_allocation_sites() {
        let src = "struct node { int v; struct node *next; };\n\
             struct node *mk(int v) { struct node *n;\n\
               n = (struct node*)malloc(sizeof(struct node));\n\
               n->v = v; n->next = NULL; return n; }\n\
             int main(void) { struct node *a; struct node *b;\n\
               a = mk(1); b = mk(2); return a->v + b->v; }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let site = analyze_ci(&g, &CiConfig::default());
        let k1 = analyze_ci(
            &g,
            &CiConfig {
                heap_naming: HeapNaming::CallString1,
                ..CiConfig::default()
            },
        );
        // The two reads in main reference the same site base under
        // site naming but per-caller clones under k=1 naming.
        let reads: Vec<_> = g
            .indirect_mem_ops()
            .into_iter()
            .filter(|&(_n, w)| !w)
            .map(|(n, _)| n)
            .collect();
        let main_reads: Vec<_> = reads
            .iter()
            .copied()
            .filter(|&n| {
                let owner = crate::modref::node_owner_map(&g)[n.0 as usize];
                g.func(owner).name == "main"
            })
            .collect();
        assert_eq!(main_reads.len(), 2);
        let site_refs: Vec<Vec<String>> = main_reads
            .iter()
            .map(|&n| {
                site.loc_referents(&g, n)
                    .iter()
                    .map(|&p| site.paths.display(p, &g))
                    .collect()
            })
            .collect();
        assert_eq!(site_refs[0], site_refs[1], "site naming merges callers");
        let k1_refs: Vec<Vec<String>> = main_reads
            .iter()
            .map(|&n| {
                k1.loc_referents(&g, n)
                    .iter()
                    .map(|&p| k1.paths.display(p, &g))
                    .collect()
            })
            .collect();
        assert_ne!(k1_refs[0], k1_refs[1], "k=1 naming splits callers");
        assert_eq!(k1_refs[0].len(), 1);
        assert!(k1_refs[0][0].contains("@call"), "{:?}", k1_refs[0]);
        // Collapsing the clones recovers a subset of the site solution.
        // (Compare by rendered content: the two runs canonicalize over
        // different path universes.)
        let mut k1_paths = k1.paths.clone();
        for o in g.output_ids() {
            let site_set: crate::fxhash::HashSet<(String, String)> = site
                .pairs(o)
                .iter()
                .map(|p| {
                    (
                        site.paths.display(p.path, &g),
                        site.paths.display(p.referent, &g),
                    )
                })
                .collect();
            for pr in k1.pairs(o) {
                let collapsed = (
                    {
                        let c = k1_paths.collapse_synthetic(pr.path);
                        k1_paths.display(c, &g)
                    },
                    {
                        let c = k1_paths.collapse_synthetic(pr.referent);
                        k1_paths.display(c, &g)
                    },
                );
                assert!(
                    site_set.contains(&collapsed),
                    "collapsed k=1 pair escaped the site solution at {o}: {collapsed:?}"
                );
            }
        }
    }

    #[test]
    fn op_counters_advance() {
        let (_, r) = analyze("int g; int main(void) { int *p; p = &g; return *p; }");
        assert!(r.flow_ins > 0);
        assert!(r.flow_outs > 0);
        // flow_outs now counts only successful meets; attempts that were
        // deduplicated are reported separately.
        assert_eq!(r.flow_outs, r.total_pairs() as u64);
    }

    /// Full incremental round trip at the solver level: analyze A,
    /// memoize, fingerprint B against A, seed a resume, and require the
    /// result to be *numerically* identical to a fresh solve of B.
    fn check_resume(src_a: &str, src_b: &str, want_dirty: &[&str]) {
        use crate::fingerprint::{extract_ci_summaries, plan_ci_resume, GraphIndex};
        let cfg = CiConfig::default();
        let pa = cfront::compile(src_a).expect("A compiles");
        let ga = lower(&pa, &BuildOptions::default()).expect("A lowers");
        let ra = analyze_ci(&ga, &cfg);
        let ia = GraphIndex::build(&ga);
        assert_eq!(ia.unsafe_reason, None);
        let prev = extract_ci_summaries(&ga, &ia, &ra).expect("summaries");

        let pb = cfront::compile(src_b).expect("B compiles");
        let gb = lower(&pb, &BuildOptions::default()).expect("B lowers");
        let ib = GraphIndex::build(&gb);
        let plan = plan_ci_resume(&gb, &ib, &prev).expect("plan");
        let dirty_names: Vec<&str> = plan
            .dirty
            .iter()
            .map(|&f| gb.func(f).name.as_str())
            .collect();
        assert_eq!(dirty_names, want_dirty, "dirty set");
        if !want_dirty.is_empty() {
            assert!(plan.seeded_outputs > 0, "nothing was reused");
        }

        let fresh = analyze_ci(&gb, &cfg);
        let resumed = analyze_ci_resume(&gb, &cfg, plan);
        for o in gb.output_ids() {
            assert_eq!(fresh.pairs(o), resumed.pairs(o), "pairs at {o}");
        }
        assert_eq!(fresh.callees, resumed.callees, "call graph");
        for o in gb.output_ids() {
            for (a, b) in fresh.pairs(o).iter().zip(resumed.pairs(o)) {
                assert_eq!(
                    fresh.paths.display(a.referent, &gb),
                    resumed.paths.display(b.referent, &gb),
                    "rendering at {o}"
                );
            }
        }
    }

    #[test]
    fn resume_after_editing_one_function_matches_fresh() {
        let a = "int g1; int g2; int *gp;\n\
             int *id(int *p) { return p; }\n\
             void setg(int x) { if (x) { gp = &g1; } }\n\
             int main(void) { int l; int *q; q = id(&l); setg(1); *q = 3; *gp = 4; return 0; }";
        let b = "int g1; int g2; int *gp;\n\
             int *id(int *p) { return p; }\n\
             void setg(int x) { if (x) { gp = &g2; } }\n\
             int main(void) { int l; int *q; q = id(&l); setg(1); *q = 3; *gp = 4; return 0; }";
        check_resume(a, b, &["setg"]);
    }

    #[test]
    fn resume_after_editing_caller_of_pointer_returning_callee() {
        // The edited function is the *caller*; the callee's facts are
        // replayed and must still flow into the re-solved caller.
        let a = "int g1; int g2;\n\
             int *pick(int c) { if (c) { return &g1; } return &g2; }\n\
             int main(void) { int *p; p = pick(0); *p = 1; return 0; }";
        let b = "int g1; int g2;\n\
             int *pick(int c) { if (c) { return &g1; } return &g2; }\n\
             int main(void) { int *p; int x; x = 5; p = pick(x); *p = 1; return 0; }";
        check_resume(a, b, &["main"]);
    }

    #[test]
    fn resume_with_identical_sources_reuses_everything() {
        let a = "int g; int main(void) { int *p; p = &g; return *p; }";
        check_resume(a, a, &[]);
    }

    #[test]
    fn resume_with_indirect_calls_matches_fresh() {
        let a = "int g1; int g2;\n\
             void f1(void) { g1 = 1; }\n\
             void f2(void) { g2 = 2; }\n\
             int main(void) { void (*fp)(void); int c; c = getchar();\n\
               if (c) { fp = f1; } else { fp = f2; } fp(); return 0; }";
        // Note `g1 = 7` alone would NOT dirty f1: scalar constants carry
        // no payload in the VDG, so the graphs would be identical and
        // full replay is the correct outcome. Add a statement instead.
        let b = "int g1; int g2;\n\
             void f1(void) { g1 = 7; g2 = 8; }\n\
             void f2(void) { g2 = 2; }\n\
             int main(void) { void (*fp)(void); int c; c = getchar();\n\
               if (c) { fp = f1; } else { fp = f2; } fp(); return 0; }";
        check_resume(a, b, &["f1"]);
    }

    #[test]
    fn resume_after_deleting_a_call_site_shrinks_the_callee() {
        // `store`'s facts depend on its actuals. Deleting one call site
        // makes them *shrink*; the edge is gone from the next graph, so
        // only the lost-callee rule can pull `store` into the cone. A
        // stale seed would keep gp ↦ g2 alive.
        let a = "int g1; int g2; int *gp;
             void store(int *p) { gp = p; }
             int main(void) { store(&g1); store(&g2); return 0; }";
        let b = "int g1; int g2; int *gp;
             void store(int *p) { gp = p; }
             int main(void) { store(&g1); return 0; }";
        check_resume(a, b, &["main"]);
    }

    #[test]
    fn resume_after_deleting_a_function_invalidates_its_callees() {
        // The deleted function is absent from the next graph entirely,
        // yet the calls recorded in its summary still gate `store`'s
        // facts: they must be treated as lost edges.
        let a = "int g1; int g2; int *gp;
             void store(int *p) { gp = p; }
             void extra(void) { store(&g2); }
             int main(void) { store(&g1); extra(); return 0; }";
        let b = "int g1; int g2; int *gp;
             void store(int *p) { gp = p; }
             int main(void) { store(&g1); return 0; }";
        check_resume(a, b, &["main"]);
    }

    #[test]
    fn resume_keeps_literal_facts_local_to_the_edited_function() {
        // Deleting a statement that contains a string literal shifts
        // the program-wide literal sequence numbers, so under global
        // `s:<index>` keys `setb`'s `"three"` would re-key and demote
        // `setb`. The per-function literal keys (`s:<owner>:<k>`) keep
        // the edit local: only the edited function goes dirty. The
        // deleted literal's facts must not escape `seta` (p is a
        // register local), or translating any summary that mentions
        // them would rightly demote its owner too.
        let a = "char *gb;\n\
             void seta(void) { char *p; p = \"one\"; p = \"two\"; }\n\
             void setb(void) { gb = \"three\"; }\n\
             int main(void) { seta(); setb(); return 0; }";
        let b = "char *gb;\n\
             void seta(void) { char *p; p = \"two\"; }\n\
             void setb(void) { gb = \"three\"; }\n\
             int main(void) { seta(); setb(); return 0; }";
        check_resume(a, b, &["seta"]);
    }

    #[test]
    fn resume_after_deleting_a_function_matches_fresh() {
        let a = "int g; int *gp;\n\
             void seta(void) { gp = &g; }\n\
             void noop(void) { }\n\
             int main(void) { seta(); noop(); *gp = 1; return 0; }";
        let b = "int g; int *gp;\n\
             void seta(void) { gp = &g; }\n\
             int main(void) { seta(); *gp = 1; return 0; }";
        check_resume(a, b, &["main"]);
    }
}
