//! Mod/ref analysis — the client application the paper uses to motivate
//! points-to precision (§3.2: "we can learn more by considering an
//! application, such as def/use or mod/ref analysis").
//!
//! For every function we compute the set of abstract locations its
//! memory reads may reference and its memory writes may modify, both
//! directly and transitively through callees discovered by the solver.

use crate::fxhash::HashMap;
use crate::path::PathId;
use crate::solver::Solution;
use crate::stats::PointsToSolution;
use std::collections::BTreeSet;
use vdg::graph::{BaseId, Graph, NodeId, VFuncId};

/// Locations read/written by one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModRef {
    /// Locations possibly referenced by reads (`ref` set).
    pub refs: BTreeSet<PathId>,
    /// Locations possibly modified by writes (`mod` set).
    pub mods: BTreeSet<PathId>,
}

/// Mod/ref summaries for every function.
#[derive(Debug, Clone, Default)]
pub struct ModRefSummary {
    /// Direct effects (this function's own memory operations).
    pub direct: HashMap<VFuncId, ModRef>,
    /// Transitive effects (including everything reachable through the
    /// call graph discovered by the points-to solver).
    pub transitive: HashMap<VFuncId, ModRef>,
}

/// Computes mod/ref summaries from a points-to solution.
///
/// `callees` is the call graph discovered by the solver
/// ([`crate::ci::CiResult::callees`]).
pub fn mod_ref(
    graph: &Graph,
    sol: &dyn PointsToSolution,
    callees: &HashMap<NodeId, Vec<VFuncId>>,
) -> ModRefSummary {
    // Assign every memory op and call to its owning function by walking
    // each function's node range; nodes are created per function in
    // sequence, so use entry/returns? Simpler and robust: ownership via
    // traversal from entry is overkill — instead, record ownership by
    // scanning which function's node-id interval contains the node.
    // Function nodes are emitted contiguously per function by the
    // builder, with the root last; compute intervals from entry ids.
    let owner = node_owner_map(graph);

    let mut direct: HashMap<VFuncId, ModRef> = HashMap::default();
    for f in graph.func_ids() {
        direct.insert(f, ModRef::default());
    }
    for (node, is_write) in graph.all_mem_ops() {
        let f = owner[node.0 as usize];
        let loc_out = graph.input_src(node, 0);
        let entry = direct.entry(f).or_default();
        for p in sol.pairs_at(loc_out) {
            if is_write {
                entry.mods.insert(p.referent);
            } else {
                entry.refs.insert(p.referent);
            }
        }
    }

    // Transitive closure over the discovered call graph.
    let mut call_edges: HashMap<VFuncId, BTreeSet<VFuncId>> = HashMap::default();
    for (call, fs) in callees {
        let from = owner[call.0 as usize];
        call_edges
            .entry(from)
            .or_default()
            .extend(fs.iter().copied());
    }
    let mut transitive: HashMap<VFuncId, ModRef> = direct.clone();
    // Simple fixpoint; call graphs are small.
    let mut changed = true;
    while changed {
        changed = false;
        for f in graph.func_ids() {
            let Some(callees) = call_edges.get(&f) else {
                continue;
            };
            let mut add = ModRef::default();
            for c in callees {
                if let Some(m) = transitive.get(c) {
                    add.refs.extend(m.refs.iter().copied());
                    add.mods.extend(m.mods.iter().copied());
                }
            }
            let entry = transitive.entry(f).or_default();
            let before = (entry.refs.len(), entry.mods.len());
            entry.refs.extend(add.refs);
            entry.mods.extend(add.mods);
            if (entry.refs.len(), entry.mods.len()) != before {
                changed = true;
            }
        }
    }
    ModRefSummary { direct, transitive }
}

/// Maps each node to its owning function (delegates to
/// [`vdg::display::owner_map`], which derives ownership from the
/// builder's contiguous per-function node layout).
pub fn node_owner_map(graph: &Graph) -> Vec<VFuncId> {
    vdg::display::owner_map(graph)
}

/// Base-granular mod/ref sets for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModRefBases {
    /// Bases possibly referenced by reads.
    pub refs: BTreeSet<BaseId>,
    /// Bases possibly modified by writes.
    pub mods: BTreeSet<BaseId>,
}

/// Base-granular mod/ref summaries for every function.
#[derive(Debug, Clone, Default)]
pub struct ModRefBasesSummary {
    /// Direct effects (this function's own memory operations).
    pub direct: HashMap<VFuncId, ModRefBases>,
    /// Transitive effects through the discovered call graph.
    pub transitive: HashMap<VFuncId, ModRefBases>,
}

/// Computes mod/ref summaries at the *base* granularity any
/// [`Solution`] supports — including the unification baseline, which
/// cannot drive the path-granular [`mod_ref`]. Because base sets grow
/// monotonically with analysis coarseness ([`Solution::covers`]), so do
/// these summaries: CS ⊆ CI ⊆ Weihl per function, the cross-solver
/// property the monotonicity tests check.
pub fn mod_ref_bases(
    graph: &Graph,
    sol: &dyn Solution,
    callees: &HashMap<NodeId, Vec<VFuncId>>,
) -> ModRefBasesSummary {
    let owner = node_owner_map(graph);
    let mut direct: HashMap<VFuncId, ModRefBases> = HashMap::default();
    for f in graph.func_ids() {
        direct.insert(f, ModRefBases::default());
    }
    for (node, is_write) in graph.all_mem_ops() {
        let f = owner[node.0 as usize];
        let entry = direct.entry(f).or_default();
        for b in sol.loc_referent_bases(graph, node) {
            if is_write {
                entry.mods.insert(b);
            } else {
                entry.refs.insert(b);
            }
        }
    }

    let mut call_edges: HashMap<VFuncId, BTreeSet<VFuncId>> = HashMap::default();
    for (call, fs) in callees {
        let from = owner[call.0 as usize];
        call_edges
            .entry(from)
            .or_default()
            .extend(fs.iter().copied());
    }
    let mut transitive: HashMap<VFuncId, ModRefBases> = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for f in graph.func_ids() {
            let Some(callees) = call_edges.get(&f) else {
                continue;
            };
            let mut add = ModRefBases::default();
            for c in callees {
                if let Some(m) = transitive.get(c) {
                    add.refs.extend(m.refs.iter().copied());
                    add.mods.extend(m.mods.iter().copied());
                }
            }
            let entry = transitive.entry(f).or_default();
            let before = (entry.refs.len(), entry.mods.len());
            entry.refs.extend(add.refs);
            entry.mods.extend(add.mods);
            if (entry.refs.len(), entry.mods.len()) != before {
                changed = true;
            }
        }
    }
    ModRefBasesSummary { direct, transitive }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::{analyze_ci, CiConfig};
    use vdg::build::{lower, BuildOptions};

    fn summary(src: &str) -> (Graph, crate::ci::CiResult, ModRefSummary) {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let ci = analyze_ci(&g, &CiConfig::default());
        let s = mod_ref(&g, &ci, &ci.callees);
        (g, ci, s)
    }

    fn loc_names(g: &Graph, ci: &crate::ci::CiResult, set: &BTreeSet<PathId>) -> Vec<String> {
        let mut v: Vec<String> = set.iter().map(|&p| ci.paths.display(p, g)).collect();
        v.sort();
        v
    }

    #[test]
    fn direct_effects_are_per_function() {
        let (g, ci, s) = summary(
            "int a; int b;\n\
             void wa(void) { a = 1; }\n\
             int rb(void) { return b; }\n\
             int main(void) { wa(); return rb(); }",
        );
        let wa = VFuncId(0);
        let rb = VFuncId(1);
        assert_eq!(loc_names(&g, &ci, &s.direct[&wa].mods), vec!["a"]);
        assert!(s.direct[&wa].refs.is_empty());
        assert_eq!(loc_names(&g, &ci, &s.direct[&rb].refs), vec!["b"]);
        assert!(s.direct[&rb].mods.is_empty());
    }

    #[test]
    fn transitive_effects_include_callees() {
        let (g, ci, s) = summary(
            "int a;\n\
             void leaf(void) { a = 1; }\n\
             void mid(void) { leaf(); }\n\
             int main(void) { mid(); return 0; }",
        );
        let mid = VFuncId(1);
        let main = VFuncId(2);
        assert_eq!(loc_names(&g, &ci, &s.transitive[&mid].mods), vec!["a"]);
        assert_eq!(loc_names(&g, &ci, &s.transitive[&main].mods), vec!["a"]);
        assert!(s.direct[&mid].mods.is_empty());
    }

    #[test]
    fn indirect_writes_use_points_to() {
        let (g, ci, s) = summary(
            "int x; int y;\n\
             void poke(int *p) { *p = 7; }\n\
             int main(void) { poke(&x); poke(&y); return x + y; }",
        );
        let poke = VFuncId(0);
        assert_eq!(loc_names(&g, &ci, &s.direct[&poke].mods), vec!["x", "y"]);
    }

    #[test]
    fn node_owner_map_covers_all_nodes() {
        let (g, _, _) = summary("int main(void) { return 0; }");
        let owner = node_owner_map(&g);
        assert_eq!(owner.len(), g.node_count());
    }
}
