//! Ablation benches for the design choices DESIGN.md calls out:
//! strong updates (CI), subsumption, and CI pruning (CS, §4.2).

use alias::{analyze_ci, analyze_cs, CiConfig, CsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Fast profile: small sample counts and no HTML/plot generation, so the
/// whole suite completes in minutes; raise the sample size on the command
/// line (`cargo bench -- --sample-size 100`) for rigorous runs.
fn fast() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(10)
        .noise_threshold(0.05)
}
use vdg::build::{lower, BuildOptions};

const PROGRAMS: [&str; 4] = ["part", "loader", "anagram", "bc"];

fn bench_strong_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_strong_updates");
    for name in PROGRAMS {
        let b = suite::by_name(name).unwrap();
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        g.bench_with_input(BenchmarkId::new("on", name), &graph, |bench, graph| {
            bench.iter(|| analyze_ci(graph, &CiConfig::default()));
        });
        g.bench_with_input(BenchmarkId::new("off", name), &graph, |bench, graph| {
            bench.iter(|| {
                analyze_ci(
                    graph,
                    &CiConfig {
                        strong_updates: false,
                        ..CiConfig::default()
                    },
                )
            });
        });
    }
    g.finish();
}

fn bench_cs_optimizations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cs");
    for name in PROGRAMS {
        let b = suite::by_name(name).unwrap();
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        let ci = analyze_ci(&graph, &CiConfig::default());
        let input = (&graph, &ci);
        g.bench_with_input(BenchmarkId::new("optimized", name), &input, |bench, (g, ci)| {
            bench.iter(|| analyze_cs(g, ci, &CsConfig::default()).expect("budget"));
        });
        g.bench_with_input(
            BenchmarkId::new("no_subsumption", name),
            &input,
            |bench, (g, ci)| {
                bench.iter(|| {
                    // May overflow the step budget on the larger inputs —
                    // exactly the behavior the paper reports for the
                    // unoptimized algorithm; the error is part of the
                    // measured work.
                    let _ = analyze_cs(
                        g,
                        ci,
                        &CsConfig {
                            subsumption: false,
                            max_steps: 3_000_000,
                            ..CsConfig::default()
                        },
                    );
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("no_ci_pruning", name),
            &input,
            |bench, (g, ci)| {
                bench.iter(|| {
                    let _ = analyze_cs(
                        g,
                        ci,
                        &CsConfig {
                            ci_pruning: false,
                            max_steps: 3_000_000,
                            ..CsConfig::default()
                        },
                    );
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_strong_updates, bench_cs_optimizations
}
criterion_main!(benches);
