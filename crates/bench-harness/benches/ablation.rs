//! Ablation benches for the design choices DESIGN.md calls out:
//! strong updates (CI), subsumption, and CI pruning (CS, §4.2).
//!
//! Runs under the dependency-free harness in
//! `bench_harness::microbench`; pass a substring to filter.

use alias::SolverSpec;
use bench_harness::microbench::Runner;
use vdg::build::{lower, BuildOptions};

const PROGRAMS: [&str; 4] = ["part", "loader", "anagram", "bc"];

fn main() {
    let mut r = Runner::from_args();

    for name in PROGRAMS {
        let b = suite::by_name(name).unwrap();
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();

        r.bench(&format!("strong_updates_on/{name}"), || {
            SolverSpec::ci().solve_ci(&graph)
        });
        r.bench(&format!("strong_updates_off/{name}"), || {
            SolverSpec::ci().strong_updates(false).solve_ci(&graph)
        });

        let ci = SolverSpec::ci().solve_ci(&graph);
        r.bench(&format!("cs_optimized/{name}"), || {
            SolverSpec::cs().solve(&graph, Some(&ci)).expect("budget")
        });
        r.bench(&format!("cs_no_subsumption/{name}"), || {
            // May overflow the step budget on the larger inputs —
            // exactly the behavior the paper reports for the
            // unoptimized algorithm; the error is part of the
            // measured work.
            let _ = SolverSpec::cs()
                .subsumption(false)
                .max_steps(3_000_000)
                .solve(&graph, Some(&ci));
        });
        r.bench(&format!("cs_no_ci_pruning/{name}"), || {
            let _ = SolverSpec::cs()
                .ci_pruning(false)
                .max_steps(3_000_000)
                .solve(&graph, Some(&ci));
        });
    }

    r.finish();
}
