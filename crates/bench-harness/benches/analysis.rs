//! Criterion benches: CI vs CS solver time per benchmark program
//! (the §3.2 / §4.2 timing comparison), plus frontend and lowering cost.

use alias::{analyze_ci, analyze_cs, CiConfig, CsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Fast profile: small sample counts and no HTML/plot generation, so the
/// whole suite completes in minutes; raise the sample size on the command
/// line (`cargo bench -- --sample-size 100`) for rigorous runs.
fn fast() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(10)
        .noise_threshold(0.05)
}
use vdg::build::{lower, BuildOptions};

fn bench_ci(c: &mut Criterion) {
    let mut g = c.benchmark_group("ci");
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(b.name), &graph, |bench, graph| {
            bench.iter(|| analyze_ci(graph, &CiConfig::default()));
        });
    }
    g.finish();
}

fn bench_cs(c: &mut Criterion) {
    let mut g = c.benchmark_group("cs");
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        let ci = analyze_ci(&graph, &CiConfig::default());
        g.bench_with_input(
            BenchmarkId::from_parameter(b.name),
            &(&graph, &ci),
            |bench, (graph, ci)| {
                bench.iter(|| analyze_cs(graph, ci, &CsConfig::default()).expect("budget"));
            },
        );
    }
    g.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for name in ["bc", "assembler", "compiler"] {
        let b = suite::by_name(name).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &b.source, |bench, src| {
            bench.iter(|| cfront::compile(src).unwrap());
        });
    }
    g.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let mut g = c.benchmark_group("lowering");
    for name in ["bc", "assembler", "simulator"] {
        let b = suite::by_name(name).unwrap();
        let prog = cfront::compile(b.source).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &prog, |bench, prog| {
            bench.iter(|| lower(prog, &BuildOptions::default()).unwrap());
        });
    }
    g.finish();
}

/// CI scaling over generated programs of growing size (the paper's §3.2
/// observation that the CI analysis scales comfortably).
fn bench_ci_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ci_scaling");
    for funcs in [2usize, 4, 8, 16] {
        let cfg = suite::generator::GenConfig {
            funcs,
            stmts_per_func: 12,
            max_depth: 2,
        };
        let src = suite::generator::generate(7, &cfg);
        let prog = cfront::compile(&src).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(funcs), &graph, |bench, graph| {
            bench.iter(|| analyze_ci(graph, &CiConfig::default()));
        });
    }
    g.finish();
}

/// The related-analysis baselines, timed on a mid-size benchmark.
fn bench_baselines(c: &mut Criterion) {
    let b = suite::by_name("loader").unwrap();
    let prog = cfront::compile(b.source).unwrap();
    let graph = lower(&prog, &BuildOptions::default()).unwrap();
    let mut g = c.benchmark_group("baselines_loader");
    g.bench_function("weihl", |bench| {
        bench.iter(|| alias::weihl::analyze_weihl(&graph));
    });
    g.bench_function("steensgaard", |bench| {
        bench.iter(|| alias::steensgaard::analyze_steensgaard(&graph));
    });
    g.bench_function("k1_callstring", |bench| {
        bench.iter(|| {
            alias::callstring::analyze_callstring(
                &graph,
                &alias::callstring::CallStringConfig::default(),
            )
            .unwrap()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_ci, bench_cs, bench_frontend, bench_lowering,
        bench_ci_scaling, bench_baselines
}
criterion_main!(benches);
