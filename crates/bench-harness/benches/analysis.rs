//! Solver micro-benches: CI vs CS time per benchmark program (the
//! §3.2 / §4.2 timing comparison), plus frontend and lowering cost.
//!
//! Runs under the dependency-free harness in
//! `bench_harness::microbench`; pass a substring to filter, e.g.
//! `cargo bench -p bench-harness --bench analysis -- ci/`.

use alias::SolverSpec;
use bench_harness::microbench::Runner;
use vdg::build::{lower, BuildOptions};

fn main() {
    let mut r = Runner::from_args();

    let prepared: Vec<_> = suite::benchmarks()
        .iter()
        .map(|b| {
            let prog = cfront::compile(b.source).unwrap();
            let graph = lower(&prog, &BuildOptions::default()).unwrap();
            let ci = SolverSpec::ci().solve_ci(&graph);
            (b.name, graph, ci)
        })
        .collect();

    for (name, graph, _) in &prepared {
        r.bench(&format!("ci/{name}"), || SolverSpec::ci().solve_ci(graph));
    }
    for (name, graph, ci) in &prepared {
        r.bench(&format!("cs/{name}"), || {
            SolverSpec::cs().solve(graph, Some(ci)).expect("budget")
        });
    }
    for name in ["bc", "assembler", "compiler"] {
        let b = suite::by_name(name).unwrap();
        r.bench(&format!("frontend/{name}"), || {
            cfront::compile(b.source).unwrap()
        });
    }
    for name in ["bc", "assembler", "simulator"] {
        let b = suite::by_name(name).unwrap();
        let prog = cfront::compile(b.source).unwrap();
        r.bench(&format!("lowering/{name}"), || {
            lower(&prog, &BuildOptions::default()).unwrap()
        });
    }

    // CI scaling over generated programs of growing size (the paper's
    // §3.2 observation that the CI analysis scales comfortably).
    for funcs in [2usize, 4, 8, 16] {
        let cfg = suite::generator::GenConfig {
            funcs,
            stmts_per_func: 12,
            max_depth: 2,
            ..suite::generator::GenConfig::default()
        };
        let src = suite::generator::generate(7, &cfg);
        let prog = cfront::compile(&src).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        r.bench(&format!("ci_scaling/{funcs}_funcs"), || {
            SolverSpec::ci().solve_ci(&graph)
        });
    }

    // The related-analysis baselines, timed on a mid-size benchmark.
    {
        let b = suite::by_name("loader").unwrap();
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        r.bench("baselines_loader/weihl", || {
            SolverSpec::weihl().solve(&graph, None).expect("no budget")
        });
        r.bench("baselines_loader/steensgaard", || {
            SolverSpec::steensgaard()
                .solve(&graph, None)
                .expect("no budget")
        });
        r.bench("baselines_loader/k1_callstring", || {
            SolverSpec::k1().solve(&graph, None).unwrap()
        });
    }

    // The engine itself: parallel vs serial full-suite CI+CS run.
    r.bench("engine/suite_serial", || {
        bench_harness::prepare_all_threads(1)
    });
    r.bench("engine/suite_parallel", || {
        bench_harness::prepare_all_threads(0)
    });

    r.finish();
}
