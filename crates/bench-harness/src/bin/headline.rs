//! The §4.3 headline experiment: compare CI and CS solutions at the
//! location inputs of every indirect memory reference.

use alias::stats::compare_at_indirect_refs;

fn main() {
    let mut rows = Vec::new();
    let mut any = 0usize;
    for d in bench_harness::prepare_all() {
        let ops = d.graph.indirect_mem_ops().len();
        let mismatches = compare_at_indirect_refs(&d.graph, &d.ci, &d.cs);
        any += mismatches.len();
        rows.push(vec![
            d.name.to_string(),
            ops.to_string(),
            mismatches.len().to_string(),
            if mismatches.is_empty() {
                "identical"
            } else {
                "DIFFERS"
            }
            .to_string(),
        ]);
        for m in mismatches {
            println!(
                "  {} mismatch: CI {{{}}} vs CS {{{}}}",
                d.name,
                m.ci_referents.join(", "),
                m.cs_referents.join(", ")
            );
        }
    }
    println!("Headline (§4.3): CS vs CI at indirect memory references\n");
    println!(
        "{}",
        bench_harness::render_table(&["name", "indirect refs", "mismatches", "verdict"], &rows)
    );
    if any == 0 {
        println!(
            "Reproduced: \"the spurious information does not affect the solution\n\
             at all; the results for indirect memory references are identical to\n\
             the context-insensitive results.\""
        );
    } else {
        println!("{any} mismatches — the headline did NOT reproduce.");
        std::process::exit(1);
    }
}
