//! Def/use analysis over the suite — the §4.3 headline restated at the
//! client level: the def/use edges a compiler would consume are
//! identical whether the underlying points-to analysis is context-
//! insensitive or maximally context-sensitive.

use alias::defuse::def_use;

fn main() {
    let mut rows = Vec::new();
    let mut any_diff = 0usize;
    for d in bench_harness::prepare_all() {
        let du_ci = def_use(&d.graph, d.ci.as_ref(), &d.ci.callees);
        let du_cs = def_use(&d.graph, &d.cs, &d.ci.callees);
        let uses = du_ci.uses.len();
        let mut diff = 0usize;
        for (u, defs) in &du_ci.uses {
            if du_cs.uses.get(u) != Some(defs) {
                diff += 1;
            }
        }
        any_diff += diff;
        rows.push(vec![
            d.name.to_string(),
            uses.to_string(),
            du_ci.edge_count().to_string(),
            du_cs.edge_count().to_string(),
            format!("{:.2}", du_ci.edge_count() as f64 / uses.max(1) as f64),
            diff.to_string(),
        ]);
    }
    println!("Def/use edges (reads x reaching writes) under CI and CS\n");
    println!(
        "{}",
        bench_harness::render_table(
            &[
                "name",
                "uses",
                "edges (CI)",
                "edges (CS)",
                "defs/use",
                "uses differing"
            ],
            &rows
        )
    );
    if any_diff == 0 {
        println!(
            "Every use has the same reaching definitions under both analyses —\n\
             the headline result carried through to a real client."
        );
    } else {
        println!("{any_diff} uses differ.");
        std::process::exit(1);
    }
}
