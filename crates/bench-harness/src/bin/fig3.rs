//! Figure 3 — total points-to relationships computed by the
//! context-insensitive analysis, by output type.

use alias::stats::pair_type_counts;

fn main() {
    let mut rows = Vec::new();
    let mut tot = alias::stats::PairTypeCounts::default();
    for d in bench_harness::prepare_all() {
        let c = pair_type_counts(&d.graph, d.ci.as_ref());
        tot.pointer += c.pointer;
        tot.function += c.function;
        tot.aggregate += c.aggregate;
        tot.store += c.store;
        rows.push(vec![
            d.name.to_string(),
            c.pointer.to_string(),
            c.function.to_string(),
            c.aggregate.to_string(),
            c.store.to_string(),
            c.total().to_string(),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        tot.pointer.to_string(),
        tot.function.to_string(),
        tot.aggregate.to_string(),
        tot.store.to_string(),
        tot.total().to_string(),
    ]);
    println!("Figure 3: total points-to pairs (context-insensitive analysis)\n");
    println!(
        "{}",
        bench_harness::render_table(
            &["name", "pointer", "function", "aggregate", "store", "total"],
            &rows
        )
    );
}
