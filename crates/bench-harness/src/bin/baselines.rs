//! The precision spectrum across related analyses (our extension):
//!
//! ```text
//! Weihl (program-wide)       ⊒ CI (Fig. 1) ⊒ k=1 call-strings ⊒ assumption sets (Fig. 5)
//! Steensgaard (unification)  ⊒ CI (Fig. 1)
//! ```
//!
//! Weihl and Steensgaard are incomparable with each other: the former
//! loses program-point distinctions but keeps fields and subset
//! direction; the latter keeps neither but is almost linear.
//!
//! For each benchmark, reports the average number of *base-locations*
//! referenced per indirect memory operation under each analysis (the
//! field-insensitive unification baseline can only be compared at base
//! granularity), plus analysis time.

use alias::callstring::{analyze_callstring, CallStringConfig};
use alias::steensgaard::{analyze_steensgaard, ci_referent_bases};
use alias::weihl::analyze_weihl;
use std::time::Instant;

/// Average distinct referent bases per indirect op.
fn avg_bases(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts.iter().sum::<usize>() as f64 / counts.len() as f64
}

fn base_count_of_paths(
    paths: &alias::PathTable,
    refs: &[alias::PathId],
) -> usize {
    let mut bases: Vec<_> = refs.iter().filter_map(|&p| paths.base_of(p)).collect();
    bases.sort_unstable();
    bases.dedup();
    bases.len()
}

fn main() {
    let mut rows = Vec::new();
    for d in bench_harness::prepare_all() {
        let t0 = Instant::now();
        let weihl = analyze_weihl(&d.graph);
        let weihl_t = t0.elapsed();
        let t1 = Instant::now();
        let mut steens = analyze_steensgaard(&d.graph);
        let steens_t = t1.elapsed();
        let t2 = Instant::now();
        let k1 = analyze_callstring(&d.graph, &CallStringConfig::default())
            .expect("k=1 within budget");
        let k1_t = t2.elapsed();

        let ops = d.graph.indirect_mem_ops();
        let mut w_counts = Vec::new();
        let mut s_counts = Vec::new();
        let mut ci_counts = Vec::new();
        let mut k1_counts = Vec::new();
        let mut cs_counts = Vec::new();
        for &(node, _) in &ops {
            w_counts.push(base_count_of_paths(
                &weihl.paths,
                &weihl.loc_referents(&d.graph, node),
            ));
            s_counts.push(steens.loc_bases(&d.graph, node).len());
            ci_counts.push(ci_referent_bases(&d.ci, &d.graph, node).len());
            k1_counts.push(base_count_of_paths(
                &k1.paths,
                &k1.loc_referents(&d.graph, node),
            ));
            cs_counts.push(base_count_of_paths(
                &d.cs.paths,
                &d.cs.loc_referents(&d.graph, node),
            ));
        }
        rows.push(vec![
            d.name.to_string(),
            format!("{:.2}", avg_bases(&w_counts)),
            format!("{:.2}", avg_bases(&s_counts)),
            format!("{:.2}", avg_bases(&ci_counts)),
            format!("{:.2}", avg_bases(&k1_counts)),
            format!("{:.2}", avg_bases(&cs_counts)),
            format!("{:.0?}", weihl_t),
            format!("{:.0?}", steens_t),
            format!("{:.0?}", d.ci_time),
            format!("{:.0?}", k1_t),
            format!("{:.0?}", d.cs_time),
        ]);
    }
    println!(
        "Precision spectrum: average base-locations per indirect memory op\n\
         (base granularity, so the field-insensitive unification baseline is\n\
         comparable; lower is more precise)\n"
    );
    println!(
        "{}",
        bench_harness::render_table(
            &["name", "Weihl", "Steens", "CI", "k=1", "CS(assum)",
              "t(Weihl)", "t(Steens)", "t(CI)", "t(k=1)", "t(CS)"],
            &rows
        )
    );
    println!(
        "Expected per row: Weihl >= CI, Steens >= CI, CI >= k=1 >= CS, and\n\
         CI == CS at indirect references (the paper's headline). Weihl and\n\
         Steens are mutually incomparable. The question the paper isolates\n\
         is the CI-vs-CS column pair; the left columns show how much the\n\
         program-point-specific formulation already bought."
    );
}
