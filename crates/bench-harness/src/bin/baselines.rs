//! The precision spectrum across related analyses (our extension):
//!
//! ```text
//! Weihl (program-wide)       ⊒ CI (Fig. 1) ⊒ k=1 call-strings ⊒ assumption sets (Fig. 5)
//! Steensgaard (unification)  ⊒ CI (Fig. 1)
//! ```
//!
//! Weihl and Steensgaard are incomparable with each other: the former
//! loses program-point distinctions but keeps fields and subset
//! direction; the latter keeps neither but is almost linear.
//!
//! For each benchmark, reports the average number of *base-locations*
//! referenced per indirect memory operation under each analysis (the
//! field-insensitive unification baseline can only be compared at base
//! granularity), plus analysis time. All five solvers run through the
//! uniform `alias::Solver` trait, fanned out by the parallel engine.

/// Average distinct referent bases per indirect op under one solution.
fn avg_bases(sol: &dyn alias::Solution, graph: &vdg::Graph) -> f64 {
    let ops = graph.indirect_mem_ops();
    if ops.is_empty() {
        return 0.0;
    }
    let total: usize = ops
        .iter()
        .map(|&(node, _)| sol.loc_referent_bases(graph, node).len())
        .sum();
    total as f64 / ops.len() as f64
}

fn main() {
    const ORDER: [&str; 5] = ["weihl", "steensgaard", "ci", "k1", "cs"];
    let run = bench_harness::suite_spectrum(0);
    let mut rows = Vec::new();
    for b in &run.benches {
        let mut row = vec![b.name.clone()];
        for a in ORDER {
            let sol = b.solution(a).expect("solver within budget");
            row.push(format!("{:.2}", avg_bases(sol, &b.graph)));
        }
        for a in ORDER {
            row.push(format!("{:.0?}", b.wall(a).expect("solver ran")));
        }
        rows.push(row);
    }
    println!(
        "Precision spectrum: average base-locations per indirect memory op\n\
         (base granularity, so the field-insensitive unification baseline is\n\
         comparable; lower is more precise)\n"
    );
    println!(
        "{}",
        bench_harness::render_table(
            &[
                "name",
                "Weihl",
                "Steens",
                "CI",
                "k=1",
                "CS(assum)",
                "t(Weihl)",
                "t(Steens)",
                "t(CI)",
                "t(k=1)",
                "t(CS)"
            ],
            &rows
        )
    );
    println!(
        "Expected per row: Weihl >= CI, Steens >= CI, CI >= k=1 >= CS, and\n\
         CI == CS at indirect references (the paper's headline). Weihl and\n\
         Steens are mutually incomparable. The question the paper isolates\n\
         is the CI-vs-CS column pair; the left columns show how much the\n\
         program-point-specific formulation already bought."
    );
}
