//! Figure 6 — points-to relationships computed by the context-sensitive
//! analysis, the CI totals, and the percentage found spurious.

use alias::stats::spurious_row;

fn main() {
    let mut rows = Vec::new();
    let (mut tcs, mut tci) = (0usize, 0usize);
    for d in bench_harness::prepare_all() {
        let r = spurious_row(&d.graph, &d.ci, &d.cs);
        tcs += r.cs.total();
        tci += r.ci_total;
        rows.push(vec![
            d.name.to_string(),
            r.cs.pointer.to_string(),
            r.cs.function.to_string(),
            r.cs.aggregate.to_string(),
            r.cs.store.to_string(),
            r.cs.total().to_string(),
            r.ci_total.to_string(),
            format!("{:.1}", r.percent_spurious),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        tcs.to_string(),
        tci.to_string(),
        format!("{:.1}", 100.0 * (tci - tcs) as f64 / tci as f64),
    ]);
    println!("Figure 6: context-sensitive pairs vs context-insensitive totals\n");
    println!(
        "{}",
        bench_harness::render_table(
            &[
                "name",
                "pointer",
                "function",
                "aggregate",
                "store",
                "total",
                "total (insens.)",
                "% spurious"
            ],
            &rows
        )
    );
    println!("(paper: 0.0%–11.8% per program, 2.0% aggregate)");
}
