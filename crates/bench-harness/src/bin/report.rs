//! One parallel engine invocation over the whole paper evaluation:
//! every benchmark × every solver, with per-stage metrics.
//!
//! ```text
//! cargo run -p bench-harness --bin report            # metrics table
//! cargo run -p bench-harness --bin report -- --json  # EngineReport JSON
//! cargo run -p bench-harness --bin report -- --threads 4
//! ```
//!
//! The JSON schema is documented in DESIGN.md §"The engine".

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);

    let run = bench_harness::suite_spectrum(threads);
    if json {
        print!("{}", run.report.to_json());
        return;
    }

    let ms = |d: std::time::Duration| format!("{:.2}ms", d.as_secs_f64() * 1e3);
    let mut rows = Vec::new();
    for b in &run.report.benchmarks {
        let mut row = vec![
            b.name.clone(),
            b.nodes.to_string(),
            b.indirect_refs.to_string(),
            ms(b.frontend),
            ms(b.lowering),
        ];
        for s in &b.solvers {
            row.push(match &s.error {
                Some(_) => "OVERFLOW".to_string(),
                None => ms(s.wall),
            });
        }
        rows.push(row);
    }
    let solver_names: Vec<String> = run
        .report
        .benchmarks
        .first()
        .map(|b| {
            b.solvers
                .iter()
                .map(|s| format!("t({})", s.analysis))
                .collect()
        })
        .unwrap_or_default();
    let mut headers: Vec<&str> = vec!["name", "nodes", "refs", "frontend", "lowering"];
    headers.extend(solver_names.iter().map(String::as_str));
    println!(
        "Engine report: {} benchmarks x {} solvers on {} thread(s), {:.2?} total\n",
        run.report.benchmarks.len(),
        run.benches.first().map(|b| b.solutions.len()).unwrap_or(0),
        run.report.threads,
        run.report.total_wall,
    );
    println!("{}", bench_harness::render_table(&headers, &rows));
    for a in ["weihl", "steensgaard", "ci", "k1", "cs"] {
        println!("total {a:<12} {:>10.2?}", run.report.solver_wall(a));
    }
    println!("\n(re-run with --json for the machine-readable report)");
}
