//! One parallel engine invocation over the whole paper evaluation:
//! every benchmark × every solver, with per-stage metrics.
//!
//! ```text
//! cargo run -p bench-harness --bin report                  # metrics table
//! cargo run -p bench-harness --bin report -- --json        # EngineReport JSON
//! cargo run -p bench-harness --bin report -- --threads 4
//! cargo run -p bench-harness --bin report -- --scaling     # synthetic sweep
//! cargo run -p bench-harness --bin report -- --naive       # PR 1 worklists
//! cargo run -p bench-harness --bin report -- --fingerprint # hashable report
//! cargo run -p bench-harness --bin report -- --fuzz --seeds 500 --budget-ms 200
//! cargo run -p bench-harness --bin report -- --incremental --chains 100
//! ```
//!
//! `--scaling` swaps the paper suite for the synthetic chain/diamond
//! sweep (`suite::scaling`); `--naive` disables difference propagation
//! in every solver that has the knob, reproducing the PR 1 worklist
//! discipline; `--fingerprint` prints the schedule-independent report
//! rendering (timings and delta-batch counters nulled), which must be
//! byte-identical across `--threads` values and worklist disciplines.
//!
//! `--fuzz` runs a differential fuzzing campaign (`engine::fuzz`)
//! instead of the benchmark report: `--seeds` / `--start-seed` pick
//! the seed range, `--budget-ms` the per-solver wall-clock budget,
//! and the process exits nonzero when any violation survives. With
//! `--json` the full `FuzzReport` (including minimized repros) is
//! printed — CI uploads that file when the smoke campaign fails.
//!
//! `--incremental` benchmarks `Engine::analyze_incremental`: `--trials`
//! (default 9) timed single-statement edits over the scaling sweep,
//! incremental vs from-scratch, each trial fingerprint-checked; and
//! `--chains N` edit chains over the paper suite, every step
//! cross-checked against a from-scratch run. Writes the campaign to
//! `--out` (default `BENCH_pr4.json`) and exits nonzero on any
//! incremental/fresh mismatch:
//!
//! ```text
//! cargo run --release -p bench-harness --bin report -- --incremental --chains 100
//! ```
//!
//! The JSON schema is documented in DESIGN.md §"The engine" and
//! §"Differential fuzzing".

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let scaling = args.iter().any(|a| a == "--scaling");
    let naive = args.iter().any(|a| a == "--naive");
    let fingerprint = args.iter().any(|a| a == "--fingerprint");
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let numeric =
        |name: &str, default: u64| value(name).and_then(|v| v.parse().ok()).unwrap_or(default);
    let threads = numeric("--threads", 0) as usize;

    if args.iter().any(|a| a == "--incremental") {
        let trials = numeric("--trials", 9) as usize;
        let chains = numeric("--chains", 0) as usize;
        let seed = numeric("--seed", 1995);
        let out = value("--out")
            .cloned()
            .unwrap_or_else(|| "BENCH_pr4.json".to_string());
        let trial_runs = bench_harness::incremental_scaling_trials(threads, trials, seed);
        let (chain_steps, chain_mismatches) = if chains > 0 {
            bench_harness::incremental_chain_check(threads, chains, seed)
        } else {
            (0, 0)
        };
        let report = bench_harness::IncrementalReport {
            threads,
            trials: trial_runs,
            chains,
            chain_steps,
            chain_mismatches,
        };
        std::fs::write(&out, report.to_json()).expect("write incremental report");
        if json {
            print!("{}", report.to_json());
        } else {
            print!("{}", report.summary());
            println!("wrote {out}");
        }
        if report.mismatches() > 0 {
            eprintln!(
                "{} incremental/fresh fingerprint mismatch(es)",
                report.mismatches()
            );
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "--fuzz") {
        let cfg = engine::FuzzConfig {
            seeds: numeric("--seeds", 100),
            start_seed: numeric("--start-seed", 0),
            budget_ms: numeric("--budget-ms", 200),
            threads,
            ..engine::FuzzConfig::default()
        };
        let report = engine::fuzz::fuzz(&cfg);
        if json {
            print!("{}", report.to_json());
        } else {
            println!("{}", report.summary());
            for v in &report.violations {
                println!(
                    "\n[{} / {} @ seed {}] {}",
                    v.kind, v.solver, v.seed, v.detail
                );
                if let Some(min) = &v.minimized {
                    println!("minimized counterexample:\n{min}");
                }
            }
        }
        if !report.violations.is_empty() {
            eprintln!(
                "{} differential violation(s) found",
                report.violations.len()
            );
            std::process::exit(1);
        }
        return;
    }
    if let Some(dir) = args
        .iter()
        .position(|a| a == "--emit")
        .and_then(|i| args.get(i + 1))
    {
        // Dump the scaling sweep's sources (for inspection, or for
        // benchmarking them under another checkout).
        std::fs::create_dir_all(dir).expect("create emit dir");
        for j in bench_harness::scaling_jobs() {
            let path = std::path::Path::new(dir).join(format!("{}.c", j.name));
            std::fs::write(&path, &j.source).expect("write program");
            println!("wrote {}", path.display());
        }
        return;
    }

    let run = if scaling {
        bench_harness::scaling_spectrum(threads, naive)
    } else if naive {
        bench_harness::suite_spectrum_naive(threads)
    } else {
        bench_harness::suite_spectrum(threads)
    };
    if fingerprint {
        print!("{}", run.report.fingerprint());
        return;
    }
    if json {
        print!("{}", run.report.to_json());
        return;
    }

    let ms = |d: std::time::Duration| format!("{:.2}ms", d.as_secs_f64() * 1e3);
    let mut rows = Vec::new();
    for b in &run.report.benchmarks {
        let mut row = vec![
            b.name.clone(),
            b.nodes.to_string(),
            b.indirect_refs.to_string(),
            ms(b.frontend),
            ms(b.lowering),
        ];
        for s in &b.solvers {
            row.push(match &s.error {
                Some(_) => "OVERFLOW".to_string(),
                None => ms(s.wall),
            });
        }
        rows.push(row);
    }
    let solver_names: Vec<String> = run
        .report
        .benchmarks
        .first()
        .map(|b| {
            b.solvers
                .iter()
                .map(|s| format!("t({})", s.analysis))
                .collect()
        })
        .unwrap_or_default();
    let mut headers: Vec<&str> = vec!["name", "nodes", "refs", "frontend", "lowering"];
    headers.extend(solver_names.iter().map(String::as_str));
    println!(
        "Engine report: {} benchmarks x {} solvers on {} thread(s), {:.2?} total\n",
        run.report.benchmarks.len(),
        run.benches.first().map(|b| b.solutions.len()).unwrap_or(0),
        run.report.threads,
        run.report.total_wall,
    );
    println!("{}", bench_harness::render_table(&headers, &rows));
    for a in ["weihl", "steensgaard", "ci", "k1", "cs"] {
        println!("total {a:<12} {:>10.2?}", run.report.solver_wall(a));
    }
    println!("\n(re-run with --json for the machine-readable report)");
}
