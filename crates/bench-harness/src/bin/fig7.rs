//! Figure 7 — context-insensitive and spurious points-to pairs, broken
//! down by path and referent types (aggregated over the whole suite).

use alias::stats::{type_matrices, TypeMatrix};

fn show(title: &str, m: &TypeMatrix) {
    println!("{title} ({} pairs)", m.total);
    let rows = ["function", "local", "global", "heap"];
    let mut table = Vec::new();
    for (r, name) in rows.iter().enumerate() {
        table.push(vec![
            name.to_string(),
            format!("{:.1}%", m.cells[r][0]),
            format!("{:.1}%", m.cells[r][1]),
            format!("{:.1}%", m.cells[r][2]),
            format!("{:.1}%", m.cells[r][3]),
        ]);
    }
    println!(
        "{}",
        bench_harness::render_table(
            &["referent \\ path", "offset", "local", "global", "heap"],
            &table
        )
    );
}

fn main() {
    // Aggregate over all benchmarks by merging pair populations.
    let mut all_cells = [[0f64; 4]; 4];
    let mut spur_cells = [[0f64; 4]; 4];
    let (mut all_total, mut spur_total) = (0usize, 0usize);
    for d in bench_harness::prepare_all() {
        let (all, spur) = type_matrices(&d.graph, &d.ci, &d.cs);
        for r in 0..4 {
            for c in 0..4 {
                all_cells[r][c] += all.cells[r][c] / 100.0 * all.total as f64;
                spur_cells[r][c] += spur.cells[r][c] / 100.0 * spur.total as f64;
            }
        }
        all_total += all.total;
        spur_total += spur.total;
    }
    let norm = |cells: &mut [[f64; 4]; 4], total: usize| {
        if total > 0 {
            for row in cells.iter_mut() {
                for c in row.iter_mut() {
                    *c = *c * 100.0 / total as f64;
                }
            }
        }
    };
    norm(&mut all_cells, all_total);
    norm(&mut spur_cells, spur_total);
    println!("Figure 7: path/referent type distribution\n");
    show(
        "All points-to pairs (context-insensitive)",
        &TypeMatrix {
            cells: all_cells,
            total: all_total,
        },
    );
    show(
        "Spurious points-to pairs only",
        &TypeMatrix {
            cells: spur_cells,
            total: spur_total,
        },
    );
    println!(
        "(paper: spurious pairs skew towards local paths — incorrectly\n\
         returning another caller's dead local is harmless)"
    );
}
