//! Ablations of the design choices DESIGN.md calls out: strong updates,
//! subsumption, and CI pruning.

use alias::stats::indirect_ref_rows;
use alias::SolverSpec;

fn main() {
    println!("Ablation study\n");
    let mut rows = Vec::new();
    for d in bench_harness::prepare_all() {
        // Strong updates off: CI pair growth.
        let weak = SolverSpec::ci().strong_updates(false).solve_ci(&d.graph);
        // CS without subsumption (bounded budget).
        let budget = 30_000_000;
        let no_subsume = SolverSpec::cs()
            .subsumption(false)
            .max_steps(budget)
            .solve(&d.graph, Some(&d.ci))
            .map(|s| s.into_cs().expect("cs result"));
        // CS without CI pruning.
        let no_prune = SolverSpec::cs()
            .ci_pruning(false)
            .max_steps(budget)
            .solve(&d.graph, Some(&d.ci))
            .map(|s| s.into_cs().expect("cs result"));
        let fmt_cs = |r: &Result<alias::CsResult, alias::AnalysisError>| match r {
            Ok(cs) => format!("{}", cs.flow_ins),
            Err(_) => "OVERFLOW".to_string(),
        };
        let (r_strong, _) = indirect_ref_rows(&d.graph, d.ci.as_ref());
        let (r_weak, _) = indirect_ref_rows(&d.graph, &weak);
        rows.push(vec![
            d.name.to_string(),
            d.ci.total_pairs().to_string(),
            weak.total_pairs().to_string(),
            format!(
                "+{:.0}%",
                100.0 * (weak.total_pairs() as f64 / d.ci.total_pairs() as f64 - 1.0)
            ),
            format!("{:.2}", r_strong.avg),
            format!("{:.2}", r_weak.avg),
            d.cs.flow_ins.to_string(),
            fmt_cs(&no_subsume),
            fmt_cs(&no_prune),
        ]);
    }
    println!(
        "{}",
        bench_harness::render_table(
            &[
                "name",
                "CI pairs",
                "no strong-upd",
                "growth",
                "read avg",
                "read avg (weak)",
                "CS flow-ins",
                "no subsumption",
                "no CI-pruning"
            ],
            &rows
        )
    );
    println!(
        "(the paper could not even run its unoptimized context-sensitive\n\
         algorithm on \"any but the smallest of examples\"; OVERFLOW marks a\n\
         30M-step budget exhaustion)"
    );
}
