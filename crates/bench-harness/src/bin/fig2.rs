//! Figure 2 — benchmark programs and their sizes in source and VDG form,
//! plus the §5.1.2 call-graph shape statistics ("procedures average 4.2
//! callers, 54% of procedures have only one caller").

use std::collections::HashMap;
use vdg::stats::size_stats;

fn main() {
    let mut rows = Vec::new();
    let (mut tl, mut tn, mut ta) = (0, 0, 0);
    let mut total_funcs = 0usize;
    let mut total_callers = 0usize;
    let mut single_caller = 0usize;
    for d in bench_harness::prepare_all() {
        let s = size_stats(&d.graph, &d.source);
        tl += s.lines;
        tn += s.nodes;
        ta += s.alias_related_outputs;

        // Callers per function, from the solver-discovered call graph.
        let mut callers: HashMap<u32, usize> = HashMap::new();
        for fs in d.ci.callees.values() {
            for f in fs {
                *callers.entry(f.0).or_default() += 1;
            }
        }
        let mut n_funcs = 0usize;
        let mut n_callers = 0usize;
        let mut n_single = 0usize;
        for f in d.graph.func_ids() {
            if f == d.graph.root() || d.graph.func(f).name == "main" {
                continue;
            }
            let c = callers.get(&f.0).copied().unwrap_or(0);
            n_funcs += 1;
            n_callers += c;
            if c == 1 {
                n_single += 1;
            }
        }
        total_funcs += n_funcs;
        total_callers += n_callers;
        single_caller += n_single;

        rows.push(vec![
            d.name.to_string(),
            s.lines.to_string(),
            s.nodes.to_string(),
            s.alias_related_outputs.to_string(),
            n_funcs.to_string(),
            if n_funcs > 0 {
                format!("{:.1}", n_callers as f64 / n_funcs as f64)
            } else {
                "-".into()
            },
            if n_funcs > 0 {
                format!("{:.0}%", 100.0 * n_single as f64 / n_funcs as f64)
            } else {
                "-".into()
            },
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        tl.to_string(),
        tn.to_string(),
        ta.to_string(),
        total_funcs.to_string(),
        format!("{:.1}", total_callers as f64 / total_funcs as f64),
        format!("{:.0}%", 100.0 * single_caller as f64 / total_funcs as f64),
    ]);
    println!("Figure 2: benchmark programs and their sizes (this reproduction)\n");
    println!(
        "{}",
        bench_harness::render_table(
            &[
                "name",
                "source lines",
                "VDG nodes",
                "alias-related outputs",
                "procs",
                "avg callers",
                "1-caller"
            ],
            &rows
        )
    );
    println!(
        "Notes: sources are reconstructions (see DESIGN.md \u{00a7}4); absolute sizes\n\
         are smaller than the paper's originals, the node/line ratio is the\n\
         comparable quantity. The caller statistics reproduce \u{00a7}5.1.2's\n\
         sparse-call-graph observation (paper: 4.2 avg callers, 54% single-\n\
         caller procedures; `main` and the root are excluded)."
    );
}
