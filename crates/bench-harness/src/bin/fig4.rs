//! Figure 4 — points-to statistics for indirect memory reads and writes.

use alias::stats::indirect_ref_rows;

fn main() {
    let mut rows = Vec::new();
    let mut agg = [alias::stats::IndirectRefRow::default(); 2];
    let mut sums = [0usize; 2];
    for d in bench_harness::prepare_all() {
        let (r, w) = indirect_ref_rows(&d.graph, d.ci.as_ref());
        for (kind, row) in [("read", r), ("write", w)] {
            let i = usize::from(kind == "write");
            agg[i].total += row.total;
            agg[i].n1 += row.n1;
            agg[i].n2 += row.n2;
            agg[i].n3 += row.n3;
            agg[i].n4_plus += row.n4_plus;
            agg[i].n0 += row.n0;
            agg[i].max = agg[i].max.max(row.max);
            sums[i] += (row.avg * row.total as f64) as usize;
            rows.push(vec![
                d.name.to_string(),
                kind.to_string(),
                row.total.to_string(),
                row.n1.to_string(),
                row.n2.to_string(),
                row.n3.to_string(),
                row.n4_plus.to_string(),
                row.max.to_string(),
                format!("{:.2}", row.avg),
            ]);
        }
    }
    for (i, kind) in ["read", "write"].iter().enumerate() {
        let avg = if agg[i].total > 0 {
            sums[i] as f64 / agg[i].total as f64
        } else {
            0.0
        };
        rows.push(vec![
            "TOTAL".into(),
            kind.to_string(),
            agg[i].total.to_string(),
            agg[i].n1.to_string(),
            agg[i].n2.to_string(),
            agg[i].n3.to_string(),
            agg[i].n4_plus.to_string(),
            agg[i].max.to_string(),
            format!("{avg:.2}"),
        ]);
    }
    println!("Figure 4: locations accessed by indirect memory reads/writes (CI)\n");
    println!(
        "{}",
        bench_harness::render_table(
            &["name", "type", "total", "n=1", "n=2", "n=3", "n>=4", "max", "avg"],
            &rows
        )
    );
    println!("(operations referencing zero locations — null-only pointers — count\n in `total` but no bucket, per the paper's footnote)");
}
