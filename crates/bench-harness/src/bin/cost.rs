//! §4.2 cost comparison: transfer functions (flow-ins), meet operations
//! (flow-outs), and wall-clock time, CI vs CS.

fn main() {
    let mut rows = Vec::new();
    for d in bench_harness::prepare_all() {
        rows.push(vec![
            d.name.to_string(),
            d.ci.flow_ins.to_string(),
            d.cs.flow_ins.to_string(),
            format!("{:.2}x", d.cs.flow_ins as f64 / d.ci.flow_ins as f64),
            d.ci.flow_outs.to_string(),
            d.cs.flow_outs.to_string(),
            format!("{:.1}x", d.cs.flow_outs as f64 / d.ci.flow_outs as f64),
            format!("{:.2?}", d.ci_time),
            format!("{:.2?}", d.cs_time),
            format!("{:.1}x", d.cs_time.as_secs_f64() / d.ci_time.as_secs_f64()),
            d.cs.distinct_assumption_sets.to_string(),
            d.cs.max_assumption_set.to_string(),
        ]);
    }
    println!("Cost of context-sensitivity (§4.2), with both optimizations on\n");
    println!(
        "{}",
        bench_harness::render_table(
            &[
                "name",
                "CI flow-ins",
                "CS flow-ins",
                "ratio",
                "CI flow-outs",
                "CS flow-outs",
                "ratio",
                "CI time",
                "CS time",
                "ratio",
                "assum sets",
                "max set"
            ],
            &rows
        )
    );
    println!(
        "(paper, with the same optimizations: ~1.1x the flow-ins, up to 100x\n\
         the flow-outs, 2-3 orders of magnitude slower on the largest inputs;\n\
         run the `ablation` binary to see the unoptimized blowup)"
    );
}
