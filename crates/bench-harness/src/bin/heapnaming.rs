//! Heap-naming experiment (paper §2 footnote 3 and §5.1.1).
//!
//! The paper names every heap allocation site with a single
//! base-location and remarks that "increasing the number of
//! base-locations per malloc, e.g., by naming such base-locations with a
//! call string instead of a single allocation site, would be a trivial
//! modification" — and predicts (§5.1.1) that more precise heap analyses
//! "allow multiple representatives per allocation site, yielding a
//! larger pool of locations, and thus a larger set of spurious points-to
//! relations in the context-insensitive case."
//!
//! This binary measures both effects: pair counts and the Figure 6
//! spurious percentage under site naming vs k=1 call-string naming.

use alias::stats::spurious_row;
use alias::{HeapNaming, SolverSpec};
use vdg::build::{lower, BuildOptions};

fn main() {
    let mut rows = Vec::new();
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();

        let mut cells = vec![b.name.to_string()];
        let mut spurs = Vec::new();
        for naming in [HeapNaming::Site, HeapNaming::CallString1] {
            let ci = SolverSpec::ci().heap_naming(naming).solve_ci(&graph);
            cells.push(ci.total_pairs().to_string());
            // Finer heap naming makes the (still exponential)
            // context-sensitive analysis dramatically more expensive —
            // exactly the scalability cliff the paper warns about — so
            // give it a firm budget and report overflows.
            let cs = SolverSpec::cs()
                .heap_naming(naming)
                .max_steps(5_000_000)
                .solve(&graph, Some(&ci))
                .map(|s| s.into_cs().expect("cs result"));
            match cs {
                Ok(cs) => {
                    let row = spurious_row(&graph, &ci, &cs);
                    cells.push(format!("{:.1}", row.percent_spurious));
                    spurs.push(Some(row.percent_spurious));
                }
                Err(_) => {
                    cells.push("OVERFLOW".to_string());
                    spurs.push(None);
                }
            }
        }
        cells.push(match (spurs[0], spurs[1]) {
            (Some(a), Some(b)) => {
                if b >= a {
                    "yes".to_string()
                } else {
                    "no".to_string()
                }
            }
            _ => "CS infeasible".to_string(),
        });
        rows.push(cells);
    }
    println!("Heap naming: one base per site vs per (site, immediate caller)\n");
    println!(
        "{}",
        bench_harness::render_table(
            &[
                "name",
                "CI pairs (site)",
                "spur% (site)",
                "CI pairs (k=1)",
                "spur% (k=1)",
                "spur grows?"
            ],
            &rows
        )
    );
    println!(
        "(paper §5.1.1: finer heap naming enlarges the location pool and the\n\
         spurious share under context-insensitivity — the \"interesting\n\
         paradox\" that more precise analyses produce worse-looking absolute\n\
         statistics)"
    );
}
