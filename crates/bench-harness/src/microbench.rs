//! A small self-contained timing harness for `cargo bench`.
//!
//! The workspace builds without network access, so the benches use this
//! instead of an external harness. Each bench target is a plain
//! `harness = false` binary that constructs a [`Runner`] and registers
//! closures; the runner warms each one up, then times batches until it
//! has enough samples, and prints min/median/mean wall times.
//!
//! ```text
//! cargo bench -p bench-harness                 # everything
//! cargo bench -p bench-harness --bench analysis -- ci/   # filtered
//! ```
//!
//! A positional argument acts as a substring filter on bench names,
//! mirroring the usual harness convention.

use std::time::{Duration, Instant};

/// Target wall time spent measuring each bench (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(900);
/// Warm-up time per bench.
const WARMUP: Duration = Duration::from_millis(200);
/// Samples to aim for within the budget.
const TARGET_SAMPLES: usize = 12;

/// Collects and runs named benches, honoring a CLI substring filter.
pub struct Runner {
    filter: Option<String>,
    ran: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_args()
    }
}

impl Runner {
    /// A runner filtered by the first non-flag CLI argument, if any
    /// (flags like `--bench` that cargo forwards are ignored).
    pub fn from_args() -> Runner {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Runner { filter, ran: 0 }
    }

    /// Times `f` and prints one result line, unless filtered out.
    /// The closure's return value is black-boxed so the work is not
    /// optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;
        let warm_until = Instant::now() + WARMUP;
        let mut iters_per_sample = 1usize;
        loop {
            let t = Instant::now();
            std::hint::black_box(f());
            let once = t.elapsed();
            if Instant::now() >= warm_until {
                // Batch fast closures so per-sample time is measurable.
                let per_sample = MEASURE_BUDGET / (TARGET_SAMPLES as u32);
                if once > Duration::ZERO {
                    iters_per_sample = (per_sample.as_nanos() / once.as_nanos().max(1))
                        .clamp(1, 1_000_000) as usize;
                }
                break;
            }
        }
        let mut samples = Vec::with_capacity(TARGET_SAMPLES);
        let stop = Instant::now() + MEASURE_BUDGET;
        while samples.len() < TARGET_SAMPLES.max(2) || Instant::now() < stop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed() / (iters_per_sample as u32));
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / (samples.len() as u32);
        println!(
            "{name:<40} min {min:>10.2?}   median {median:>10.2?}   mean {mean:>10.2?}   ({} samples x {iters_per_sample} iters)",
            samples.len()
        );
    }

    /// Prints a trailer; call once after registering every bench.
    pub fn finish(self) {
        if self.ran == 0 {
            println!(
                "no benches matched filter {:?}",
                self.filter.as_deref().unwrap_or("")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut r = Runner {
            filter: Some("match".into()),
            ran: 0,
        };
        r.bench("matching_name", || 1 + 1);
        r.bench("other", || 2 + 2);
        assert_eq!(r.ran, 1);
    }
}
