//! # bench-harness — table and figure regeneration
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | binary     | reproduces                                            |
//! |------------|-------------------------------------------------------|
//! | `fig2`     | Figure 2 — program sizes                              |
//! | `fig3`     | Figure 3 — CI points-to pairs by output type          |
//! | `fig4`     | Figure 4 — locations accessed by indirect refs        |
//! | `fig6`     | Figure 6 — CS pairs, CI total, % spurious             |
//! | `fig7`     | Figure 7 — path × referent type distribution          |
//! | `headline` | §4.3 — CS vs CI at indirect memory references         |
//! | `cost`     | §4.2 — flow-in/flow-out counts and timing ratios      |
//! | `ablation` | strong updates / subsumption / CI-pruning ablations   |
//!
//! Criterion benches (`cargo bench -p bench-harness`) time the solvers
//! themselves.

#![warn(missing_docs)]

use alias::{analyze_ci, analyze_cs, CiConfig, CiResult, CsConfig, CsResult};
use std::time::{Duration, Instant};
use vdg::build::{lower, BuildOptions};
use vdg::Graph;

/// Everything computed for one benchmark program.
pub struct BenchData {
    /// Benchmark name (Figure 2 order).
    pub name: &'static str,
    /// mini-C source text.
    pub source: &'static str,
    /// The checked program.
    pub program: cfront::Program,
    /// Its VDG.
    pub graph: Graph,
    /// Context-insensitive solution.
    pub ci: CiResult,
    /// Wall-clock time of the CI run.
    pub ci_time: Duration,
    /// Context-sensitive solution (default optimizations).
    pub cs: CsResult,
    /// Wall-clock time of the CS run.
    pub cs_time: Duration,
}

/// Compiles, lowers, and runs both analyses on one benchmark.
///
/// # Panics
///
/// Panics if the benchmark fails any pipeline stage (the test suite
/// guarantees it does not).
pub fn prepare(b: &suite::Benchmark) -> BenchData {
    let program = cfront::compile(b.source).expect("benchmark compiles");
    let graph = lower(&program, &BuildOptions::default()).expect("benchmark lowers");
    let t0 = Instant::now();
    let ci = analyze_ci(&graph, &CiConfig::default());
    let ci_time = t0.elapsed();
    let t1 = Instant::now();
    let cs = analyze_cs(&graph, &ci, &CsConfig::default()).expect("CS within budget");
    let cs_time = t1.elapsed();
    BenchData {
        name: b.name,
        source: b.source,
        program,
        graph,
        ci,
        ci_time,
        cs,
        cs_time,
    }
}

/// Prepares every suite benchmark.
pub fn prepare_all() -> Vec<BenchData> {
    suite::benchmarks().iter().map(prepare).collect()
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:>w$}  "));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len() - 2));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:>w$}  "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_runs_one_benchmark() {
        let b = suite::by_name("span").unwrap();
        let d = prepare(&b);
        assert!(d.ci.total_pairs() > 0);
        assert!(d.cs.total_pairs() > 0);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["name", "n"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("long-name"));
    }
}
