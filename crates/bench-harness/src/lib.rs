//! # bench-harness — table and figure regeneration
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | binary     | reproduces                                            |
//! |------------|-------------------------------------------------------|
//! | `fig2`     | Figure 2 — program sizes                              |
//! | `fig3`     | Figure 3 — CI points-to pairs by output type          |
//! | `fig4`     | Figure 4 — locations accessed by indirect refs        |
//! | `fig6`     | Figure 6 — CS pairs, CI total, % spurious             |
//! | `fig7`     | Figure 7 — path × referent type distribution          |
//! | `headline` | §4.3 — CS vs CI at indirect memory references         |
//! | `cost`     | §4.2 — flow-in/flow-out counts and timing ratios      |
//! | `ablation` | strong updates / subsumption / CI-pruning ablations   |
//! | `report`   | one engine run: all five solvers, per-stage metrics   |
//!
//! Every binary drives the parallel [`engine`] instead of a hand-rolled
//! serial loop: benchmarks are compiled and lowered once, the solvers
//! fan out across cores, and the tables are rendered from the shared
//! results. Micro-benches (`cargo bench -p bench-harness`) time the
//! solvers themselves; see [`microbench`].

#![warn(missing_docs)]

pub mod microbench;

use alias::solver::solution_fingerprint;
use alias::{CiResult, CsResult, SolverSpec};
use engine::{Engine, EngineRun, Job};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vdg::Graph;

/// Everything computed for one benchmark program.
///
/// `program`, `graph`, and `ci` are the engine's shared immutable
/// structures — clones of an `Arc`, not of the data.
pub struct BenchData {
    /// Benchmark name (Figure 2 order).
    pub name: String,
    /// mini-C source text.
    pub source: String,
    /// The checked program.
    pub program: Arc<cfront::Program>,
    /// Its VDG.
    pub graph: Arc<Graph>,
    /// Context-insensitive solution.
    pub ci: Arc<CiResult>,
    /// Wall-clock time of the CI run.
    pub ci_time: Duration,
    /// Context-sensitive solution (default optimizations).
    pub cs: CsResult,
    /// Wall-clock time of the CS run.
    pub cs_time: Duration,
}

impl BenchData {
    fn from_output(out: engine::BenchOutput) -> BenchData {
        let cs = out
            .cs()
            .unwrap_or_else(|| panic!("{}: CS within budget", out.name))
            .clone();
        let cs_time = out.wall("cs").expect("cs solver ran");
        BenchData {
            cs,
            cs_time,
            ci_time: out.ci_wall,
            name: out.name,
            source: out.source,
            program: out.program,
            graph: out.graph,
            ci: out.ci,
        }
    }
}

/// An engine over the two paper solvers (CI + CS), which is all the
/// figure binaries consume.
fn paper_engine() -> Engine {
    Engine::new().specs(&[SolverSpec::ci(), SolverSpec::cs()])
}

/// Compiles, lowers, and runs both analyses on one benchmark.
///
/// # Panics
///
/// Panics if the benchmark fails any pipeline stage (the test suite
/// guarantees it does not).
pub fn prepare(b: &suite::Benchmark) -> BenchData {
    let jobs = vec![Job {
        name: b.name.to_string(),
        source: b.source.to_string(),
        input: b.input.to_vec(),
    }];
    let run = paper_engine().run(&jobs).expect("benchmark analyzes");
    run.benches
        .into_iter()
        .map(BenchData::from_output)
        .next()
        .expect("one job in, one result out")
}

/// Prepares every suite benchmark with one parallel engine invocation.
pub fn prepare_all() -> Vec<BenchData> {
    prepare_all_threads(0)
}

/// Like [`prepare_all`], with an explicit worker-thread count
/// (`0` = auto, `1` = serial baseline).
pub fn prepare_all_threads(threads: usize) -> Vec<BenchData> {
    paper_engine()
        .threads(threads)
        .run_suite()
        .expect("suite analyzes")
        .benches
        .into_iter()
        .map(BenchData::from_output)
        .collect()
}

/// One full-spectrum engine run over the whole suite: all five solvers,
/// per-stage metrics. The `report` binary renders this; tests diff its
/// fingerprint against a serial run.
pub fn suite_spectrum(threads: usize) -> EngineRun {
    Engine::new()
        .threads(threads)
        .run_suite()
        .expect("suite analyzes")
}

/// Like [`suite_spectrum`], but with difference propagation disabled in
/// every solver that has the knob (the PR 1 worklist discipline). Used
/// to measure what delta propagation buys.
pub fn suite_spectrum_naive(threads: usize) -> EngineRun {
    // The listed "ci" solver reuses the shared prepare-stage run, so
    // the discipline has to be set on the engine, not just the list.
    Engine::new()
        .specs(&SolverSpec::all_naive())
        .ci_spec(naive_ci())
        .threads(threads)
        .run(&Job::suite())
        .expect("suite analyzes")
}

fn naive_ci() -> SolverSpec {
    SolverSpec::ci().propagation(alias::Propagation::Naive)
}

/// The standard synthetic scaling sweep as engine jobs
/// (see [`suite::scaling`]).
pub fn scaling_jobs() -> Vec<Job> {
    suite::scaling::standard_suite(1)
        .into_iter()
        .map(|p| Job::new(p.name, p.source))
        .collect()
}

/// A full-spectrum engine run over the synthetic scaling sweep.
/// `naive` swaps in the PR 1 worklist discipline.
pub fn scaling_spectrum(threads: usize, naive: bool) -> EngineRun {
    let mut e = Engine::new().threads(threads);
    if naive {
        e = e.specs(&SolverSpec::all_naive()).ci_spec(naive_ci());
    }
    e.run(&scaling_jobs()).expect("scaling programs analyze")
}

/// One timed trial of the `--incremental` bench: a single-statement
/// edit on one scaling program, incremental re-analysis vs a
/// from-scratch solve of the edited sweep.
pub struct IncrementalTrial {
    /// Name of the edited scaling program.
    pub bench: String,
    /// Human-readable edit description.
    pub edit: String,
    /// Wall time of the from-scratch run over the edited sweep.
    pub fresh: Duration,
    /// Wall time of `Engine::analyze_incremental` over the same sweep.
    pub incremental: Duration,
    /// The CI solver's `SolveMode` string on the edited benchmark.
    pub mode: String,
    /// Whether every solution fingerprint matched the from-scratch run.
    pub matches: bool,
}

/// The `--incremental` campaign: timed single-edit trials over the
/// synthetic scaling sweep plus an optional edit-chain equivalence
/// sweep over the paper suite. Serialized to `BENCH_pr4.json`.
pub struct IncrementalReport {
    /// Requested worker-thread count (`0` = auto).
    pub threads: usize,
    /// The timed trials, in execution order.
    pub trials: Vec<IncrementalTrial>,
    /// Edit chains cross-checked (0 when `--chains` was not given).
    pub chains: usize,
    /// Total chain steps verified.
    pub chain_steps: usize,
    /// Chain steps whose solutions diverged from a from-scratch run.
    pub chain_mismatches: usize,
}

impl IncrementalReport {
    /// Median of the per-trial `fresh / incremental` wall-time ratios.
    pub fn median_speedup(&self) -> f64 {
        median(
            self.trials
                .iter()
                .map(|t| t.fresh.as_secs_f64() / t.incremental.as_secs_f64().max(1e-9)),
        )
    }

    /// Total fingerprint mismatches across trials and chain steps.
    pub fn mismatches(&self) -> usize {
        self.trials.iter().filter(|t| !t.matches).count() + self.chain_mismatches
    }

    /// Serializes the campaign to a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"threads\": {},\n  \"solver\": \"ci\",\n  \"median_speedup\": {:.2},\n  \
             \"median_fresh_ns\": {},\n  \"median_incremental_ns\": {},\n  \"trials\": [\n",
            self.threads,
            self.median_speedup(),
            median(self.trials.iter().map(|t| t.fresh.as_nanos() as f64)) as u128,
            median(self.trials.iter().map(|t| t.incremental.as_nanos() as f64)) as u128,
        ));
        for (i, t) in self.trials.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"bench\": \"{}\", \"edit\": \"{}\", \"fresh_ns\": {}, \
                 \"incremental_ns\": {}, \"speedup\": {:.2}, \"mode\": \"{}\", \
                 \"matches_fresh\": {}}}{}\n",
                t.bench,
                t.edit.replace('\\', "\\\\").replace('"', "\\\""),
                t.fresh.as_nanos(),
                t.incremental.as_nanos(),
                t.fresh.as_secs_f64() / t.incremental.as_secs_f64().max(1e-9),
                t.mode.replace('\\', "\\\\").replace('"', "\\\""),
                t.matches,
                if i + 1 < self.trials.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        if self.chains > 0 {
            out.push_str(&format!(
                "  \"chains\": {{\"count\": {}, \"steps\": {}, \"mismatches\": {}}}\n",
                self.chains, self.chain_steps, self.chain_mismatches
            ));
        } else {
            out.push_str("  \"chains\": null\n");
        }
        out.push_str("}\n");
        out
    }

    /// Human-readable campaign summary.
    pub fn summary(&self) -> String {
        let ms = |d: Duration| format!("{:.2}ms", d.as_secs_f64() * 1e3);
        let mut out = format!(
            "Incremental re-analysis bench: {} single-statement edits over the scaling sweep\n\
             \x20 median from-scratch     {}\n\
             \x20 median incremental      {}\n\
             \x20 median speedup          {:.1}x\n\
             \x20 fingerprint mismatches  {}\n",
            self.trials.len(),
            ms(Duration::from_nanos(
                median(self.trials.iter().map(|t| t.fresh.as_nanos() as f64)) as u64
            )),
            ms(Duration::from_nanos(median(
                self.trials.iter().map(|t| t.incremental.as_nanos() as f64)
            ) as u64)),
            self.median_speedup(),
            self.mismatches(),
        );
        if self.chains > 0 {
            out.push_str(&format!(
                "  edit chains             {} ({} steps, {} mismatches)\n",
                self.chains, self.chain_steps, self.chain_mismatches
            ));
        }
        out
    }
}

fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

/// A CI-only engine: the seeded-resume path is the solver with a
/// genuinely incremental algorithm, so the timing campaign isolates it.
fn ci_engine(threads: usize) -> Engine {
    Engine::new().threads(threads).specs(&[SolverSpec::ci()])
}

/// True when every solver's canonical solution fingerprint agrees
/// between an incremental run and a from-scratch one.
fn runs_equivalent(inc: &EngineRun, fresh: &EngineRun) -> bool {
    inc.benches.iter().zip(&fresh.benches).all(|(ib, fb)| {
        fb.solutions.iter().all(
            |fs| match (fs.solution.as_deref(), ib.solution(&fs.analysis)) {
                (Some(f), Some(i)) => {
                    solution_fingerprint(i, &ib.graph) == solution_fingerprint(f, &fb.graph)
                }
                (None, None) => true,
                _ => false,
            },
        )
    })
}

/// Runs `trials` timed trials: analyze the scaling sweep once, then per
/// trial apply one seeded single-statement edit (insert/delete/mutate —
/// the signature-changing edit kinds are skipped) to one program and
/// time `analyze_incremental_with` — against a cache primed from the
/// baseline, the once-per-chain priming cost excluded — versus a
/// from-scratch run of the edited sweep. Every trial's solutions are
/// fingerprint-checked.
pub fn incremental_scaling_trials(
    threads: usize,
    trials: usize,
    seed: u64,
) -> Vec<IncrementalTrial> {
    use suite::edit::{apply_random_edit, EditKind};
    let e = ci_engine(threads);
    let jobs = scaling_jobs();
    let prev = e.run(&jobs).expect("scaling baseline analyzes");
    let mut out = Vec::with_capacity(trials);
    let mut s = seed;
    for _ in 0..trials.max(1) * 64 {
        if out.len() >= trials {
            break;
        }
        let bi = out.len() % jobs.len();
        s = s.wrapping_add(1);
        let Some(step) = apply_random_edit(&jobs[bi].source, s) else {
            continue;
        };
        if !matches!(
            step.edit.kind,
            EditKind::InsertStmt | EditKind::DeleteStmt | EditKind::MutateExpr
        ) {
            continue;
        }
        let mut edited = jobs.clone();
        edited[bi].source = step.source.clone();
        // Prime the persistent cache outside the timer: absorbing a
        // previous run is the one-time cost of entering incremental
        // mode, paid once per edit chain, not once per edit.
        let mut cache = e.cache();
        cache.absorb(&prev);
        let t0 = Instant::now();
        let inc = e
            .analyze_incremental_with(&mut cache, &edited)
            .expect("incremental re-analysis succeeds");
        let incremental = t0.elapsed();
        let t1 = Instant::now();
        let fresh = e.run(&edited).expect("edited sweep analyzes");
        let fresh_wall = t1.elapsed();
        let matches = runs_equivalent(&inc, &fresh);
        let mode = inc.report.benchmarks[bi]
            .solvers
            .first()
            .and_then(|m| m.mode.clone())
            .unwrap_or_default();
        out.push(IncrementalTrial {
            bench: jobs[bi].name.clone(),
            edit: format!("{} [{}]", step.edit.description, step.edit.kind.name()),
            fresh: fresh_wall,
            incremental,
            mode,
            matches,
        });
    }
    assert!(
        out.len() >= trials.min(1),
        "the edit generator produced no single-statement edit"
    );
    out
}

/// Runs `chains` seeded edit chains over the paper suite (round-robin),
/// each threaded through one persistent `SummaryCache`; every step's
/// solutions are fingerprint-checked against a from-scratch run.
/// Returns `(steps verified, mismatches)`.
pub fn incremental_chain_check(threads: usize, chains: usize, seed: u64) -> (usize, usize) {
    let e = ci_engine(threads);
    let benches = suite::benchmarks();
    let (mut steps, mut mismatches) = (0usize, 0usize);
    for c in 0..chains {
        let b = &benches[c % benches.len()];
        let mut cache = e.cache();
        let base = vec![Job {
            name: b.name.to_string(),
            source: b.source.to_string(),
            input: b.input.to_vec(),
        }];
        e.analyze_incremental_with(&mut cache, &base)
            .expect("baseline analyzes");
        for step in suite::edit::edit_chain(b.source, seed.wrapping_add(c as u64), 3) {
            let jobs = vec![Job {
                name: b.name.to_string(),
                source: step.source.clone(),
                input: b.input.to_vec(),
            }];
            let inc = e
                .analyze_incremental_with(&mut cache, &jobs)
                .expect("incremental re-analysis succeeds");
            let fresh = e.run(&jobs).expect("edited program analyzes");
            steps += 1;
            if !runs_equivalent(&inc, &fresh) {
                mismatches += 1;
            }
        }
    }
    (steps, mismatches)
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:>w$}  "));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len() - 2));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:>w$}  "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_runs_one_benchmark() {
        let b = suite::by_name("span").unwrap();
        let d = prepare(&b);
        assert!(d.ci.total_pairs() > 0);
        assert!(d.cs.total_pairs() > 0);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["name", "n"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("long-name"));
    }
}
