//! # bench-harness — table and figure regeneration
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | binary     | reproduces                                            |
//! |------------|-------------------------------------------------------|
//! | `fig2`     | Figure 2 — program sizes                              |
//! | `fig3`     | Figure 3 — CI points-to pairs by output type          |
//! | `fig4`     | Figure 4 — locations accessed by indirect refs        |
//! | `fig6`     | Figure 6 — CS pairs, CI total, % spurious             |
//! | `fig7`     | Figure 7 — path × referent type distribution          |
//! | `headline` | §4.3 — CS vs CI at indirect memory references         |
//! | `cost`     | §4.2 — flow-in/flow-out counts and timing ratios      |
//! | `ablation` | strong updates / subsumption / CI-pruning ablations   |
//! | `report`   | one engine run: all five solvers, per-stage metrics   |
//!
//! Every binary drives the parallel [`engine`] instead of a hand-rolled
//! serial loop: benchmarks are compiled and lowered once, the solvers
//! fan out across cores, and the tables are rendered from the shared
//! results. Micro-benches (`cargo bench -p bench-harness`) time the
//! solvers themselves; see [`microbench`].

#![warn(missing_docs)]

pub mod microbench;

use alias::{CiResult, CsResult, SolverSpec};
use engine::{Engine, EngineRun, Job};
use std::sync::Arc;
use std::time::Duration;
use vdg::Graph;

/// Everything computed for one benchmark program.
///
/// `program`, `graph`, and `ci` are the engine's shared immutable
/// structures — clones of an `Arc`, not of the data.
pub struct BenchData {
    /// Benchmark name (Figure 2 order).
    pub name: String,
    /// mini-C source text.
    pub source: String,
    /// The checked program.
    pub program: Arc<cfront::Program>,
    /// Its VDG.
    pub graph: Arc<Graph>,
    /// Context-insensitive solution.
    pub ci: Arc<CiResult>,
    /// Wall-clock time of the CI run.
    pub ci_time: Duration,
    /// Context-sensitive solution (default optimizations).
    pub cs: CsResult,
    /// Wall-clock time of the CS run.
    pub cs_time: Duration,
}

impl BenchData {
    fn from_output(out: engine::BenchOutput) -> BenchData {
        let cs = out
            .cs()
            .unwrap_or_else(|| panic!("{}: CS within budget", out.name))
            .clone();
        let cs_time = out.wall("cs").expect("cs solver ran");
        BenchData {
            cs,
            cs_time,
            ci_time: out.ci_wall,
            name: out.name,
            source: out.source,
            program: out.program,
            graph: out.graph,
            ci: out.ci,
        }
    }
}

/// An engine over the two paper solvers (CI + CS), which is all the
/// figure binaries consume.
fn paper_engine() -> Engine {
    Engine::new().specs(&[SolverSpec::ci(), SolverSpec::cs()])
}

/// Compiles, lowers, and runs both analyses on one benchmark.
///
/// # Panics
///
/// Panics if the benchmark fails any pipeline stage (the test suite
/// guarantees it does not).
pub fn prepare(b: &suite::Benchmark) -> BenchData {
    let jobs = vec![Job {
        name: b.name.to_string(),
        source: b.source.to_string(),
    }];
    let run = paper_engine().run(&jobs).expect("benchmark analyzes");
    run.benches
        .into_iter()
        .map(BenchData::from_output)
        .next()
        .expect("one job in, one result out")
}

/// Prepares every suite benchmark with one parallel engine invocation.
pub fn prepare_all() -> Vec<BenchData> {
    prepare_all_threads(0)
}

/// Like [`prepare_all`], with an explicit worker-thread count
/// (`0` = auto, `1` = serial baseline).
pub fn prepare_all_threads(threads: usize) -> Vec<BenchData> {
    paper_engine()
        .threads(threads)
        .run_suite()
        .expect("suite analyzes")
        .benches
        .into_iter()
        .map(BenchData::from_output)
        .collect()
}

/// One full-spectrum engine run over the whole suite: all five solvers,
/// per-stage metrics. The `report` binary renders this; tests diff its
/// fingerprint against a serial run.
pub fn suite_spectrum(threads: usize) -> EngineRun {
    Engine::new()
        .threads(threads)
        .run_suite()
        .expect("suite analyzes")
}

/// Like [`suite_spectrum`], but with difference propagation disabled in
/// every solver that has the knob (the PR 1 worklist discipline). Used
/// to measure what delta propagation buys.
pub fn suite_spectrum_naive(threads: usize) -> EngineRun {
    // The listed "ci" solver reuses the shared prepare-stage run, so
    // the discipline has to be set on the engine, not just the list.
    Engine::new()
        .specs(&SolverSpec::all_naive())
        .ci_spec(naive_ci())
        .threads(threads)
        .run(&Job::suite())
        .expect("suite analyzes")
}

fn naive_ci() -> SolverSpec {
    SolverSpec::ci().propagation(alias::Propagation::Naive)
}

/// The standard synthetic scaling sweep as engine jobs
/// (see [`suite::scaling`]).
pub fn scaling_jobs() -> Vec<Job> {
    suite::scaling::standard_suite(1)
        .into_iter()
        .map(|p| Job {
            name: p.name,
            source: p.source,
        })
        .collect()
}

/// A full-spectrum engine run over the synthetic scaling sweep.
/// `naive` swaps in the PR 1 worklist discipline.
pub fn scaling_spectrum(threads: usize, naive: bool) -> EngineRun {
    let mut e = Engine::new().threads(threads);
    if naive {
        e = e.specs(&SolverSpec::all_naive()).ci_spec(naive_ci());
    }
    e.run(&scaling_jobs()).expect("scaling programs analyze")
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:>w$}  "));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len() - 2));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:>w$}  "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_runs_one_benchmark() {
        let b = suite::by_name("span").unwrap();
        let d = prepare(&b);
        assert!(d.ci.total_pairs() > 0);
        assert!(d.cs.total_pairs() > 0);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["name", "n"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("long-name"));
    }
}
