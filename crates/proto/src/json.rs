//! A minimal JSON value, parser, and writer.
//!
//! The workspace is dependency-free by design; every component so far
//! only *emits* JSON (hand-rolled in `engine::report` and the CLI), but
//! the daemon protocol needs to read it back. This module is the one
//! parser in the tree: a strict recursive-descent reader over a
//! [`Value`] tree plus a canonical writer, sized for protocol frames
//! and store files rather than arbitrary documents.
//!
//! Integers parse into `Int(i64)` when they fit and fall back to
//! `Float(f64)` otherwise. 64-bit fingerprints never ride as JSON
//! numbers — the protocol encodes them as fixed-width hex strings (see
//! [`crate::fp_hex`]) so no precision is lost in any client.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that fits `i64` exactly.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Insertion-ordered; duplicate keys are rejected by the
    /// parser.
    Obj(Vec<(String, Value)>),
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Nesting depth bound: protocol frames are shallow, and a bound turns
/// hostile input into a clean error instead of a stack overflow.
const MAX_DEPTH: usize = 128;

impl Value {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with the byte offset of the first
    /// malformed construct.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Renders the value as compact JSON (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    // JSON has no NaN/Inf; the writer degrades to null
                    // rather than emitting an unparsable token.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if this is a non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The integer payload as `usize`, if this is a non-negative `Int`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience optional-string constructor (`None` → `null`).
    pub fn opt_str(s: Option<&str>) -> Value {
        match s {
            Some(s) => Value::str(s),
            None => Value::Null,
        }
    }
}

fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "-42",
            "9223372036854775807",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
            "\"he\\\"llo\\n\\u00e9\"",
        ] {
            let v = Value::parse(src).unwrap();
            let again = Value::parse(&v.render()).unwrap();
            assert_eq!(v, again, "{src}");
        }
    }

    #[test]
    fn parses_engine_style_documents() {
        let doc = "{\n  \"threads\": 4,\n  \"benchmarks\": [\n    {\"name\": \"a b\", \
                   \"wall_ns\": 123456789, \"mode\": null}\n  ]\n}\n";
        let v = Value::parse(doc).unwrap();
        assert_eq!(v.get("threads").and_then(Value::as_i64), Some(4));
        let b = &v.get("benchmarks").unwrap().as_arr().unwrap()[0];
        assert_eq!(b.get("name").and_then(Value::as_str), Some("a b"));
        assert_eq!(b.get("mode"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for src in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\" 1}",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
        ] {
            assert!(Value::parse(src).is_err(), "should reject {src:?}");
        }
    }

    #[test]
    fn depth_limit_is_an_error_not_a_crash() {
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Value::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn big_u64_style_numbers_fall_back_to_float() {
        // Fingerprints never travel as numbers (hex strings instead),
        // but the parser must not reject or mangle-and-lie about them.
        let v = Value::parse("18446744073709551615").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }
}
