//! # proto — the typed request/response API of the analysis service
//!
//! One schema, two transports. Every analysis entry point — the
//! `ruf95` CLI subcommands, the in-process [`Service`] dispatcher in
//! `crates/serve`, and the `ruf95 serve` TCP daemon — speaks the same
//! [`Request`]/[`Response`] enums. The CLI constructs a `Request`
//! whether or not a daemon is involved; with `--connect` the request
//! rides a socket, without it the same value dispatches in process.
//!
//! ```text
//!   CLI flags ──▶ Request ──▶ { in-process Service | TCP daemon } ──▶ Response
//!                    │                                                  │
//!                    └────────── newline-delimited JSON frames ─────────┘
//! ```
//!
//! ## Wire format
//!
//! One frame = one JSON object on one line, terminated by `\n`. Every
//! request carries `"v": 2` (the protocol version); a server rejects
//! frames with any other version rather than guessing. 64-bit
//! fingerprints are encoded as 16-digit lowercase hex *strings*
//! ([`fp_hex`]/[`parse_fp_hex`]) so no JSON consumer ever loses
//! precision to a float mantissa. Interpreter input bytes ride as hex
//! strings for the same reason.
//!
//! [`Service`]: https://docs.rs/serve

#![warn(missing_docs)]

pub mod json;

use json::Value;
use std::fmt;
use std::io::{BufRead, Write};

/// Protocol version carried in every request frame. `v2` accompanied
/// the unified per-solver summary vocabulary: frames and stores written
/// under `v1` (CI-only summaries) are rejected rather than half-read.
pub const VERSION: i64 = 2;

/// Renders a 64-bit fingerprint as fixed-width lowercase hex.
pub fn fp_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses a [`fp_hex`]-encoded fingerprint.
pub fn parse_fp_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Renders bytes as lowercase hex.
pub fn bytes_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parses [`bytes_hex`]-encoded bytes.
pub fn parse_bytes_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

/// A malformed or version-mismatched frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn de(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

fn need_str(v: &Value, key: &str) -> Result<String, DecodeError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| de(format!("missing string field `{key}`")))
}

fn opt_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_string)
}

fn get_bool(v: &Value, key: &str) -> bool {
    v.get(key).and_then(Value::as_bool).unwrap_or(false)
}

/// One program for the service to analyze — the protocol twin of
/// `engine::Job`. Jobs are always explicit (full source text) so the
/// protocol is self-contained: a client resolves `bench:NAME` and
/// `--suite` shorthands before sending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Display name (benchmark name or file path).
    pub name: String,
    /// mini-C source text.
    pub source: String,
    /// Bytes served to `getchar()` by the checker oracle.
    pub input: Vec<u8>,
}

impl JobSpec {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".into(), Value::str(&self.name)),
            ("source".into(), Value::str(&self.source)),
            ("input".into(), Value::str(bytes_hex(&self.input))),
        ])
    }

    fn from_value(v: &Value) -> Result<JobSpec, DecodeError> {
        Ok(JobSpec {
            name: need_str(v, "name")?,
            source: need_str(v, "source")?,
            input: match v.get("input").and_then(Value::as_str) {
                Some(h) => parse_bytes_hex(h).ok_or_else(|| de("invalid `input` hex"))?,
                None => Vec::new(),
            },
        })
    }
}

/// A demand query against a previously analyzed benchmark. Sites are
/// indices into the benchmark's indirect-memory-op list (the §4.3
/// comparison sites), the granularity every solver answers at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKind {
    /// May the location inputs of sites `a` and `b` reference a common
    /// base-location under the chosen solver?
    MayAlias {
        /// First site index.
        a: usize,
        /// Second site index.
        b: usize,
    },
    /// The referent set at one site.
    ReferentsAt {
        /// Site index.
        site: usize,
    },
}

/// A request to the analysis service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Analyze `jobs` inside the named project's session, reusing the
    /// session's summary cache (and the disk store, if configured).
    Analyze {
        /// Project (session) name; independent projects are isolated.
        project: String,
        /// Programs to analyze.
        jobs: Vec<JobSpec>,
        /// Bypass every cache tier and solve from scratch, without
        /// touching the session. Used for cross-checks.
        fresh: bool,
        /// Attach the full `EngineReport` JSON to the response.
        want_report: bool,
    },
    /// Analyze and run the six memory-safety checkers with oracle
    /// labels.
    Check {
        /// Project (session) name.
        project: String,
        /// Programs to check.
        jobs: Vec<JobSpec>,
        /// Solver whose diagnostics are rendered in the response (all
        /// five are checked and counted regardless).
        analysis: String,
        /// Attach the full `EngineReport` JSON to the response.
        want_report: bool,
    },
    /// A demand query against a benchmark analyzed earlier in this
    /// project (or restorable from its disk store).
    Query {
        /// Project (session) name.
        project: String,
        /// Benchmark name within the project.
        bench: String,
        /// Solver to answer from (`ci`, `cs`, `weihl`, `steensgaard`,
        /// `k1`).
        analysis: String,
        /// The question.
        query: QueryKind,
        /// Program source for the benchmark, letting the service answer
        /// demand-driven without a prior `Analyze` (and without a disk
        /// store). Ignored when the session already holds the bench.
        job: Option<JobSpec>,
    },
    /// Service statistics: sessions, memory, request counts, uptime.
    Stats,
    /// Evict the named project's session from memory (`None` = all).
    /// Disk-store entries survive eviction.
    Evict {
        /// Project to evict, or every project when `None`.
        project: Option<String>,
    },
    /// Flush and stop the daemon.
    Shutdown,
}

impl Request {
    /// The wire name of this request's `"type"` tag.
    pub fn type_name(&self) -> &'static str {
        match self {
            Request::Analyze { .. } => "analyze",
            Request::Check { .. } => "check",
            Request::Query { .. } => "query",
            Request::Stats => "stats",
            Request::Evict { .. } => "evict",
            Request::Shutdown => "shutdown",
        }
    }

    /// Encodes the request as a JSON value (with the version tag).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("v".into(), Value::Int(VERSION)),
            ("type".into(), Value::str(self.type_name())),
        ];
        match self {
            Request::Analyze {
                project,
                jobs,
                fresh,
                want_report,
            } => {
                fields.push(("project".into(), Value::str(project)));
                fields.push((
                    "jobs".into(),
                    Value::Arr(jobs.iter().map(JobSpec::to_value).collect()),
                ));
                fields.push(("fresh".into(), Value::Bool(*fresh)));
                fields.push(("want_report".into(), Value::Bool(*want_report)));
            }
            Request::Check {
                project,
                jobs,
                analysis,
                want_report,
            } => {
                fields.push(("project".into(), Value::str(project)));
                fields.push((
                    "jobs".into(),
                    Value::Arr(jobs.iter().map(JobSpec::to_value).collect()),
                ));
                fields.push(("analysis".into(), Value::str(analysis)));
                fields.push(("want_report".into(), Value::Bool(*want_report)));
            }
            Request::Query {
                project,
                bench,
                analysis,
                query,
                job,
            } => {
                fields.push(("project".into(), Value::str(project)));
                fields.push(("bench".into(), Value::str(bench)));
                fields.push(("analysis".into(), Value::str(analysis)));
                if let Some(job) = job {
                    fields.push(("job".into(), job.to_value()));
                }
                let q = match query {
                    QueryKind::MayAlias { a, b } => Value::Obj(vec![
                        ("kind".into(), Value::str("may_alias")),
                        ("a".into(), Value::Int(*a as i64)),
                        ("b".into(), Value::Int(*b as i64)),
                    ]),
                    QueryKind::ReferentsAt { site } => Value::Obj(vec![
                        ("kind".into(), Value::str("referents_at")),
                        ("site".into(), Value::Int(*site as i64)),
                    ]),
                };
                fields.push(("query".into(), q));
            }
            Request::Stats | Request::Shutdown => {}
            Request::Evict { project } => {
                fields.push(("project".into(), Value::opt_str(project.as_deref())));
            }
        }
        Value::Obj(fields)
    }

    /// Decodes a request from a JSON value, checking the version tag.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed frames or a version
    /// mismatch.
    pub fn from_value(v: &Value) -> Result<Request, DecodeError> {
        match v.get("v").and_then(Value::as_i64) {
            Some(VERSION) => {}
            Some(other) => return Err(de(format!("unsupported protocol version {other}"))),
            None => return Err(de("missing protocol version `v`")),
        }
        let jobs = |v: &Value| -> Result<Vec<JobSpec>, DecodeError> {
            v.get("jobs")
                .and_then(Value::as_arr)
                .ok_or_else(|| de("missing `jobs` array"))?
                .iter()
                .map(JobSpec::from_value)
                .collect()
        };
        match v.get("type").and_then(Value::as_str) {
            Some("analyze") => Ok(Request::Analyze {
                project: need_str(v, "project")?,
                jobs: jobs(v)?,
                fresh: get_bool(v, "fresh"),
                want_report: get_bool(v, "want_report"),
            }),
            Some("check") => Ok(Request::Check {
                project: need_str(v, "project")?,
                jobs: jobs(v)?,
                analysis: opt_str(v, "analysis").unwrap_or_else(|| "ci".into()),
                want_report: get_bool(v, "want_report"),
            }),
            Some("query") => {
                let q = v.get("query").ok_or_else(|| de("missing `query`"))?;
                let idx = |key: &str| -> Result<usize, DecodeError> {
                    q.get(key)
                        .and_then(Value::as_usize)
                        .ok_or_else(|| de(format!("missing site index `{key}`")))
                };
                let query = match q.get("kind").and_then(Value::as_str) {
                    Some("may_alias") => QueryKind::MayAlias {
                        a: idx("a")?,
                        b: idx("b")?,
                    },
                    Some("referents_at") => QueryKind::ReferentsAt { site: idx("site")? },
                    other => return Err(de(format!("unknown query kind {other:?}"))),
                };
                Ok(Request::Query {
                    project: need_str(v, "project")?,
                    bench: need_str(v, "bench")?,
                    analysis: opt_str(v, "analysis").unwrap_or_else(|| "ci".into()),
                    query,
                    job: match v.get("job") {
                        Some(Value::Null) | None => None,
                        Some(j) => Some(JobSpec::from_value(j)?),
                    },
                })
            }
            Some("stats") => Ok(Request::Stats),
            Some("evict") => Ok(Request::Evict {
                project: opt_str(v, "project"),
            }),
            Some("shutdown") => Ok(Request::Shutdown),
            other => Err(de(format!("unknown request type {other:?}"))),
        }
    }
}

/// One solver's fingerprint row inside an [`Response::Analyzed`] bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverFp {
    /// Solver name.
    pub analysis: String,
    /// Canonical solution fingerprint (`alias::solver::solution_fingerprint`),
    /// hex; `None` when the solve failed.
    pub fp: Option<String>,
    /// How the solution was obtained (`replayed`, `seeded(..)`,
    /// `fresh(..)`), when the run was incremental.
    pub mode: Option<String>,
    /// Total points-to pairs, for pair-based solvers.
    pub pairs: Option<u64>,
}

/// Per-benchmark fingerprints inside an [`Response::Analyzed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchFps {
    /// Benchmark name.
    pub name: String,
    /// FNV-64 of the source text, hex.
    pub source_fp: String,
    /// VDG content fingerprint, hex.
    pub graph_fp: String,
    /// One row per solver, in engine solver order.
    pub solvers: Vec<SolverFp>,
}

/// Cache-effectiveness counters attached to an [`Response::Analyzed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeInfo {
    /// Wall time the service spent handling the request, microseconds.
    pub latency_us: u64,
    /// Benchmarks replayed verbatim from the session cache.
    pub benches_replayed: u64,
    /// Benchmarks re-solved from a seeded dirty cone.
    pub benches_seeded: u64,
    /// Benchmarks solved from scratch.
    pub benches_fresh: u64,
    /// Individual solver solutions replayed from cache.
    pub solutions_replayed: u64,
    /// Function summaries reused as CI resume seeds.
    pub funcs_reused: u64,
    /// Functions re-fingerprinted as dirty.
    pub funcs_dirty: u64,
    /// Whether this request warm-started the session from the disk
    /// store.
    pub restored: bool,
    /// Queries answered from the demand-solved region (no exhaustive
    /// fixpoint).
    pub demand_hits: u64,
    /// Queries answered from the exhaustive fallback solution.
    pub demand_fallbacks: u64,
    /// Demand queries that exhausted a slice or step budget.
    pub demand_budget_exhausted: u64,
    /// Microseconds spent restoring this session from the disk store
    /// (load plus lazy per-bench decode), cumulative.
    pub restore_us: u64,
}

impl ServeInfo {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("latency_us".into(), Value::Int(self.latency_us as i64)),
            (
                "benches_replayed".into(),
                Value::Int(self.benches_replayed as i64),
            ),
            (
                "benches_seeded".into(),
                Value::Int(self.benches_seeded as i64),
            ),
            (
                "benches_fresh".into(),
                Value::Int(self.benches_fresh as i64),
            ),
            (
                "solutions_replayed".into(),
                Value::Int(self.solutions_replayed as i64),
            ),
            ("funcs_reused".into(), Value::Int(self.funcs_reused as i64)),
            ("funcs_dirty".into(), Value::Int(self.funcs_dirty as i64)),
            ("restored".into(), Value::Bool(self.restored)),
            ("demand_hits".into(), Value::Int(self.demand_hits as i64)),
            (
                "demand_fallbacks".into(),
                Value::Int(self.demand_fallbacks as i64),
            ),
            (
                "demand_budget_exhausted".into(),
                Value::Int(self.demand_budget_exhausted as i64),
            ),
            ("restore_us".into(), Value::Int(self.restore_us as i64)),
        ])
    }

    fn from_value(v: &Value) -> ServeInfo {
        let n = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
        ServeInfo {
            latency_us: n("latency_us"),
            benches_replayed: n("benches_replayed"),
            benches_seeded: n("benches_seeded"),
            benches_fresh: n("benches_fresh"),
            solutions_replayed: n("solutions_replayed"),
            funcs_reused: n("funcs_reused"),
            funcs_dirty: n("funcs_dirty"),
            restored: get_bool(v, "restored"),
            demand_hits: n("demand_hits"),
            demand_fallbacks: n("demand_fallbacks"),
            demand_budget_exhausted: n("demand_budget_exhausted"),
            restore_us: n("restore_us"),
        }
    }
}

/// One solver's oracle-labeled checker counts inside a
/// [`BenchCheckInfo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverCheck {
    /// Solver name.
    pub analysis: String,
    /// Diagnostics per checker kind, in `checker::CheckKind::all()`
    /// order.
    pub diags: Vec<u64>,
    /// Oracle-confirmed diagnostics.
    pub true_positives: u64,
    /// Diagnostics whose site executed without the defect.
    pub false_positives: u64,
    /// Diagnostics at sites the oracle never reached.
    pub unreachable: u64,
    /// Whether the oracle trapped a fault no diagnostic predicted.
    pub refuted: bool,
}

/// One benchmark's check results inside a [`Response::Checked`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCheckInfo {
    /// Benchmark name.
    pub name: String,
    /// The paper-style per-checker precision table, pre-rendered.
    pub table: String,
    /// Caret-rendered diagnostics for the requested solver.
    pub rendered: String,
    /// Machine-readable diagnostics for the requested solver (the
    /// `ruf95 check --json` array).
    pub diags: Value,
    /// Per-solver labeled counts.
    pub solvers: Vec<SolverCheck>,
}

/// A site inside a query answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteInfo {
    /// Index into the benchmark's indirect-memory-op list.
    pub index: usize,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// `"read"` or `"write"`.
    pub kind: String,
}

impl SiteInfo {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("index".into(), Value::Int(self.index as i64)),
            ("line".into(), Value::Int(self.line as i64)),
            ("col".into(), Value::Int(self.col as i64)),
            ("kind".into(), Value::str(&self.kind)),
        ])
    }

    fn from_value(v: &Value) -> Result<SiteInfo, DecodeError> {
        Ok(SiteInfo {
            index: v
                .get("index")
                .and_then(Value::as_usize)
                .ok_or_else(|| de("missing site `index`"))?,
            line: v.get("line").and_then(Value::as_u64).unwrap_or(0) as u32,
            col: v.get("col").and_then(Value::as_u64).unwrap_or(0) as u32,
            kind: opt_str(v, "kind").unwrap_or_default(),
        })
    }
}

/// The payload of a [`Response::QueryResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// Answer to [`QueryKind::MayAlias`].
    MayAlias {
        /// Whether the two sites' referent base sets intersect.
        may_alias: bool,
        /// Stable keys of the common bases (the alias witnesses).
        witnesses: Vec<String>,
        /// First site.
        a: SiteInfo,
        /// Second site.
        b: SiteInfo,
    },
    /// Answer to [`QueryKind::ReferentsAt`].
    Referents {
        /// The queried site.
        site: SiteInfo,
        /// Rendered referents (path-granular when the solver has paths,
        /// stable base keys otherwise), sorted.
        referents: Vec<String>,
    },
}

/// Per-project statistics inside a [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectStats {
    /// Project name.
    pub name: String,
    /// Benchmarks held in the in-memory session.
    pub benches: u64,
    /// Estimated session memory, bytes.
    pub approx_bytes: u64,
    /// Milliseconds since the session last served a request.
    pub idle_ms: u64,
    /// Queries answered from the session's demand-solved regions.
    pub demand_hits: u64,
    /// Queries answered from exhaustive fallback solutions.
    pub demand_fallbacks: u64,
    /// Microseconds spent restoring the session from the disk store.
    pub restore_us: u64,
}

/// A response from the analysis service.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result of [`Request::Analyze`].
    Analyzed {
        /// Project the request ran under.
        project: String,
        /// Per-benchmark fingerprints.
        benches: Vec<BenchFps>,
        /// FNV-64 of the canonical (timing-free) report, hex — the
        /// restart-replay equality currency.
        report_fp: String,
        /// Full `EngineReport` JSON, when requested.
        report: Option<Value>,
        /// Cache-effectiveness counters for this request.
        serve: ServeInfo,
    },
    /// Result of [`Request::Check`].
    Checked {
        /// Project the request ran under.
        project: String,
        /// Per-benchmark check results.
        benches: Vec<BenchCheckInfo>,
        /// FNV-64 over every benchmark's per-solver diagnostics, hex.
        check_fp: String,
        /// First false-positive monotonicity violation, if any.
        monotone_violation: Option<String>,
        /// Benchmarks with an oracle-refuted diagnostic.
        refuted: Vec<String>,
        /// Full `EngineReport` JSON (with check rows), when requested.
        report: Option<Value>,
    },
    /// Result of [`Request::Query`].
    QueryResult {
        /// Benchmark queried.
        bench: String,
        /// Solver that answered.
        analysis: String,
        /// The answer.
        answer: QueryAnswer,
        /// Whether the demand-driven path answered (no exhaustive
        /// fixpoint ran for this query).
        demand: bool,
    },
    /// Result of [`Request::Stats`].
    Stats {
        /// Milliseconds since the service started.
        uptime_ms: u64,
        /// Requests handled, by type name.
        requests: Vec<(String, u64)>,
        /// Sessions evicted under the memory budget.
        evictions: u64,
        /// Session memory budget, bytes (0 = unlimited).
        mem_budget: u64,
        /// Per-project session statistics.
        projects: Vec<ProjectStats>,
    },
    /// Generic success (eviction).
    Ok,
    /// The daemon acknowledged [`Request::Shutdown`] and is exiting.
    ShuttingDown,
    /// The request failed; the message is the complete rendering.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Encodes the response as a JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Analyzed {
                project,
                benches,
                report_fp,
                report,
                serve,
            } => Value::Obj(vec![
                ("type".into(), Value::str("analyzed")),
                ("project".into(), Value::str(project)),
                (
                    "benches".into(),
                    Value::Arr(
                        benches
                            .iter()
                            .map(|b| {
                                Value::Obj(vec![
                                    ("name".into(), Value::str(&b.name)),
                                    ("source_fp".into(), Value::str(&b.source_fp)),
                                    ("graph_fp".into(), Value::str(&b.graph_fp)),
                                    (
                                        "solvers".into(),
                                        Value::Arr(
                                            b.solvers
                                                .iter()
                                                .map(|s| {
                                                    Value::Obj(vec![
                                                        (
                                                            "analysis".into(),
                                                            Value::str(&s.analysis),
                                                        ),
                                                        (
                                                            "fp".into(),
                                                            Value::opt_str(s.fp.as_deref()),
                                                        ),
                                                        (
                                                            "mode".into(),
                                                            Value::opt_str(s.mode.as_deref()),
                                                        ),
                                                        (
                                                            "pairs".into(),
                                                            match s.pairs {
                                                                Some(p) => Value::Int(p as i64),
                                                                None => Value::Null,
                                                            },
                                                        ),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("report_fp".into(), Value::str(report_fp)),
                ("report".into(), report.clone().unwrap_or(Value::Null)),
                ("serve".into(), serve.to_value()),
            ]),
            Response::Checked {
                project,
                benches,
                check_fp,
                monotone_violation,
                refuted,
                report,
            } => Value::Obj(vec![
                ("type".into(), Value::str("checked")),
                ("project".into(), Value::str(project)),
                (
                    "benches".into(),
                    Value::Arr(
                        benches
                            .iter()
                            .map(|b| {
                                Value::Obj(vec![
                                    ("name".into(), Value::str(&b.name)),
                                    ("table".into(), Value::str(&b.table)),
                                    ("rendered".into(), Value::str(&b.rendered)),
                                    ("diags".into(), b.diags.clone()),
                                    (
                                        "solvers".into(),
                                        Value::Arr(
                                            b.solvers
                                                .iter()
                                                .map(|s| {
                                                    Value::Obj(vec![
                                                        (
                                                            "analysis".into(),
                                                            Value::str(&s.analysis),
                                                        ),
                                                        (
                                                            "diags".into(),
                                                            Value::Arr(
                                                                s.diags
                                                                    .iter()
                                                                    .map(|&d| Value::Int(d as i64))
                                                                    .collect(),
                                                            ),
                                                        ),
                                                        (
                                                            "true_positives".into(),
                                                            Value::Int(s.true_positives as i64),
                                                        ),
                                                        (
                                                            "false_positives".into(),
                                                            Value::Int(s.false_positives as i64),
                                                        ),
                                                        (
                                                            "unreachable".into(),
                                                            Value::Int(s.unreachable as i64),
                                                        ),
                                                        ("refuted".into(), Value::Bool(s.refuted)),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("check_fp".into(), Value::str(check_fp)),
                (
                    "monotone_violation".into(),
                    Value::opt_str(monotone_violation.as_deref()),
                ),
                (
                    "refuted".into(),
                    Value::Arr(refuted.iter().map(Value::str).collect()),
                ),
                ("report".into(), report.clone().unwrap_or(Value::Null)),
            ]),
            Response::QueryResult {
                bench,
                analysis,
                answer,
                demand,
            } => {
                let ans = match answer {
                    QueryAnswer::MayAlias {
                        may_alias,
                        witnesses,
                        a,
                        b,
                    } => Value::Obj(vec![
                        ("kind".into(), Value::str("may_alias")),
                        ("may_alias".into(), Value::Bool(*may_alias)),
                        (
                            "witnesses".into(),
                            Value::Arr(witnesses.iter().map(Value::str).collect()),
                        ),
                        ("a".into(), a.to_value()),
                        ("b".into(), b.to_value()),
                    ]),
                    QueryAnswer::Referents { site, referents } => Value::Obj(vec![
                        ("kind".into(), Value::str("referents_at")),
                        ("site".into(), site.to_value()),
                        (
                            "referents".into(),
                            Value::Arr(referents.iter().map(Value::str).collect()),
                        ),
                    ]),
                };
                Value::Obj(vec![
                    ("type".into(), Value::str("query_result")),
                    ("bench".into(), Value::str(bench)),
                    ("analysis".into(), Value::str(analysis)),
                    ("answer".into(), ans),
                    ("demand".into(), Value::Bool(*demand)),
                ])
            }
            Response::Stats {
                uptime_ms,
                requests,
                evictions,
                mem_budget,
                projects,
            } => Value::Obj(vec![
                ("type".into(), Value::str("stats")),
                ("uptime_ms".into(), Value::Int(*uptime_ms as i64)),
                (
                    "requests".into(),
                    Value::Obj(
                        requests
                            .iter()
                            .map(|(k, n)| (k.clone(), Value::Int(*n as i64)))
                            .collect(),
                    ),
                ),
                ("evictions".into(), Value::Int(*evictions as i64)),
                ("mem_budget".into(), Value::Int(*mem_budget as i64)),
                (
                    "projects".into(),
                    Value::Arr(
                        projects
                            .iter()
                            .map(|p| {
                                Value::Obj(vec![
                                    ("name".into(), Value::str(&p.name)),
                                    ("benches".into(), Value::Int(p.benches as i64)),
                                    ("approx_bytes".into(), Value::Int(p.approx_bytes as i64)),
                                    ("idle_ms".into(), Value::Int(p.idle_ms as i64)),
                                    ("demand_hits".into(), Value::Int(p.demand_hits as i64)),
                                    (
                                        "demand_fallbacks".into(),
                                        Value::Int(p.demand_fallbacks as i64),
                                    ),
                                    ("restore_us".into(), Value::Int(p.restore_us as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Ok => Value::Obj(vec![("type".into(), Value::str("ok"))]),
            Response::ShuttingDown => {
                Value::Obj(vec![("type".into(), Value::str("shutting_down"))])
            }
            Response::Error { message } => Value::Obj(vec![
                ("type".into(), Value::str("error")),
                ("message".into(), Value::str(message)),
            ]),
        }
    }

    /// Decodes a response from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed frames.
    pub fn from_value(v: &Value) -> Result<Response, DecodeError> {
        match v.get("type").and_then(Value::as_str) {
            Some("analyzed") => {
                let benches = v
                    .get("benches")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| de("missing `benches`"))?
                    .iter()
                    .map(|b| {
                        Ok(BenchFps {
                            name: need_str(b, "name")?,
                            source_fp: need_str(b, "source_fp")?,
                            graph_fp: need_str(b, "graph_fp")?,
                            solvers: b
                                .get("solvers")
                                .and_then(Value::as_arr)
                                .unwrap_or(&[])
                                .iter()
                                .map(|s| {
                                    Ok(SolverFp {
                                        analysis: need_str(s, "analysis")?,
                                        fp: opt_str(s, "fp"),
                                        mode: opt_str(s, "mode"),
                                        pairs: s.get("pairs").and_then(Value::as_u64),
                                    })
                                })
                                .collect::<Result<_, DecodeError>>()?,
                        })
                    })
                    .collect::<Result<_, DecodeError>>()?;
                Ok(Response::Analyzed {
                    project: need_str(v, "project")?,
                    benches,
                    report_fp: need_str(v, "report_fp")?,
                    report: match v.get("report") {
                        None | Some(Value::Null) => None,
                        Some(r) => Some(r.clone()),
                    },
                    serve: v
                        .get("serve")
                        .map(ServeInfo::from_value)
                        .unwrap_or_default(),
                })
            }
            Some("checked") => {
                let benches = v
                    .get("benches")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| de("missing `benches`"))?
                    .iter()
                    .map(|b| {
                        Ok(BenchCheckInfo {
                            name: need_str(b, "name")?,
                            table: opt_str(b, "table").unwrap_or_default(),
                            rendered: opt_str(b, "rendered").unwrap_or_default(),
                            diags: b.get("diags").cloned().unwrap_or(Value::Arr(Vec::new())),
                            solvers: b
                                .get("solvers")
                                .and_then(Value::as_arr)
                                .unwrap_or(&[])
                                .iter()
                                .map(|s| {
                                    let n = |k: &str| s.get(k).and_then(Value::as_u64).unwrap_or(0);
                                    Ok(SolverCheck {
                                        analysis: need_str(s, "analysis")?,
                                        diags: s
                                            .get("diags")
                                            .and_then(Value::as_arr)
                                            .unwrap_or(&[])
                                            .iter()
                                            .filter_map(Value::as_u64)
                                            .collect(),
                                        true_positives: n("true_positives"),
                                        false_positives: n("false_positives"),
                                        unreachable: n("unreachable"),
                                        refuted: get_bool(s, "refuted"),
                                    })
                                })
                                .collect::<Result<_, DecodeError>>()?,
                        })
                    })
                    .collect::<Result<_, DecodeError>>()?;
                Ok(Response::Checked {
                    project: need_str(v, "project")?,
                    benches,
                    check_fp: need_str(v, "check_fp")?,
                    monotone_violation: opt_str(v, "monotone_violation"),
                    refuted: v
                        .get("refuted")
                        .and_then(Value::as_arr)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|s| s.as_str().map(str::to_string))
                        .collect(),
                    report: match v.get("report") {
                        None | Some(Value::Null) => None,
                        Some(r) => Some(r.clone()),
                    },
                })
            }
            Some("query_result") => {
                let ans = v.get("answer").ok_or_else(|| de("missing `answer`"))?;
                let strs = |key: &str| -> Vec<String> {
                    ans.get(key)
                        .and_then(Value::as_arr)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|s| s.as_str().map(str::to_string))
                        .collect()
                };
                let answer = match ans.get("kind").and_then(Value::as_str) {
                    Some("may_alias") => QueryAnswer::MayAlias {
                        may_alias: get_bool(ans, "may_alias"),
                        witnesses: strs("witnesses"),
                        a: SiteInfo::from_value(
                            ans.get("a").ok_or_else(|| de("missing site `a`"))?,
                        )?,
                        b: SiteInfo::from_value(
                            ans.get("b").ok_or_else(|| de("missing site `b`"))?,
                        )?,
                    },
                    Some("referents_at") => QueryAnswer::Referents {
                        site: SiteInfo::from_value(
                            ans.get("site").ok_or_else(|| de("missing `site`"))?,
                        )?,
                        referents: strs("referents"),
                    },
                    other => return Err(de(format!("unknown answer kind {other:?}"))),
                };
                Ok(Response::QueryResult {
                    bench: need_str(v, "bench")?,
                    analysis: need_str(v, "analysis")?,
                    answer,
                    demand: get_bool(v, "demand"),
                })
            }
            Some("stats") => Ok(Response::Stats {
                uptime_ms: v.get("uptime_ms").and_then(Value::as_u64).unwrap_or(0),
                requests: v
                    .get("requests")
                    .and_then(Value::as_obj)
                    .unwrap_or(&[])
                    .iter()
                    .map(|(k, n)| (k.clone(), n.as_u64().unwrap_or(0)))
                    .collect(),
                evictions: v.get("evictions").and_then(Value::as_u64).unwrap_or(0),
                mem_budget: v.get("mem_budget").and_then(Value::as_u64).unwrap_or(0),
                projects: v
                    .get("projects")
                    .and_then(Value::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|p| {
                        Ok(ProjectStats {
                            name: need_str(p, "name")?,
                            benches: p.get("benches").and_then(Value::as_u64).unwrap_or(0),
                            approx_bytes: p
                                .get("approx_bytes")
                                .and_then(Value::as_u64)
                                .unwrap_or(0),
                            idle_ms: p.get("idle_ms").and_then(Value::as_u64).unwrap_or(0),
                            demand_hits: p.get("demand_hits").and_then(Value::as_u64).unwrap_or(0),
                            demand_fallbacks: p
                                .get("demand_fallbacks")
                                .and_then(Value::as_u64)
                                .unwrap_or(0),
                            restore_us: p.get("restore_us").and_then(Value::as_u64).unwrap_or(0),
                        })
                    })
                    .collect::<Result<_, DecodeError>>()?,
            }),
            Some("ok") => Ok(Response::Ok),
            Some("shutting_down") => Ok(Response::ShuttingDown),
            Some("error") => Ok(Response::Error {
                message: need_str(v, "message")?,
            }),
            other => Err(de(format!("unknown response type {other:?}"))),
        }
    }
}

/// Writes one newline-delimited frame and flushes.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, v: &Value) -> std::io::Result<()> {
    let mut line = v.render();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one newline-delimited frame; `Ok(None)` on a clean EOF.
///
/// # Errors
///
/// An I/O error, or `InvalidData` when the line is not valid JSON.
pub fn read_frame<R: BufRead>(r: &mut R) -> std::io::Result<Option<Value>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        return Value::parse(line.trim_end_matches(['\n', '\r']))
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(r: Request) {
        let v = r.to_value();
        let text = v.render();
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(Request::from_value(&parsed).unwrap(), r, "{text}");
    }

    fn round_trip_response(r: Response) {
        let v = r.to_value();
        let text = v.render();
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(Response::from_value(&parsed).unwrap(), r, "{text}");
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Analyze {
            project: "default".into(),
            jobs: vec![JobSpec {
                name: "t".into(),
                source: "int main(void) { return 0; }".into(),
                input: vec![0, 1, 255],
            }],
            fresh: true,
            want_report: true,
        });
        round_trip_request(Request::Check {
            project: "p".into(),
            jobs: vec![],
            analysis: "cs".into(),
            want_report: false,
        });
        round_trip_request(Request::Query {
            project: "p".into(),
            bench: "span".into(),
            analysis: "ci".into(),
            query: QueryKind::MayAlias { a: 0, b: 3 },
            job: None,
        });
        round_trip_request(Request::Query {
            project: "p".into(),
            bench: "span".into(),
            analysis: "k1".into(),
            query: QueryKind::ReferentsAt { site: 7 },
            job: Some(JobSpec {
                name: "span".into(),
                source: "int main(void) { return 0; }".into(),
                input: vec![2],
            }),
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Evict {
            project: Some("p".into()),
        });
        round_trip_request(Request::Evict { project: None });
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::Analyzed {
            project: "p".into(),
            benches: vec![BenchFps {
                name: "span".into(),
                source_fp: fp_hex(1),
                graph_fp: fp_hex(u64::MAX),
                solvers: vec![SolverFp {
                    analysis: "ci".into(),
                    fp: Some(fp_hex(42)),
                    mode: Some("replayed".into()),
                    pairs: Some(1234),
                }],
            }],
            report_fp: fp_hex(7),
            report: Some(Value::parse("{\"threads\":1}").unwrap()),
            serve: ServeInfo {
                latency_us: 12,
                benches_replayed: 1,
                restored: true,
                demand_hits: 3,
                demand_fallbacks: 1,
                demand_budget_exhausted: 1,
                restore_us: 250,
                ..ServeInfo::default()
            },
        });
        round_trip_response(Response::Checked {
            project: "p".into(),
            benches: vec![BenchCheckInfo {
                name: "span".into(),
                table: "tbl".into(),
                rendered: "diag\n".into(),
                diags: Value::parse("[{\"kind\":\"uaf\"}]").unwrap(),
                solvers: vec![SolverCheck {
                    analysis: "ci".into(),
                    diags: vec![1, 0, 2, 0, 0, 3],
                    true_positives: 4,
                    false_positives: 1,
                    unreachable: 1,
                    refuted: false,
                }],
            }],
            check_fp: fp_hex(9),
            monotone_violation: None,
            refuted: vec!["span".into()],
            report: None,
        });
        round_trip_response(Response::QueryResult {
            bench: "span".into(),
            analysis: "ci".into(),
            answer: QueryAnswer::MayAlias {
                may_alias: true,
                witnesses: vec!["g:gp".into()],
                a: SiteInfo {
                    index: 0,
                    line: 3,
                    col: 4,
                    kind: "read".into(),
                },
                b: SiteInfo {
                    index: 1,
                    line: 9,
                    col: 2,
                    kind: "write".into(),
                },
            },
            demand: true,
        });
        round_trip_response(Response::QueryResult {
            bench: "span".into(),
            analysis: "weihl".into(),
            answer: QueryAnswer::Referents {
                site: SiteInfo {
                    index: 2,
                    line: 1,
                    col: 1,
                    kind: "read".into(),
                },
                referents: vec!["g:a".into(), "l:main:x".into()],
            },
            demand: false,
        });
        round_trip_response(Response::Stats {
            uptime_ms: 1000,
            requests: vec![("analyze".into(), 3), ("query".into(), 100)],
            evictions: 1,
            mem_budget: 1 << 28,
            projects: vec![ProjectStats {
                name: "p".into(),
                benches: 13,
                approx_bytes: 4096,
                idle_ms: 5,
                demand_hits: 7,
                demand_fallbacks: 1,
                restore_us: 432,
            }],
        });
        round_trip_response(Response::Ok);
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error {
            message: "no such bench".into(),
        });
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut v = Request::Stats.to_value();
        if let Value::Obj(fields) = &mut v {
            fields[0].1 = Value::Int(99);
        }
        let err = Request::from_value(&v).unwrap_err();
        assert!(err.0.contains("version"), "{err}");
        let Value::Obj(fields) = &mut v else { panic!() };
        fields.remove(0);
        assert!(Request::from_value(&v).is_err());
    }

    #[test]
    fn fingerprints_survive_hex_round_trip() {
        for fp in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(parse_fp_hex(&fp_hex(fp)), Some(fp));
        }
        assert_eq!(parse_fp_hex("123"), None);
        assert_eq!(parse_fp_hex("zzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn input_bytes_survive_hex_round_trip() {
        let b: Vec<u8> = (0..=255).collect();
        assert_eq!(parse_bytes_hex(&bytes_hex(&b)), Some(b));
        assert_eq!(parse_bytes_hex("abc"), None);
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats.to_value()).unwrap();
        write_frame(&mut buf, &Response::Ok.to_value()).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        let v1 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(Request::from_value(&v1).unwrap(), Request::Stats);
        let v2 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(Response::from_value(&v2).unwrap(), Response::Ok);
        assert!(read_frame(&mut r).unwrap().is_none());
    }
}
