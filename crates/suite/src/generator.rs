//! Random well-typed mini-C program generator.
//!
//! Produces pointer-intensive programs that always terminate and never
//! dereference null/uninitialized pointers, so the interpreter-based
//! soundness oracle can run them. Used by the property tests: CS ⊆ CI,
//! scheduling independence, printer fixpoint, and runtime soundness.

use crate::rng::Rng;
use std::fmt::Write as _;

/// Size knobs for generated programs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of generated functions (besides `main`).
    pub funcs: usize,
    /// Top-level statements per function body.
    pub stmts_per_func: usize,
    /// Maximum nesting of `if`/`while` blocks.
    pub max_depth: usize,
    /// Allow calls to *any* generated function, including the caller
    /// itself — recursion and call-graph cycles. Every call is guarded
    /// by the callee-depth parameter `d`, so execution still
    /// terminates. When off, the call graph is a DAG (calls target
    /// strictly earlier functions only).
    pub recursion: bool,
    /// Emit a global function pointer `gfp`, statements that retarget
    /// it, and guarded indirect calls through it.
    pub indirect_calls: bool,
    /// Emit a global *table* of function pointers (`ftab[3]`), slot
    /// retargeting statements, and guarded indexed indirect calls —
    /// recursion through function-pointer tables, a shape the 1995
    /// paper's benchmarks never had.
    pub fptr_table: bool,
    /// Emit array-of-pointer shapes: a global `int *gparr[4]`, a
    /// per-function local `int *larr[2]`, and a global struct holding a
    /// pointer array (`struct pack { int *slots[2]; }`), with
    /// literal-index load and store statement forms over each.
    pub ptr_arrays: bool,
    /// Emit heap blocks (`malloc` / store / load / `free` over a
    /// dedicated local that no other statement can reach) and
    /// whole-struct `memcpy` into the otherwise-untouched `gnode`.
    pub heap: bool,
    /// Maximum call depth `main` passes to its top-level calls (the `d`
    /// budget every call chain decrements). Raising it exercises longer
    /// chains through recursion and the function-pointer table.
    pub call_depth: usize,
    /// Emit `spawn`/`join` in `main`: one to three scalar-only worker
    /// threads race on the shared `int` globals while main keeps
    /// mutating them (and may run a sequential pointer-heavy call)
    /// before the join-all. Raced memory is never pointer-typed — the
    /// soundness precondition of the flow-sensitive solvers. Default
    /// **off** — threaded programs have schedule-dependent exit codes,
    /// so only the race-checker properties opt in.
    pub threads: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            funcs: 4,
            stmts_per_func: 8,
            max_depth: 3,
            recursion: true,
            indirect_calls: true,
            fptr_table: false,
            ptr_arrays: false,
            heap: false,
            call_depth: 3,
            threads: false,
        }
    }
}

impl GenConfig {
    /// The campaign-scale corpus: more and bigger functions, deeper
    /// call chains, and every shape knob on. Kept separate from
    /// [`GenConfig::default`] so the default seed stream (which several
    /// planted-fault tests are tuned against) stays byte-identical.
    pub fn campaign() -> Self {
        GenConfig {
            funcs: 6,
            stmts_per_func: 10,
            call_depth: 4,
            fptr_table: true,
            ptr_arrays: true,
            heap: true,
            ..GenConfig::default()
        }
    }

    /// The threaded preset: the default grammar plus `spawn`/`join` in
    /// `main`. Separate from [`GenConfig::campaign`] so the sequential
    /// campaign corpus stays byte-identical; the race-soundness and
    /// race-monotonicity fuzz properties use this.
    pub fn threaded() -> Self {
        GenConfig {
            threads: true,
            ..GenConfig::default()
        }
    }
}

/// Statement forms beyond the 17 base ones, enabled by shape knobs.
/// With every knob off the extras list is empty and the per-statement
/// RNG draw (`0..17 + extras`) is unchanged, so default-config output
/// is byte-for-byte what it was before the knobs existed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Extra {
    /// `gparr[i] = &x;`
    ParrStore,
    /// `p = gparr[i];`
    ParrLoad,
    /// `larr[i] = &x;`
    LarrStore,
    /// `p = larr[i];`
    LarrLoad,
    /// `gpack.slots[i] = &x;`
    PackStore,
    /// `p = gpack.slots[i];`
    PackLoad,
    /// `ftab[i] = fnK;`
    FtabRetarget,
    /// `if (d > 0) { if (ftab[i] != NULL) { p = ftab[i](...); } }`
    FtabCall,
    /// `h0 = malloc(..); *h0 = v; x = *h0; free(h0);`
    HeapBlock,
    /// `memcpy(&gnode, s, sizeof(struct node)); x = gnode.v;`
    CopyNode,
}

/// Generates a self-contained mini-C program from a seed.
pub fn generate(seed: u64, cfg: &GenConfig) -> String {
    let mut extras = Vec::new();
    if cfg.ptr_arrays {
        extras.extend([
            Extra::ParrStore,
            Extra::ParrLoad,
            Extra::LarrStore,
            Extra::LarrLoad,
            Extra::PackStore,
            Extra::PackLoad,
        ]);
    }
    if cfg.fptr_table && cfg.funcs > 0 {
        extras.extend([Extra::FtabRetarget, Extra::FtabCall]);
    }
    if cfg.heap {
        extras.extend([Extra::HeapBlock, Extra::CopyNode]);
    }
    let mut g = Gen {
        rng: Rng::seed_from_u64(seed),
        cfg: cfg.clone(),
        extras,
        out: String::new(),
    };
    g.program();
    g.out
}

struct Gen {
    rng: Rng,
    cfg: GenConfig,
    extras: Vec<Extra>,
    out: String,
}

/// Names available inside a function body.
#[derive(Clone)]
struct Scope {
    /// Remaining call-statement budget (calls multiply execution along
    /// the DAG; bounding them keeps generated programs fast to run).
    calls_left: std::cell::Cell<usize>,
    /// `int`-typed lvalues.
    ints: Vec<String>,
    /// `int*`-typed lvalues.
    ptrs: Vec<String>,
    /// `int**`-typed lvalues.
    pptrs: Vec<String>,
    /// `struct node*` values.
    nodes: Vec<String>,
    /// Index of this function (callable targets are strictly smaller).
    func_idx: usize,
}

impl Gen {
    fn pick<'a>(&mut self, v: &'a [String]) -> &'a str {
        let i = self.rng.gen_range(0..v.len());
        &v[i]
    }

    /// Whether the program carries the global function pointer.
    fn has_gfp(&self) -> bool {
        self.cfg.indirect_calls && self.cfg.funcs > 0
    }

    /// Whether the program carries the function-pointer table.
    fn has_ftab(&self) -> bool {
        self.cfg.fptr_table && self.cfg.funcs > 0
    }

    fn program(&mut self) {
        self.out.push_str(
            "struct node { int v; int *p; struct node *next; };\n\
             int g0; int g1; int g2;\n\
             int *gp;\n\
             int garr[4];\n\
             struct node gnode;\n",
        );
        if self.cfg.ptr_arrays {
            self.out.push_str(
                "int *gparr[4];\n\
                 struct pack { int *slots[2]; };\n\
                 struct pack gpack;\n",
            );
        }
        if self.has_gfp() {
            self.out
                .push_str("int *(*gfp)(int, int *, int **, struct node *);\n");
        }
        if self.has_ftab() {
            self.out
                .push_str("int *(*ftab[3])(int, int *, int **, struct node *);\n");
        }
        self.out.push('\n');
        for i in 0..self.cfg.funcs {
            self.function(i);
        }
        if self.cfg.threads {
            for i in 0..2 {
                self.worker(i);
            }
        }
        self.main_fn();
    }

    /// A spawnable worker: straight-line scalar arithmetic over the
    /// shared `int` globals and a thread-local temporary. Deliberately
    /// pointer-free — see the threaded block in [`Gen::main_fn`] for
    /// why raced memory must stay scalar.
    fn worker(&mut self, idx: usize) {
        let _ = writeln!(self.out, "void wrk{idx}(int k) {{");
        self.out.push_str("    int t;\n    t = k;\n");
        let stmts = self.rng.gen_range(3..=6);
        for _ in 0..stmts {
            let g = self.rng.gen_range(0..3);
            let _ = match self.rng.gen_range(0..5) {
                0 => writeln!(self.out, "    g{g} = g{g} + k;"),
                1 => writeln!(self.out, "    t = g{g};"),
                2 => writeln!(self.out, "    g{g} = t + 1;"),
                3 => {
                    let n = self.rng.gen_range(0..4);
                    writeln!(self.out, "    if (t > {n}) {{ g{g} = g{g} + 1; }}")
                }
                _ => {
                    let m = self.rng.gen_range(1..4);
                    writeln!(self.out, "    g{g} = k * {m};")
                }
            };
        }
        self.out.push_str("}\n\n");
    }

    fn function(&mut self, idx: usize) {
        let _ = writeln!(
            self.out,
            "int *fn{idx}(int d, int *a, int **b, struct node *s) {{"
        );
        self.out.push_str(
            "    int l0; int l1;\n\
             \u{20}   int t0; int t1; int t2; int t3;\n\
             \u{20}   int *q0; int *q1;\n\
             \u{20}   int **qq;\n",
        );
        if self.cfg.ptr_arrays {
            self.out.push_str("    int *larr[2];\n");
        }
        if self.cfg.heap {
            self.out.push_str("    int *h0;\n");
        }
        self.out.push_str(
            "    l0 = 1; l1 = 2;\n\
             \u{20}   q0 = &l0; q1 = &g0;\n\
             \u{20}   qq = &q0;\n",
        );
        if self.cfg.ptr_arrays {
            // Both slots definitely valid before any `larr[i]` load.
            self.out.push_str("    larr[0] = &l0; larr[1] = &g1;\n");
        }
        let scope = Scope {
            calls_left: std::cell::Cell::new(2),
            ints: vec![
                "l0".into(),
                "l1".into(),
                "g0".into(),
                "g1".into(),
                "g2".into(),
            ],
            ptrs: vec!["q0".into(), "q1".into(), "gp".into()],
            pptrs: vec!["qq".into(), "b".into()],
            nodes: vec!["s".into()],
            func_idx: idx,
        };
        // `gp` and `*b` may be stale; make them definitely valid.
        self.out.push_str("    gp = &g1;\n    *b = &g2;\n");
        let n = self.cfg.stmts_per_func;
        for _ in 0..n {
            let depth = self.cfg.max_depth;
            self.stmt(&scope, 1, depth);
        }
        // Return a pointer that is always valid.
        let ret = match self.rng.gen_range(0..4) {
            0 => "a".to_string(),
            1 => format!("&{}", self.pick(&scope.ints)),
            2 => self.pick(&scope.ptrs).to_string(),
            _ => format!("*{}", self.pick(&scope.pptrs)),
        };
        let _ = writeln!(self.out, "    return {ret};");
        self.out.push_str("}\n\n");
    }

    fn indent(&mut self, level: usize) {
        for _ in 0..level {
            self.out.push_str("    ");
        }
    }

    fn stmt(&mut self, sc: &Scope, level: usize, depth: usize) {
        let choice = self.rng.gen_range(0..17 + self.extras.len());
        self.indent(level);
        if choice >= 17 {
            let extra = self.extras[choice - 17];
            self.extra_stmt(extra, sc, level, depth);
            return;
        }
        match choice {
            0 => {
                let x = self.pick(&sc.ints).to_string();
                let v = self.rng.gen_range(0..100);
                let _ = writeln!(self.out, "{x} = {v};");
            }
            1 => {
                let p = self.pick(&sc.ptrs).to_string();
                let x = self.pick(&sc.ints).to_string();
                let _ = writeln!(self.out, "{p} = &{x};");
            }
            2 => {
                let p = self.pick(&sc.ptrs).to_string();
                let x = self.pick(&sc.ints).to_string();
                let _ = writeln!(self.out, "*{p} = {x};");
            }
            3 => {
                let x = self.pick(&sc.ints).to_string();
                let p = self.pick(&sc.ptrs).to_string();
                let _ = writeln!(self.out, "{x} = *{p};");
            }
            4 => {
                let pp = self.pick(&sc.pptrs).to_string();
                let p = self.pick(&sc.ptrs).to_string();
                let _ = writeln!(self.out, "*{pp} = {p};");
            }
            5 => {
                let p = self.pick(&sc.ptrs).to_string();
                let pp = self.pick(&sc.pptrs).to_string();
                let _ = writeln!(self.out, "{p} = *{pp};");
            }
            6 => {
                let s = self.pick(&sc.nodes).to_string();
                let v = self.rng.gen_range(0..50);
                let _ = writeln!(self.out, "{s}->v = {v};");
            }
            7 => {
                let s = self.pick(&sc.nodes).to_string();
                let p = self.pick(&sc.ptrs).to_string();
                let _ = writeln!(self.out, "{s}->p = {p};");
            }
            8 => {
                let s = self.pick(&sc.nodes).to_string();
                let x = self.pick(&sc.ints).to_string();
                let _ = writeln!(self.out, "if ({s}->p != NULL) {{ {x} = *({s}->p); }}");
            }
            9 => {
                let i = self.rng.gen_range(0..4);
                let x = self.pick(&sc.ints).to_string();
                let _ = writeln!(self.out, "garr[{i}] = {x};");
            }
            10 if depth > 0 => {
                let x = self.pick(&sc.ints).to_string();
                let c = self.rng.gen_range(0..10);
                let _ = writeln!(self.out, "if ({x} < {c}) {{");
                let inner = self.rng.gen_range(1..3);
                for _ in 0..inner {
                    self.stmt(sc, level + 1, depth - 1);
                }
                self.indent(level);
                self.out.push_str("} else {\n");
                self.stmt(sc, level + 1, depth - 1);
                self.indent(level);
                self.out.push_str("}\n");
            }
            11 if depth > 0 => {
                // Bounded loop over a dedicated counter (t0..t3 by nesting
                // level) that no generated statement can reassign, so the
                // loop always terminates.
                let x = format!("t{}", self.cfg.max_depth.saturating_sub(depth).min(3));
                let n = self.rng.gen_range(1..5);
                let _ = writeln!(self.out, "{x} = {n};");
                self.indent(level);
                let _ = writeln!(self.out, "while ({x} > 0) {{");
                self.stmt(sc, level + 1, depth - 1);
                self.indent(level + 1);
                let _ = writeln!(self.out, "{x} = {x} - 1;");
                self.indent(level);
                self.out.push_str("}\n");
            }
            12 if self.cfg.funcs > 0
                && (self.cfg.recursion || sc.func_idx > 0)
                && sc.calls_left.get() > 0
                && depth == self.cfg.max_depth =>
            {
                // Direct call. With recursion enabled any function is a
                // legal target (including the caller itself); the
                // callee-depth guard `d > 0` bounds every call chain, so
                // execution still terminates. Without recursion the call
                // graph is a DAG over earlier functions. Either way
                // calls sit outside loops with a small per-body budget.
                sc.calls_left.set(sc.calls_left.get() - 1);
                let target = if self.cfg.recursion {
                    self.rng.gen_range(0..self.cfg.funcs)
                } else {
                    self.rng.gen_range(0..sc.func_idx)
                };
                let p = self.pick(&sc.ptrs).to_string();
                let a = self.pick(&sc.ints).to_string();
                let pp = self.pick(&sc.pptrs).to_string();
                let s = self.pick(&sc.nodes).to_string();
                let _ = writeln!(
                    self.out,
                    "if (d > 0) {{ {p} = fn{target}(d - 1, &{a}, {pp}, {s}); }}"
                );
            }
            13 if self.cfg.indirect_calls
                && self.cfg.funcs > 0
                && sc.calls_left.get() > 0
                && depth == self.cfg.max_depth =>
            {
                // Indirect call through the global function pointer,
                // doubly guarded: the depth bound keeps it terminating,
                // the null check keeps it safe before `main` (or a
                // retargeting statement) has aimed `gfp` anywhere.
                sc.calls_left.set(sc.calls_left.get() - 1);
                let p = self.pick(&sc.ptrs).to_string();
                let a = self.pick(&sc.ints).to_string();
                let pp = self.pick(&sc.pptrs).to_string();
                let s = self.pick(&sc.nodes).to_string();
                let _ = writeln!(
                    self.out,
                    "if (d > 0) {{ if (gfp != NULL) {{ {p} = gfp(d - 1, &{a}, {pp}, {s}); }} }}"
                );
            }
            14 if self.cfg.indirect_calls && self.cfg.funcs > 0 => {
                let target = self.rng.gen_range(0..self.cfg.funcs);
                let _ = writeln!(self.out, "gfp = fn{target};");
            }
            15 => {
                // Bounded list step: the node chain built in `main`
                // (n1 -> n2 -> NULL) is acyclic, and `next` is never
                // reassigned, so guarded traversal terminates.
                let s = self.pick(&sc.nodes).to_string();
                let _ = writeln!(self.out, "if ({s}->next != NULL) {{ {s} = {s}->next; }}");
            }
            _ => {
                let x = self.pick(&sc.ints).to_string();
                let y = self.pick(&sc.ints).to_string();
                let _ = writeln!(self.out, "{x} = {y} + 1;");
            }
        }
    }

    /// Emits one knob-gated statement form. The leading indent for the
    /// first line has already been written by [`Gen::stmt`]; guarded
    /// forms whose preconditions fail fall back to the same default
    /// assignment the base grammar uses.
    fn extra_stmt(&mut self, extra: Extra, sc: &Scope, level: usize, depth: usize) {
        match extra {
            Extra::ParrStore => {
                let i = self.rng.gen_range(0..4);
                let x = self.pick(&sc.ints).to_string();
                let _ = writeln!(self.out, "gparr[{i}] = &{x};");
            }
            Extra::ParrLoad => {
                // Safe: `main` fills all four slots before any call.
                let i = self.rng.gen_range(0..4);
                let p = self.pick(&sc.ptrs).to_string();
                let _ = writeln!(self.out, "{p} = gparr[{i}];");
            }
            Extra::LarrStore => {
                let i = self.rng.gen_range(0..2);
                let x = self.pick(&sc.ints).to_string();
                let _ = writeln!(self.out, "larr[{i}] = &{x};");
            }
            Extra::LarrLoad => {
                // Safe: the prologue fills both slots.
                let i = self.rng.gen_range(0..2);
                let p = self.pick(&sc.ptrs).to_string();
                let _ = writeln!(self.out, "{p} = larr[{i}];");
            }
            Extra::PackStore => {
                let i = self.rng.gen_range(0..2);
                let x = self.pick(&sc.ints).to_string();
                let _ = writeln!(self.out, "gpack.slots[{i}] = &{x};");
            }
            Extra::PackLoad => {
                // Safe: `main` fills both slots before any call.
                let i = self.rng.gen_range(0..2);
                let p = self.pick(&sc.ptrs).to_string();
                let _ = writeln!(self.out, "{p} = gpack.slots[{i}];");
            }
            Extra::FtabRetarget => {
                let i = self.rng.gen_range(0..3);
                let target = self.rng.gen_range(0..self.cfg.funcs);
                let _ = writeln!(self.out, "ftab[{i}] = fn{target};");
            }
            Extra::FtabCall if sc.calls_left.get() > 0 && depth == self.cfg.max_depth => {
                // Indexed indirect call: the depth bound keeps it
                // terminating even when slots point back at the caller,
                // and `main` aims every slot before the first call, so
                // the null guard never fires at runtime — it exists so
                // shrunk repros stay safe when `main`'s init is dropped.
                sc.calls_left.set(sc.calls_left.get() - 1);
                let i = self.rng.gen_range(0..3);
                let p = self.pick(&sc.ptrs).to_string();
                let a = self.pick(&sc.ints).to_string();
                let pp = self.pick(&sc.pptrs).to_string();
                let s = self.pick(&sc.nodes).to_string();
                let _ = writeln!(
                    self.out,
                    "if (d > 0) {{ if (ftab[{i}] != NULL) {{ {p} = ftab[{i}](d - 1, &{a}, {pp}, {s}); }} }}"
                );
            }
            Extra::HeapBlock => {
                // Self-contained heap lifetime over `h0`, which is kept
                // out of the scope's pointer list so no other statement
                // can observe it between `free` and the next `malloc`.
                let v = self.rng.gen_range(0..100);
                let x = self.pick(&sc.ints).to_string();
                self.out.push_str("h0 = (int *) malloc(sizeof(int));\n");
                self.indent(level);
                let _ = writeln!(self.out, "*h0 = {v};");
                self.indent(level);
                let _ = writeln!(self.out, "{x} = *h0;");
                self.indent(level);
                self.out.push_str("free(h0);\n");
            }
            Extra::CopyNode => {
                // Whole-struct copy through the memcpy builtin (the
                // CopyMem node): `gnode` is written only here and its
                // fields are read back, so the copy is never dead.
                let s = self.pick(&sc.nodes).to_string();
                let x = self.pick(&sc.ints).to_string();
                let _ = writeln!(self.out, "memcpy(&gnode, {s}, sizeof(struct node));");
                self.indent(level);
                let _ = writeln!(self.out, "{x} = gnode.v;");
            }
            Extra::FtabCall => {
                let x = self.pick(&sc.ints).to_string();
                let y = self.pick(&sc.ints).to_string();
                let _ = writeln!(self.out, "{x} = {y} + 1;");
            }
        }
    }

    fn main_fn(&mut self) {
        self.out.push_str(
            "int main(void) {\n\
             \u{20}   int m0; int m1;\n\
             \u{20}   int *mp;\n\
             \u{20}   int **mpp;\n\
             \u{20}   struct node n1; struct node n2;\n\
             \u{20}   int total;\n\
             \u{20}   m0 = 3; m1 = 4;\n\
             \u{20}   mp = &m0;\n\
             \u{20}   mpp = &mp;\n\
             \u{20}   gp = &g0;\n\
             \u{20}   n1.v = 1; n1.p = &m0; n1.next = &n2;\n\
             \u{20}   n2.v = 2; n2.p = &g1; n2.next = NULL;\n",
        );
        if self.cfg.ptr_arrays {
            // Every pointer-array slot valid before the first call, so
            // the load forms inside function bodies are always defined.
            self.out.push_str(
                "    gparr[0] = &g0; gparr[1] = &g1; gparr[2] = &g2; gparr[3] = &m0;\n\
                 \u{20}   gpack.slots[0] = &m1; gpack.slots[1] = &g0;\n",
            );
        }
        if self.has_gfp() {
            let target = self.rng.gen_range(0..self.cfg.funcs);
            let _ = writeln!(self.out, "    gfp = fn{target};");
        }
        if self.has_ftab() {
            for i in 0..3 {
                let target = self.rng.gen_range(0..self.cfg.funcs);
                let _ = writeln!(self.out, "    ftab[{i}] = fn{target};");
            }
        }
        if self.cfg.threads {
            // One to three concurrent children, all scalar-only workers
            // (`wrk*`): raced memory is int-typed globals, never
            // pointers. This is the soundness precondition of the
            // flow-sensitive solvers — a racing write to a *pointer*
            // cell can deliver referents along interleavings the VDG
            // never sequences, so only the flow-insensitive baselines
            // would stay sound (DESIGN §14). Main keeps mutating shared
            // scalars in the pending region — and may run a sequential
            // pointer-heavy call, whose scalar-global accesses race
            // with the workers while its pointer flows stay
            // main-thread-local — then join-all. Well under the
            // interpreter's 8-live-thread cap.
            let spawns = self.rng.gen_range(1..=3);
            for _ in 0..spawns {
                let w = self.rng.gen_range(0..2);
                let k = self.rng.gen_range(1..5);
                let _ = writeln!(self.out, "    spawn wrk{w}({k});");
            }
            self.out.push_str("    g0 = g0 + 1;\n");
            if self.cfg.funcs > 0 && self.rng.gen_bool(0.5) {
                let target = self.rng.gen_range(0..self.cfg.funcs);
                let _ = writeln!(self.out, "    mp = fn{target}(2, &m0, mpp, &n1);");
            }
            self.out.push_str("    join;\n");
        }
        let calls = if self.cfg.funcs == 0 {
            0
        } else {
            self.rng.gen_range(1..=self.cfg.funcs)
        };
        for _ in 0..calls {
            let target = self.rng.gen_range(0..self.cfg.funcs);
            let depth = self.rng.gen_range(2..=self.cfg.call_depth.max(2));
            let arg = if self.rng.gen_bool(0.5) { "&m0" } else { "&m1" };
            let node = if self.rng.gen_bool(0.5) { "&n1" } else { "&n2" };
            let _ = writeln!(
                self.out,
                "    mp = fn{target}({depth}, {arg}, mpp, {node});"
            );
        }
        self.out.push_str(
            "    total = *mp + m0 + m1 + g0 + g1 + n1.v + n2.v;\n\
             \u{20}   return total % 256;\n\
             }\n",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, &GenConfig::default());
        let b = generate(42, &GenConfig::default());
        assert_eq!(a, b);
        let c = generate(43, &GenConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn generated_programs_compile() {
        for seed in 0..20 {
            let src = generate(seed, &GenConfig::default());
            cfront::compile(&src)
                .unwrap_or_else(|e| panic!("seed {seed} failed to compile:\n{src}\n{e}"));
        }
    }

    #[test]
    fn campaign_preset_programs_compile() {
        for seed in 0..20 {
            let src = generate(seed, &GenConfig::campaign());
            cfront::compile(&src)
                .unwrap_or_else(|e| panic!("campaign seed {seed} failed to compile:\n{src}\n{e}"));
        }
    }

    #[test]
    fn threaded_preset_programs_compile_spawn_and_terminate() {
        for seed in 0..20 {
            let src = generate(seed, &GenConfig::threaded());
            let prog = cfront::compile(&src)
                .unwrap_or_else(|e| panic!("threaded seed {seed} failed to compile:\n{src}\n{e}"));
            assert!(prog.uses_threads(), "threaded seed {seed} never spawns");
            for sched in [0u64, 7] {
                interp::run(
                    &prog,
                    &interp::Config {
                        sched_seed: sched,
                        ..interp::Config::default()
                    },
                )
                .unwrap_or_else(|e| {
                    panic!("threaded seed {seed} sched {sched} faulted:\n{src}\n{e:?}")
                });
            }
        }
    }

    #[test]
    fn shape_knobs_do_not_disturb_the_default_stream() {
        // Several planted-fault tests are tuned against specific seed
        // windows of the default generator; the shape knobs must be
        // invisible while off.
        let deep = GenConfig {
            call_depth: 3,
            ..GenConfig::default()
        };
        for seed in [0, 42, 192] {
            assert_eq!(generate(seed, &GenConfig::default()), generate(seed, &deep));
            let campaign = generate(seed, &GenConfig::campaign());
            assert_ne!(generate(seed, &GenConfig::default()), campaign);
        }
        let default_src = generate(7, &GenConfig::default());
        for marker in [
            "gparr", "larr", "gpack", "ftab", "malloc", "memcpy", "spawn",
        ] {
            assert!(
                !default_src.contains(marker),
                "default config must not emit `{marker}`"
            );
        }
    }
}
