//! # suite — benchmark programs for the Ruf95 reproduction
//!
//! Thirteen mini-C programs named after the paper's Figure 2 suite
//! (Landi / Austin / FSF / SPEC92 sources). The original C sources are
//! not redistributable; these are reconstructions that preserve the
//! pointer idioms the paper attributes to each program — mostly
//! single-level pointers, sparse call graphs, single-client abstract data
//! types, caller-allocated out-parameters, and (for `part`) two linked
//! lists manipulated by shared routines that exchange elements.
//!
//! Every program is self-contained (inputs are embedded; no file I/O),
//! deterministic, and runnable under the `interp` crate.

#![warn(missing_docs)]

pub mod edit;
pub mod generator;
pub mod rng;
pub mod scaling;

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// The paper's name for the program.
    pub name: &'static str,
    /// mini-C source text.
    pub source: &'static str,
    /// Bytes served to `getchar()`.
    pub input: &'static [u8],
    /// Expected exit status under the reference interpreter (regression
    /// guard; every program is deterministic).
    pub expected_exit: i64,
}

macro_rules! bench {
    ($name:literal, $file:literal, $input:expr, $exit:expr) => {
        Benchmark {
            name: $name,
            source: include_str!(concat!("../programs/", $file)),
            input: $input,
            expected_exit: $exit,
        }
    };
}

/// All thirteen benchmarks, in the paper's Figure 2 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        bench!("allroots", "allroots.c", b"", 5),
        bench!("anagram", "anagram.c", b"", 0),
        bench!("assembler", "assembler.c", b"", 0),
        bench!("backprop", "backprop.c", b"", 0),
        bench!("bc", "bc.c", b"", 0),
        bench!("compiler", "compiler.c", b"", 0),
        bench!(
            "compress",
            "compress.c",
            b"a man a plan a canal panama a man a plan a canal panama \
a man a plan a canal panama",
            0
        ),
        bench!("lex315", "lex315.c", b"", 0),
        bench!("loader", "loader.c", b"", 0),
        bench!("part", "part.c", b"", 0),
        bench!("simulator", "simulator.c", b"", 0),
        bench!("span", "span.c", b"", 0),
        bench!("yacr2", "yacr2.c", b"", 0),
    ]
}

macro_rules! litmus {
    ($name:literal, $file:literal, $exit:expr) => {
        Benchmark {
            name: concat!("litmus_", $name),
            source: include_str!(concat!("../programs/litmus/", $file)),
            input: b"",
            expected_exit: $exit,
        }
    };
}

/// The threaded litmus benchmarks: tiny programs with a planted data
/// race (`litmus_race_*`) or a deliberately race-free synchronization
/// shape (`litmus_sync_*`). Kept out of [`benchmarks`] so the paper
/// suite — and every sequential report fingerprint derived from it —
/// stays frozen at thirteen programs; [`by_name`] finds both. Every
/// program's exit code is schedule-independent, so `expected_exit`
/// holds under any interleaving.
pub fn litmus() -> Vec<Benchmark> {
    vec![
        litmus!("race_global", "race_global.c", 2),
        litmus!("race_rw", "race_rw.c", 0),
        litmus!("race_heap", "race_heap.c", 0),
        litmus!("race_escape", "race_escape.c", 0),
        litmus!("race_loop", "race_loop.c", 0),
        litmus!("sync_join", "sync_join.c", 4),
        litmus!("sync_disjoint", "sync_disjoint.c", 3),
    ]
}

/// Whether a litmus benchmark (by name) carries a planted race, by the
/// registry's naming convention.
pub fn litmus_has_race(name: &str) -> bool {
    name.starts_with("litmus_race_")
}

/// Looks up a benchmark by name, searching the paper suite first and
/// the threaded litmus set second.
pub fn by_name(name: &str) -> Option<Benchmark> {
    benchmarks()
        .into_iter()
        .chain(litmus())
        .find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let b = benchmarks();
        assert_eq!(b.len(), 13);
        let mut names: Vec<_> = b.iter().map(|x| x.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
        assert!(by_name("bc").is_some());
        assert!(by_name("gcc").is_none());
    }

    #[test]
    fn litmus_registry_is_separate_and_findable() {
        let l = litmus();
        assert_eq!(l.len(), 7);
        assert!(l.iter().all(|b| b.name.starts_with("litmus_")));
        assert!(by_name("litmus_race_global").is_some());
        assert!(litmus_has_race("litmus_race_global"));
        assert!(!litmus_has_race("litmus_sync_join"));
        // The paper suite stays frozen: no litmus program leaks in.
        assert!(benchmarks().iter().all(|b| !b.name.starts_with("litmus_")));
    }

    #[test]
    fn litmus_exit_codes_hold_under_default_and_seeded_schedules() {
        for b in litmus() {
            let prog = cfront::compile(b.source).unwrap_or_else(|e| panic!("{}: {e:?}", b.name));
            assert!(prog.uses_threads(), "{} must spawn threads", b.name);
            for seed in [0u64, 1, 0xC0FFEE] {
                let out = interp::run(
                    &prog,
                    &interp::Config {
                        sched_seed: seed,
                        ..interp::Config::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e:?}", b.name));
                assert_eq!(
                    out.exit, b.expected_exit,
                    "{} seed {seed}: exit codes are schedule-independent by construction",
                    b.name
                );
            }
        }
    }

    #[test]
    fn sources_are_nonempty() {
        for b in benchmarks() {
            assert!(
                b.source.lines().count() > 50,
                "{} is suspiciously small",
                b.name
            );
        }
    }
}
