//! # suite — benchmark programs for the Ruf95 reproduction
//!
//! Thirteen mini-C programs named after the paper's Figure 2 suite
//! (Landi / Austin / FSF / SPEC92 sources). The original C sources are
//! not redistributable; these are reconstructions that preserve the
//! pointer idioms the paper attributes to each program — mostly
//! single-level pointers, sparse call graphs, single-client abstract data
//! types, caller-allocated out-parameters, and (for `part`) two linked
//! lists manipulated by shared routines that exchange elements.
//!
//! Every program is self-contained (inputs are embedded; no file I/O),
//! deterministic, and runnable under the `interp` crate.

#![warn(missing_docs)]

pub mod edit;
pub mod generator;
pub mod rng;
pub mod scaling;

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// The paper's name for the program.
    pub name: &'static str,
    /// mini-C source text.
    pub source: &'static str,
    /// Bytes served to `getchar()`.
    pub input: &'static [u8],
    /// Expected exit status under the reference interpreter (regression
    /// guard; every program is deterministic).
    pub expected_exit: i64,
}

macro_rules! bench {
    ($name:literal, $file:literal, $input:expr, $exit:expr) => {
        Benchmark {
            name: $name,
            source: include_str!(concat!("../programs/", $file)),
            input: $input,
            expected_exit: $exit,
        }
    };
}

/// All thirteen benchmarks, in the paper's Figure 2 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        bench!("allroots", "allroots.c", b"", 5),
        bench!("anagram", "anagram.c", b"", 0),
        bench!("assembler", "assembler.c", b"", 0),
        bench!("backprop", "backprop.c", b"", 0),
        bench!("bc", "bc.c", b"", 0),
        bench!("compiler", "compiler.c", b"", 0),
        bench!(
            "compress",
            "compress.c",
            b"a man a plan a canal panama a man a plan a canal panama \
a man a plan a canal panama",
            0
        ),
        bench!("lex315", "lex315.c", b"", 0),
        bench!("loader", "loader.c", b"", 0),
        bench!("part", "part.c", b"", 0),
        bench!("simulator", "simulator.c", b"", 0),
        bench!("span", "span.c", b"", 0),
        bench!("yacr2", "yacr2.c", b"", 0),
    ]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let b = benchmarks();
        assert_eq!(b.len(), 13);
        let mut names: Vec<_> = b.iter().map(|x| x.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
        assert!(by_name("bc").is_some());
        assert!(by_name("gcc").is_none());
    }

    #[test]
    fn sources_are_nonempty() {
        for b in benchmarks() {
            assert!(
                b.source.lines().count() > 50,
                "{} is suspiciously small",
                b.name
            );
        }
    }
}
