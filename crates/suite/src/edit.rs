//! Seeded source-edit generator for the incremental-analysis harness.
//!
//! Produces "the program changed a little" pairs and chains: parse the
//! source, apply one small AST edit (insert/delete/mutate a statement,
//! add a parameter, rename a local), pretty-print, and validate that
//! the result still compiles. Edits are free to change program
//! *behavior* — the incremental equivalence harness only requires that
//! both sides analyze the same (valid) program — but every returned
//! edit is guaranteed to compile.
//!
//! Determinism: the same `(source, seed)` always yields the same edit.

use cfront::ast::{Block, ExprId, ExprKind, FuncId, Program, Stmt, VarSlot};
use cfront::{lexer, parser, pretty, Span};

use crate::rng::Rng;

/// The kind of edit that was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EditKind {
    /// Cloned an existing expression statement to a new position.
    InsertStmt,
    /// Deleted one statement.
    DeleteStmt,
    /// Mutated an integer literal or swapped a binary operator.
    MutateExpr,
    /// Appended an `int` parameter and `0` at every direct call site.
    AddParam,
    /// Renamed a parameter or block-scoped local and its uses.
    RenameLocal,
}

impl EditKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            EditKind::InsertStmt => "insert-stmt",
            EditKind::DeleteStmt => "delete-stmt",
            EditKind::MutateExpr => "mutate-expr",
            EditKind::AddParam => "add-param",
            EditKind::RenameLocal => "rename-local",
        }
    }
}

/// One applied, compile-validated edit.
#[derive(Debug, Clone)]
pub struct Edit {
    /// What was done.
    pub kind: EditKind,
    /// Human-readable description (function and construct touched).
    pub description: String,
}

/// One link of an edit chain: the edited source and what changed.
#[derive(Debug, Clone)]
pub struct EditStep {
    /// The program after the edit (compiles).
    pub source: String,
    /// The edit that produced it.
    pub edit: Edit,
}

/// Applies one seeded random edit to `src`, retrying with fresh random
/// choices until the edited program compiles. Returns `None` only if no
/// valid edit is found within the attempt budget (e.g. a program with
/// no statements at all).
pub fn apply_random_edit(src: &str, seed: u64) -> Option<EditStep> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    for _ in 0..64 {
        let Ok(tokens) = lexer::lex(src) else {
            return None;
        };
        let Ok(mut prog) = parser::parse(tokens) else {
            return None;
        };
        let kind = match rng.gen_range(0..8) {
            0 | 1 => EditKind::InsertStmt,
            2 | 3 => EditKind::DeleteStmt,
            4 => EditKind::MutateExpr,
            5 => EditKind::AddParam,
            _ => EditKind::RenameLocal,
        };
        let Some(description) = try_edit(&mut prog, kind, &mut rng) else {
            continue;
        };
        let out = pretty::print_program(&prog);
        if cfront::compile(&out).is_ok() {
            return Some(EditStep {
                source: out,
                edit: Edit { kind, description },
            });
        }
    }
    None
}

/// Applies `len` successive seeded edits, each validated, returning the
/// intermediate programs. The chain may be shorter than `len` if the
/// program runs out of editable material.
pub fn edit_chain(src: &str, seed: u64, len: usize) -> Vec<EditStep> {
    let mut out = Vec::with_capacity(len);
    let mut cur = src.to_string();
    for i in 0..len {
        let Some(step) = apply_random_edit(
            &cur,
            seed.wrapping_add(i as u64)
                .wrapping_mul(0x517c_c1b7_2722_0a95),
        ) else {
            break;
        };
        cur = step.source.clone();
        out.push(step);
    }
    out
}

fn try_edit(prog: &mut Program, kind: EditKind, rng: &mut Rng) -> Option<String> {
    match kind {
        EditKind::InsertStmt => insert_stmt(prog, rng),
        EditKind::DeleteStmt => delete_stmt(prog, rng),
        EditKind::MutateExpr => mutate_expr(prog, rng),
        EditKind::AddParam => add_param(prog, rng),
        EditKind::RenameLocal => rename_local(prog, rng),
    }
}

/// Functions that have a body, as indices.
fn defined_funcs(prog: &Program) -> Vec<usize> {
    (0..prog.funcs.len())
        .filter(|&i| prog.funcs[i].body.is_some())
        .collect()
}

/// Visits every block of a statement tree in pre-order.
fn visit_blocks<F: FnMut(&mut Block)>(blk: &mut Block, f: &mut F) {
    f(blk);
    for s in &mut blk.stmts {
        visit_stmt_blocks(s, f);
    }
}

fn visit_stmt_blocks<F: FnMut(&mut Block)>(s: &mut Stmt, f: &mut F) {
    match s {
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            visit_blocks(then_blk, f);
            if let Some(e) = else_blk {
                visit_blocks(e, f);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
            visit_blocks(body, f)
        }
        Stmt::Switch { cases, default, .. } => {
            for c in cases {
                visit_blocks(&mut c.body, f);
            }
            if let Some(d) = default {
                visit_blocks(d, f);
            }
        }
        Stmt::Block(b) => visit_blocks(b, f),
        _ => {}
    }
}

fn count_blocks(prog: &mut Program, fi: usize) -> usize {
    let mut n = 0;
    if let Some(body) = prog.funcs[fi].body.as_mut() {
        visit_blocks(body, &mut |_| n += 1);
    }
    n
}

/// Runs `f` on the `target`-th block (pre-order) of function `fi`.
fn with_block<F: FnMut(&mut Block)>(prog: &mut Program, fi: usize, target: usize, f: &mut F) {
    let mut i = 0;
    if let Some(body) = prog.funcs[fi].body.as_mut() {
        visit_blocks(body, &mut |b| {
            if i == target {
                f(b);
            }
            i += 1;
        });
    }
}

fn insert_stmt(prog: &mut Program, rng: &mut Rng) -> Option<String> {
    let funcs = defined_funcs(prog);
    if funcs.is_empty() {
        return None;
    }
    let fi = funcs[rng.gen_range(0..funcs.len())];
    // Clone an existing expression statement (sharing its ExprId is
    // fine: the program is re-parsed from text before analysis).
    let mut candidates: Vec<Stmt> = Vec::new();
    with_block(prog, fi, usize::MAX, &mut |_| {});
    let nblocks = count_blocks(prog, fi);
    for b in 0..nblocks {
        with_block(prog, fi, b, &mut |blk| {
            for s in &blk.stmts {
                if matches!(s, Stmt::Expr(_)) {
                    candidates.push(s.clone());
                }
            }
        });
    }
    if candidates.is_empty() {
        return None;
    }
    let stmt = candidates[rng.gen_range(0..candidates.len())].clone();
    let target = rng.gen_range(0..nblocks);
    let mut done = false;
    let pos_roll = rng.gen_range(0..1usize << 16);
    with_block(prog, fi, target, &mut |blk| {
        if done {
            return;
        }
        let pos = pos_roll % (blk.stmts.len() + 1);
        blk.stmts.insert(pos, stmt.clone());
        done = true;
    });
    done.then(|| format!("clone a statement in `{}`", prog.funcs[fi].name))
}

fn delete_stmt(prog: &mut Program, rng: &mut Rng) -> Option<String> {
    let funcs = defined_funcs(prog);
    if funcs.is_empty() {
        return None;
    }
    let fi = funcs[rng.gen_range(0..funcs.len())];
    let nblocks = count_blocks(prog, fi);
    // Deleting a `Local` would orphan its uses; anything else is fair
    // game (the compile check rejects the rare structural fallout).
    let mut spots: Vec<(usize, usize)> = Vec::new();
    for b in 0..nblocks {
        with_block(prog, fi, b, &mut |blk| {
            for (i, s) in blk.stmts.iter().enumerate() {
                if !matches!(s, Stmt::Local { .. }) {
                    spots.push((b, i));
                }
            }
        });
    }
    if spots.is_empty() {
        return None;
    }
    let (b, i) = spots[rng.gen_range(0..spots.len())];
    let mut done = false;
    with_block(prog, fi, b, &mut |blk| {
        if !done && i < blk.stmts.len() {
            blk.stmts.remove(i);
            done = true;
        }
    });
    done.then(|| format!("delete a statement in `{}`", prog.funcs[fi].name))
}

fn mutate_expr(prog: &mut Program, rng: &mut Rng) -> Option<String> {
    let mut lits: Vec<ExprId> = Vec::new();
    let mut bins: Vec<ExprId> = Vec::new();
    for (id, e) in prog.exprs.iter() {
        match &e.kind {
            ExprKind::IntLit(_) => lits.push(id),
            ExprKind::Binary { op, .. } if swap_op(*op).is_some() => bins.push(id),
            _ => {}
        }
    }
    let use_lit = bins.is_empty() || (!lits.is_empty() && rng.gen_bool(0.5));
    if use_lit && !lits.is_empty() {
        let id = lits[rng.gen_range(0..lits.len())];
        let bump = 1 + rng.gen_range(0..7) as i64;
        if let ExprKind::IntLit(v) = &mut prog.exprs.get_mut(id).kind {
            *v = v.wrapping_add(bump);
            return Some(format!("perturb an integer literal by {bump}"));
        }
        None
    } else if !bins.is_empty() {
        let id = bins[rng.gen_range(0..bins.len())];
        if let ExprKind::Binary { op, .. } = &mut prog.exprs.get_mut(id).kind {
            let new = swap_op(*op).expect("filtered to swappable");
            let desc = format!("swap `{}` for `{}`", op.symbol(), new.symbol());
            *op = new;
            return Some(desc);
        }
        None
    } else {
        None
    }
}

/// A same-shape substitute for a binary operator, when one exists.
fn swap_op(op: cfront::ast::BinOp) -> Option<cfront::ast::BinOp> {
    use cfront::ast::BinOp::*;
    Some(match op {
        Add => Sub,
        Sub => Add,
        Mul => Add,
        Lt => Le,
        Le => Lt,
        Gt => Ge,
        Ge => Gt,
        Eq => Ne,
        Ne => Eq,
        And => Or,
        Or => And,
        BitAnd => BitOr,
        BitOr => BitXor,
        BitXor => BitAnd,
        _ => return None,
    })
}

fn add_param(prog: &mut Program, rng: &mut Rng) -> Option<String> {
    let funcs: Vec<usize> = defined_funcs(prog)
        .into_iter()
        .filter(|&i| prog.funcs[i].name != "main")
        .collect();
    if funcs.is_empty() {
        return None;
    }
    let fi = funcs[rng.gen_range(0..funcs.len())];
    let fname = prog.funcs[fi].name.clone();
    let pname = format!("zz_p{}", prog.funcs[fi].n_params);
    let int = prog.types.int();
    let span = Span::new(0, 0);
    let np = prog.funcs[fi].n_params;
    prog.funcs[fi].vars.insert(
        np,
        VarSlot {
            name: pname,
            ty: int,
            span,
            is_param: true,
            addr_taken: false,
        },
    );
    prog.funcs[fi].n_params += 1;
    // Pass `0` at every direct call site. Indirect calls through a
    // function pointer would make the program type-invalid; the compile
    // check rejects those candidates and the harness retries.
    let mut sites: Vec<ExprId> = Vec::new();
    for (id, e) in prog.exprs.iter() {
        if let ExprKind::Call { callee, .. } = &e.kind {
            if let ExprKind::Ident { name, .. } = &prog.exprs.get(*callee).kind {
                if *name == fname {
                    sites.push(id);
                }
            }
        }
    }
    for id in sites {
        let zero = prog.exprs.alloc(ExprKind::IntLit(0), span);
        if let ExprKind::Call { args, .. } = &mut prog.exprs.get_mut(id).kind {
            args.push(zero);
        }
    }
    Some(format!("append an int parameter to `{fname}`"))
}

fn rename_local(prog: &mut Program, rng: &mut Rng) -> Option<String> {
    let funcs = defined_funcs(prog);
    if funcs.is_empty() {
        return None;
    }
    let fi = funcs[rng.gen_range(0..funcs.len())];
    // Candidates: parameters plus block-scoped declarations.
    let mut names: Vec<String> = prog.funcs[fi]
        .params()
        .iter()
        .map(|p| p.name.clone())
        .collect();
    let nblocks = count_blocks(prog, fi);
    for b in 0..nblocks {
        with_block(prog, fi, b, &mut |blk| {
            for s in &blk.stmts {
                if let Stmt::Local { name, .. } = s {
                    names.push(name.clone());
                }
            }
        });
    }
    if names.is_empty() {
        return None;
    }
    let old = names[rng.gen_range(0..names.len())].clone();
    let new = format!("zz_r{}", rng.gen_range(0..10_000));
    // Rename the declaration (slot or local stmt) and every identifier
    // use reachable from this function's body. Shadowing subtleties are
    // left to the compile check.
    for p in prog.funcs[fi].vars.iter_mut() {
        if p.name == old {
            p.name = new.clone();
        }
    }
    let mut roots: Vec<ExprId> = Vec::new();
    for b in 0..nblocks {
        with_block(prog, fi, b, &mut |blk| {
            for s in &mut blk.stmts {
                if let Stmt::Local { name, init, .. } = s {
                    if *name == old {
                        *name = new.clone();
                    }
                    if let Some(e) = init {
                        roots.push(*e);
                    }
                } else {
                    collect_stmt_exprs(s, &mut roots);
                }
            }
        });
    }
    let mut stack = roots;
    let mut seen: std::collections::HashSet<ExprId> = std::collections::HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        for k in expr_kids(&prog.exprs.get(id).kind) {
            stack.push(k);
        }
        if let ExprKind::Ident { name, .. } = &mut prog.exprs.get_mut(id).kind {
            if *name == old {
                *name = new.clone();
            }
        }
    }
    Some(format!(
        "rename `{old}` to `{new}` in `{}`",
        prog.funcs[fi].name
    ))
}

/// Root expressions of one statement (not recursing into blocks; the
/// block walk visits those separately).
fn collect_stmt_exprs(s: &Stmt, out: &mut Vec<ExprId>) {
    match s {
        Stmt::Expr(e) => out.push(*e),
        Stmt::Local { init, .. } => {
            if let Some(e) = init {
                out.push(*e);
            }
        }
        Stmt::If { cond, .. } => out.push(*cond),
        Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => out.push(*cond),
        Stmt::For {
            init, cond, step, ..
        } => {
            if let Some(s) = init {
                collect_stmt_exprs(s, out);
            }
            if let Some(e) = cond {
                out.push(*e);
            }
            if let Some(e) = step {
                out.push(*e);
            }
        }
        Stmt::Switch { scrutinee, .. } => out.push(*scrutinee),
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                out.push(*e);
            }
        }
        Stmt::Spawn { call, .. } => out.push(*call),
        Stmt::Break(_) | Stmt::Continue(_) | Stmt::Block(_) | Stmt::Join(_) => {}
    }
}

/// Child expressions of one expression kind.
fn expr_kids(kind: &ExprKind) -> Vec<ExprId> {
    match kind {
        ExprKind::Unary { arg, .. }
        | ExprKind::IncDec { arg, .. }
        | ExprKind::Cast { arg, .. }
        | ExprKind::SizeofExpr(arg) => vec![*arg],
        ExprKind::Binary { lhs, rhs, .. }
        | ExprKind::Assign { lhs, rhs, .. }
        | ExprKind::Comma { lhs, rhs } => vec![*lhs, *rhs],
        ExprKind::Call { callee, args } => {
            let mut v = vec![*callee];
            v.extend(args.iter().copied());
            v
        }
        ExprKind::Member { base, .. } => vec![*base],
        ExprKind::Index { base, index } => vec![*base, *index],
        ExprKind::Cond {
            cond,
            then_e,
            else_e,
        } => vec![*cond, *then_e, *else_e],
        ExprKind::InitList(es) => es.clone(),
        _ => Vec::new(),
    }
}

// FuncId is referenced for doc purposes only.
#[allow(unused)]
fn _doc(_: FuncId) {}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int g; int h; int *gp;\n\
        int pick(int c, int *a, int *b) { if (c) { gp = a; } else { gp = b; } return *gp; }\n\
        int main(void) { int x; x = pick(1, &g, &h); return x; }";

    #[test]
    fn every_edit_compiles() {
        let mut kinds_seen = std::collections::HashSet::new();
        for seed in 0..40u64 {
            let step = apply_random_edit(SRC, seed).expect("an edit applies");
            assert!(
                cfront::compile(&step.source).is_ok(),
                "seed {seed}: {:?} produced a non-compiling program",
                step.edit
            );
            kinds_seen.insert(step.edit.kind);
        }
        assert!(
            kinds_seen.len() >= 4,
            "expected edit-kind variety, saw {kinds_seen:?}"
        );
    }

    #[test]
    fn edits_are_deterministic() {
        let a = apply_random_edit(SRC, 7).unwrap();
        let b = apply_random_edit(SRC, 7).unwrap();
        assert_eq!(a.source, b.source);
        assert_eq!(a.edit.kind, b.edit.kind);
    }

    #[test]
    fn chains_stay_valid() {
        let chain = edit_chain(SRC, 11, 6);
        assert!(chain.len() >= 4, "chain stalled: {} steps", chain.len());
        for step in &chain {
            assert!(cfront::compile(&step.source).is_ok());
        }
    }

    #[test]
    fn generated_programs_are_editable() {
        let src = crate::generator::generate(3, &crate::generator::GenConfig::default());
        let chain = edit_chain(&src, 5, 4);
        assert!(!chain.is_empty());
    }
}
