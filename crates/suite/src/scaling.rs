//! Synthetic scaling benchmarks: chain and diamond pointer programs.
//!
//! The bundled paper suite tops out at a few thousand points-to pairs
//! per program, which is too small to separate worklist disciplines.
//! These generators produce families whose pair populations grow
//! quadratically with a size knob, in the two shapes that stress
//! propagation differently:
//!
//! * **chain** — a linear call chain `f0 -> f1 -> ... -> fN`. Every
//!   level conditionally injects a fresh address-taken local into the
//!   pointer it forwards, so the set arriving at level `i` holds `i+1`
//!   locations and the whole run circulates `O(N^2)` pairs. A naive
//!   worklist re-delivers each growing set once per insertion; delta
//!   propagation delivers each pair once.
//! * **diamond** — `N` levels of two functions each, every function
//!   calling both functions of the next level. Each merge point
//!   receives the union of both callers, so redundant re-sends (the
//!   thing `dedup_hits` counts) dominate a naive run.
//!
//! Generation is deterministic: a [`crate::rng`] stream seeded by the
//! caller picks the per-level pointer idiom (store-through, global
//! escape, or plain forwarding), so two runs with the same seed and
//! size emit byte-identical sources. Functions are emitted deepest
//! first because mini-C resolves calls only to already-defined
//! functions.

use crate::rng::Rng;
use std::fmt::Write as _;

/// A generated benchmark with owned source text (the bundled
/// [`crate::Benchmark`] embeds `&'static str` sources; generated
/// programs cannot).
#[derive(Debug, Clone)]
pub struct ScaledProgram {
    /// Name carrying the shape, size, and seed (e.g. `chain-064-s1`).
    pub name: String,
    /// mini-C source text.
    pub source: String,
}

/// A linear call chain of `depth` functions.
pub fn chain(depth: usize, seed: u64) -> ScaledProgram {
    assert!(depth >= 2, "chain needs at least two levels");
    let mut rng = Rng::seed_from_u64(seed ^ 0xc8a1);
    let mut out = String::new();
    out.push_str("int g; int *gp;\n\n");
    // Leaf first: everything below calls only already-defined names.
    let last = depth - 1;
    let _ = writeln!(
        out,
        "int *f{last}(int *a) {{\n    gp = a;\n    return a;\n}}\n"
    );
    for i in (0..last).rev() {
        let next = i + 1;
        let _ = writeln!(out, "int *f{i}(int *a) {{");
        let _ = writeln!(out, "    int l{i};");
        out.push_str("    int *p;\n    p = a;\n");
        let _ = writeln!(out, "    if (g > {i}) {{ p = &l{i}; }}");
        match rng.gen_range(0..3) {
            0 => {
                let _ = writeln!(out, "    *p = {i};");
            }
            1 => out.push_str("    gp = p;\n"),
            _ => {}
        }
        let _ = writeln!(out, "    return f{next}(p);\n}}\n");
    }
    out.push_str(
        "int main() {\n    int x;\n    int *r;\n    g = 0;\n    r = f0(&x);\n    gp = r;\n    return 0;\n}\n",
    );
    ScaledProgram {
        name: format!("chain-{depth:03}-s{seed}"),
        source: out,
    }
}

/// A diamond lattice: `depth` levels of two functions, each calling
/// both functions of the next level.
pub fn diamond(depth: usize, seed: u64) -> ScaledProgram {
    assert!(depth >= 2, "diamond needs at least two levels");
    let mut rng = Rng::seed_from_u64(seed ^ 0xd1a3);
    let mut out = String::new();
    out.push_str("int g; int *gp;\n\n");
    let last = depth - 1;
    for side in ["da", "db"] {
        let _ = writeln!(
            out,
            "int *{side}{last}(int *a) {{\n    gp = a;\n    return a;\n}}\n"
        );
    }
    for i in (0..last).rev() {
        let next = i + 1;
        for side in ["da", "db"] {
            let _ = writeln!(out, "int *{side}{i}(int *a) {{");
            let _ = writeln!(out, "    int l{side}{i};");
            out.push_str("    int *q;\n    int *r;\n    q = a;\n");
            let _ = writeln!(out, "    if (g > {i}) {{ q = &l{side}{i}; }}");
            if rng.gen_bool(0.5) {
                out.push_str("    gp = q;\n");
            }
            let _ = writeln!(out, "    r = da{next}(q);");
            let _ = writeln!(out, "    if (g > {next}) {{ r = db{next}(q); }}");
            out.push_str("    return r;\n}\n\n");
        }
    }
    out.push_str(
        "int main() {\n    int x;\n    int *r;\n    g = 0;\n    r = da0(&x);\n    if (g > 0) { r = db0(&x); }\n    gp = r;\n    return 0;\n}\n",
    );
    ScaledProgram {
        name: format!("diamond-{depth:03}-s{seed}"),
        source: out,
    }
}

/// The standard scaling sweep the `report` binary runs with
/// `--scaling`: three chain sizes and three diamond sizes.
pub fn standard_suite(seed: u64) -> Vec<ScaledProgram> {
    let mut v = Vec::new();
    for depth in [32, 64, 128] {
        v.push(chain(depth, seed));
    }
    for depth in [8, 16, 24] {
        v.push(diamond(depth, seed));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(chain(32, 7).source, chain(32, 7).source);
        assert_eq!(diamond(8, 7).source, diamond(8, 7).source);
        assert_ne!(chain(32, 7).source, chain(32, 8).source);
    }

    #[test]
    fn scaled_programs_compile_and_lower() {
        for p in standard_suite(1) {
            let prog = cfront::compile(&p.source)
                .unwrap_or_else(|e| panic!("{}: does not compile: {e:?}", p.name));
            vdg::lower(&prog, &vdg::BuildOptions::default())
                .unwrap_or_else(|e| panic!("{}: does not lower: {e:?}", p.name));
        }
    }

    #[test]
    fn chain_pair_population_grows_quadratically() {
        let small = run_ci(&chain(16, 1).source);
        let large = run_ci(&chain(64, 1).source);
        // 4x the depth should give clearly more than 4x the pairs.
        assert!(
            large > 6 * small,
            "chain pairs do not scale: {small} at depth 16, {large} at depth 64"
        );
    }

    fn run_ci(src: &str) -> usize {
        let prog = cfront::compile(src).unwrap();
        let g = vdg::lower(&prog, &vdg::BuildOptions::default()).unwrap();
        alias::SolverSpec::ci().solve_ci(&g).total_pairs()
    }
}
