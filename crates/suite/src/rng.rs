//! A minimal deterministic PRNG for the program generator.
//!
//! The generator only needs reproducible, seedable, roughly-uniform
//! draws — not cryptographic or statistical-suite quality — so a
//! dependency-free SplitMix64 keeps the crate self-contained. Streams
//! are stable across platforms and releases: generated programs are
//! part of the test corpus, so the sequence for a given seed must never
//! change.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 generator (Steele, Lea & Flood; public-domain reference
/// constants).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from a half-open or inclusive `usize` range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> usize {
        let (lo, hi_inclusive) = range.bounds();
        assert!(lo <= hi_inclusive, "gen_range on an empty range");
        let span = (hi_inclusive - lo) as u64 + 1;
        // Multiply-shift mapping; bias is < 2^-32 for the tiny spans the
        // generator uses, and determinism is what actually matters here.
        let r = ((self.next_u64() >> 32) * span) >> 32;
        lo + r as usize
    }

    /// A biased coin flip: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

/// Ranges [`Rng::gen_range`] accepts, as `(low, high_inclusive)`.
pub trait SampleRange {
    /// The inclusive bounds of the range.
    fn bounds(self) -> (usize, usize);
}

impl SampleRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "gen_range on an empty range");
        (self.start, self.end - 1)
    }
}

impl SampleRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(1);
        let mut c = Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = r.gen_range(1..=4);
            assert!((1..=4).contains(&y));
        }
        assert_eq!(r.gen_range(5..6), 5);
        assert_eq!(r.gen_range(5..=5), 5);
    }

    #[test]
    fn coin_flip_is_sane() {
        let mut r = Rng::seed_from_u64(11);
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads = {heads}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
