//! Per-benchmark validation: every suite program must compile, lower,
//! run to its expected exit status, and satisfy the interpreter-based
//! soundness oracle under the CI analysis. (The heavier CS checks live
//! in the repository-level integration tests.)

use alias::SolverSpec;
use interp::{check_solution, run, Config};
use vdg::build::{lower, BuildOptions};

fn validate(name: &str) {
    let b = suite::by_name(name).expect("benchmark exists");
    let prog = cfront::compile(b.source).unwrap_or_else(|e| {
        panic!(
            "{name} does not compile:\n{}",
            e.render(&cfront::SourceFile::new(name, b.source))
        )
    });
    let graph = lower(&prog, &BuildOptions::default())
        .unwrap_or_else(|e| panic!("{name} does not lower: {e}"));
    let out = run(
        &prog,
        &Config {
            input: b.input.to_vec(),
            ..Config::default()
        },
    )
    .unwrap_or_else(|e| panic!("{name} failed to run: {e}"));
    assert_eq!(
        out.exit, b.expected_exit,
        "{name}: exit {} != expected {}\nstdout:\n{}",
        out.exit, b.expected_exit, out.stdout
    );
    let ci = SolverSpec::ci().solve_ci(&graph);
    let violations = check_solution(&prog, &graph, &ci, &out.trace);
    assert!(
        violations.is_empty(),
        "{name}: CI soundness violations: {violations:#?}"
    );
}

macro_rules! validate_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            validate(stringify!($name));
        }
    };
}

validate_test!(allroots);
validate_test!(anagram);
validate_test!(assembler);
validate_test!(backprop);
validate_test!(bc);
validate_test!(compiler);
validate_test!(compress);
validate_test!(lex315);
validate_test!(loader);
validate_test!(part);
validate_test!(simulator);
validate_test!(span);
validate_test!(yacr2);
