//! Developer probe (ignored by default): prints CI/CS sizes, timings,
//! spurious percentages, and headline mismatches for every benchmark.
//!
//! ```sh
//! cargo test -p suite --release --test probe -- --ignored --nocapture
//! ```

use alias::SolverSpec;
use vdg::build::{lower, BuildOptions};

#[test]
#[ignore]
fn probe_all() {
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        let t0 = std::time::Instant::now();
        let ci = SolverSpec::ci().solve_ci(&graph);
        let ci_t = t0.elapsed();
        let t1 = std::time::Instant::now();
        let cs = SolverSpec::cs()
            .solve(&graph, Some(&ci))
            .map(|s| s.into_cs().expect("cs result"));
        let cs_t = t1.elapsed();
        match cs {
            Ok(cs) => {
                let mismatches = alias::stats::compare_at_indirect_refs(&graph, &ci, &cs);
                let row = alias::stats::spurious_row(&graph, &ci, &cs);
                let by_kind = alias::stats::spurious_by_kind(&graph, &ci, &cs);
                println!(
                    "{:<10} ci_pairs={:<6} cs_pairs={:<6} spur%={:<5.1} mism={} ci={:?} cs={:?} flows ci={}ins/{}outs cs={}ins/{}outs spur_kinds p{} f{} a{} s{}",
                    b.name, ci.total_pairs(), cs.total_pairs(), row.percent_spurious,
                    mismatches.len(), ci_t, cs_t, ci.flow_ins, ci.flow_outs, cs.flow_ins, cs.flow_outs,
                    by_kind.pointer, by_kind.function, by_kind.aggregate, by_kind.store,
                );
                for m in mismatches.iter().take(3) {
                    println!(
                        "   MISMATCH {:?} ci={:?} cs={:?}",
                        m.node, m.ci_referents, m.cs_referents
                    );
                }
            }
            Err(e) => println!("{:<10} CS OVERFLOW: {e}", b.name),
        }
    }
}
