/* yacr2 -- reconstruction of Todd Austin's channel router.
 *
 * Pointer idioms: an array of net records sorted through a pointer
 * table (left-edge algorithm), track lists built via int* rows of a
 * heap matrix, and constraint checks through struct pointers. */

#define MAXNETS 16
#define MAXTRACKS 16
#define CHANWIDTH 32

struct net {
    int id;
    int left;
    int right;
    int track;
};

struct net nets[MAXNETS];
struct net *order[MAXNETS];
int nnets;

int *track_used;   /* CHANWIDTH ints per track, heap */
int ntracks;

/* ----- problem construction ----- */

void add_net(int id, int left, int right) {
    struct net *n;
    n = &nets[nnets++];
    n->id = id;
    n->left = left;
    n->right = right;
    n->track = -1;
}

void build_problem(void) {
    nnets = 0;
    add_net(0, 0, 6);
    add_net(1, 2, 9);
    add_net(2, 7, 12);
    add_net(3, 1, 4);
    add_net(4, 5, 11);
    add_net(5, 10, 15);
    add_net(6, 3, 8);
    add_net(7, 13, 18);
    add_net(8, 0, 2);
    add_net(9, 16, 20);
    add_net(10, 14, 17);
    add_net(11, 19, 22);
}

/* ----- sort nets by left edge through the pointer table ----- */

void sort_nets(void) {
    int i;
    int j;
    for (i = 0; i < nnets; i++) {
        order[i] = &nets[i];
    }
    for (i = 1; i < nnets; i++) {
        struct net *key;
        key = order[i];
        j = i - 1;
        while (j >= 0 && order[j]->left > key->left) {
            order[j + 1] = order[j];
            j--;
        }
        order[j + 1] = key;
    }
}

/* Fetch the i-th net in left-edge order into a caller slot. */
void net_at(struct net **slot, int i) {
    *slot = order[i];
}

/* ----- track management ----- */

int *track_row(int t) {
    return track_used + t * CHANWIDTH;
}

void clear_tracks(void) {
    int t;
    int c;
    track_used = (int*)malloc(MAXTRACKS * CHANWIDTH * 4);
    for (t = 0; t < MAXTRACKS; t++) {
        int *row;
        row = track_row(t);
        for (c = 0; c < CHANWIDTH; c++) {
            row[c] = 0;
        }
    }
    ntracks = 0;
}

/* Whether net n fits on track t. */
int fits(struct net *n, int t) {
    int *row;
    int c;
    row = track_row(t);
    for (c = n->left; c <= n->right; c++) {
        if (row[c]) {
            return 0;
        }
    }
    return 1;
}

/* Claim n's span on track t. */
void place(struct net *n, int t) {
    int *row;
    int c;
    row = track_row(t);
    for (c = n->left; c <= n->right; c++) {
        row[c] = n->id + 1;
    }
    n->track = t;
    if (t + 1 > ntracks) {
        ntracks = t + 1;
    }
}

/* Left-edge channel routing; returns tracks used. */
int route(void) {
    int i;
    for (i = 0; i < nnets; i++) {
        struct net *n;
        int t;
        net_at(&n, i);
        for (t = 0; t < MAXTRACKS; t++) {
            if (fits(n, t)) {
                place(n, t);
                break;
            }
        }
        if (n->track < 0) {
            return -1;
        }
    }
    return ntracks;
}

/* ----- verification: no two nets overlap on one track ----- */

int overlaps(struct net *a, struct net *b) {
    return a->left <= b->right && b->left <= a->right;
}

int verify(void) {
    int i;
    int j;
    for (i = 0; i < nnets; i++) {
        for (j = i + 1; j < nnets; j++) {
            if (nets[i].track == nets[j].track
                && overlaps(&nets[i], &nets[j])) {
                return 0;
            }
        }
    }
    return 1;
}

/* Sum of spans, fetched through the same ordering utility. */
int total_span(void) {
    int i;
    int sum;
    struct net *cursor;
    sum = 0;
    for (i = 0; i < nnets; i++) {
        net_at(&cursor, i);
        sum += cursor->right - cursor->left;
    }
    return sum;
}

int density(void) {
    int col;
    int best;
    best = 0;
    for (col = 0; col < CHANWIDTH; col++) {
        int d;
        int i;
        d = 0;
        for (i = 0; i < nnets; i++) {
            if (nets[i].left <= col && col <= nets[i].right) {
                d++;
            }
        }
        if (d > best) {
            best = d;
        }
    }
    return best;
}

int main(void) {
    int used;
    int dens;
    build_problem();
    sort_nets();
    clear_tracks();
    used = route();
    dens = density();
    printf("nets=%d tracks=%d density=%d ok=%d span=%d\n",
           nnets, used, dens, verify(), total_span());
    if (used < 0 || !verify()) {
        return 1;
    }
    /* Left-edge routing is optimal for this constraint-free channel:
     * the track count must equal the channel density. */
    if (used != dens) {
        return 2;
    }
    return 0;
}
