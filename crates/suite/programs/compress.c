/* compress -- reconstruction of the SPEC92 LZW compressor.
 *
 * Pointer idioms: code tables as flat arrays indexed through pointers,
 * char* cursors over input/output buffers, a hash probe loop. Pointers
 * are single-level onto scalar (char / int) storage. */

#define HSIZE 257
#define MAXCODES 256
#define INLEN 96
#define OUTLEN 256

char input_buf[INLEN];
int output_codes[OUTLEN];
char recon_buf[OUTLEN];

int hash_code[HSIZE];   /* code stored at this slot, -1 = empty   */
int hash_prefix[HSIZE]; /* prefix code of the stored entry        */
int hash_ch[HSIZE];     /* extension character of the entry       */

int next_code;
int n_out;

/* Read stdin into the input buffer; fall back to a deterministic
 * repetitive text when stdin is empty (the original read a file). */
void make_input(void) {
    char *pat;
    int i;
    int j;
    int c;
    i = 0;
    while (i < INLEN - 1 && (c = getchar()) != -1) {
        input_buf[i++] = c;
    }
    if (i > 0) {
        input_buf[i] = 0;
        return;
    }
    pat = "the cat sat on the mat ";
    j = 0;
    for (i = 0; i < INLEN - 1; i++) {
        input_buf[i] = pat[j];
        j++;
        if (pat[j] == 0) {
            j = 0;
        }
    }
    input_buf[INLEN - 1] = 0;
}

void clear_table(void) {
    int i;
    for (i = 0; i < HSIZE; i++) {
        hash_code[i] = -1;
    }
    next_code = 256;
}

/* Probe the table for (prefix, ch); returns slot index. */
int probe(int prefix, int ch) {
    int h;
    h = ((prefix << 4) ^ ch) % HSIZE;
    if (h < 0) {
        h += HSIZE;
    }
    while (hash_code[h] != -1) {
        if (hash_prefix[h] == prefix && hash_ch[h] == ch) {
            return h;
        }
        h = (h + 1) % HSIZE;
    }
    return h;
}

/* Hand out a cursor into the code stream (out-parameter; every caller
 * receives a pointer into the same output array). */
void code_cursor(int **slot, int at) {
    *slot = &output_codes[at];
}

void emit(int code) {
    int *cell;
    code_cursor(&cell, n_out);
    *cell = code;
    n_out++;
}

/* LZW compression over the input buffer; returns emitted code count. */
int compress(void) {
    char *in;
    int prefix;
    n_out = 0;
    clear_table();
    in = input_buf;
    prefix = *in++;
    while (*in != 0) {
        int ch;
        int slot;
        ch = *in++;
        slot = probe(prefix, ch);
        if (hash_code[slot] != -1) {
            prefix = hash_code[slot];
        } else {
            emit(prefix);
            if (next_code < MAXCODES + 256) {
                hash_code[slot] = next_code;
                hash_prefix[slot] = prefix;
                hash_ch[slot] = ch;
                next_code++;
            }
            prefix = ch;
        }
    }
    emit(prefix);
    return n_out;
}

/* Expand a code into recon_buf at position pos; returns new pos. */
int expand_code(int code, int pos) {
    char stack[64];
    int sp;
    sp = 0;
    while (code >= 256) {
        int slot;
        int found;
        found = -1;
        /* Reverse lookup: find the slot holding this code. */
        for (slot = 0; slot < HSIZE; slot++) {
            if (hash_code[slot] == code) {
                found = slot;
                break;
            }
        }
        if (found < 0) {
            return -1;
        }
        stack[sp++] = hash_ch[found];
        code = hash_prefix[found];
    }
    recon_buf[pos++] = code;
    while (sp > 0) {
        recon_buf[pos++] = stack[--sp];
    }
    return pos;
}

/* Decompress all codes; returns reconstructed length. */
int decompress(void) {
    int i;
    int pos;
    int *cur;
    pos = 0;
    for (i = 0; i < n_out; i++) {
        code_cursor(&cur, i);
        pos = expand_code(*cur, pos);
        if (pos < 0) {
            return -1;
        }
    }
    recon_buf[pos] = 0;
    return pos;
}

int main(void) {
    int codes;
    int relen;
    int i;
    int inlen;
    make_input();
    inlen = strlen(input_buf);
    codes = compress();
    relen = decompress();
    printf("in=%d codes=%d out=%d\n", inlen, codes, relen);
    if (relen != inlen) {
        return 1;
    }
    for (i = 0; i < relen; i++) {
        if (recon_buf[i] != input_buf[i]) {
            return 2;
        }
    }
    printf("roundtrip ok, ratio x100 = %d\n", codes * 100 / inlen);
    return 0;
}
