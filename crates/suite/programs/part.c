/* part -- reconstruction of Todd Austin's `part` benchmark.
 *
 * The paper singles this program out (§5.2): it "independently constructs
 * two linked lists that are both manipulated via the same set of
 * routines", and early in its execution it "exchanges elements between
 * the lists, forcing each list's locations to model all of the values
 * held by the other list's locations" — so the cross-pollution that
 * context-insensitivity introduces is already true at runtime. */

struct item {
    int id;
    int weight;
    struct item *next;
};

struct item *free_list;
int made;

struct item *new_item(int id, int weight) {
    struct item *it;
    if (free_list != NULL) {
        it = free_list;
        free_list = it->next;
    } else {
        it = (struct item*)malloc(sizeof(struct item));
    }
    it->id = id;
    it->weight = weight;
    it->next = NULL;
    made++;
    return it;
}

/* Shared routines used by BOTH lists. */
struct item *push(struct item *head, struct item *it) {
    it->next = head;
    return it;
}

struct item *pop(struct item *head, struct item **out) {
    if (head == NULL) {
        *out = NULL;
        return NULL;
    }
    *out = head;
    return head->next;
}

int total_weight(struct item *head) {
    int sum;
    sum = 0;
    while (head != NULL) {
        sum += head->weight;
        head = head->next;
    }
    return sum;
}

int count(struct item *head) {
    int n;
    n = 0;
    while (head != NULL) {
        n++;
        head = head->next;
    }
    return n;
}

struct item *reverse(struct item *head) {
    struct item *prev;
    struct item *next;
    prev = NULL;
    while (head != NULL) {
        next = head->next;
        head->next = prev;
        prev = head;
        head = next;
    }
    return prev;
}

/* Partition: move items heavier than limit from *from onto *onto
 * (the element exchange between the two lists). */
void exchange_heavy(struct item **from, struct item **onto, int limit) {
    struct item *kept;
    struct item *cur;
    kept = NULL;
    cur = *from;
    while (cur != NULL) {
        struct item *next;
        next = cur->next;
        if (cur->weight > limit) {
            cur->next = *onto;
            *onto = cur;
        } else {
            cur->next = kept;
            kept = cur;
        }
        cur = next;
    }
    *from = reverse(kept);
}

/* By-value snapshot of an item; aggregate values carry their pointer
 * fields through the dataflow (Figure 3's aggregate column). */
struct item snapshot(struct item *it) {
    return *it;
}

int main(void) {
    struct item *light;
    struct item *heavy;
    struct item *it;
    int i;
    int wl;
    int wh;
    light = NULL;
    heavy = NULL;
    free_list = NULL;
    made = 0;

    /* Build the two lists independently. */
    for (i = 0; i < 10; i++) {
        light = push(light, new_item(i, (i * 7) % 13));
    }
    for (i = 10; i < 18; i++) {
        heavy = push(heavy, new_item(i, 20 + (i * 3) % 9));
    }

    /* Exchange elements between the lists, both directions. */
    exchange_heavy(&light, &heavy, 9);
    exchange_heavy(&heavy, &light, 21);

    light = reverse(light);
    heavy = reverse(heavy);

    wl = total_weight(light);
    wh = total_weight(heavy);
    if (light != NULL) {
        struct item snap;
        snap = snapshot(light);
        if (snap.next != NULL && snap.weight > 100) {
            return 3;
        }
    }
    printf("light: n=%d w=%d\n", count(light), wl);
    printf("heavy: n=%d w=%d\n", count(heavy), wh);

    /* Recycle one list through the free list, rebuild, and re-count. */
    while (light != NULL) {
        light = pop(light, &it);
        it->next = free_list;
        free_list = it;
    }
    for (i = 0; i < 4; i++) {
        light = push(light, new_item(100 + i, i));
    }
    printf("rebuilt: n=%d made=%d\n", count(light), made);

    if (wl + wh != total_weight(light) + wh + wl - total_weight(light)) {
        return 1;
    }
    return 0;
}
