/* simulator -- reconstruction of the Landi-suite machine simulator.
 *
 * Pointer idioms: a register file and memory image addressed through
 * int*, a function-pointer dispatch table (one of the few indirect-call
 * users in the suite, as the paper notes), and decode buffers passed to
 * helper routines. */

#define MEMSIZE 128
#define NREGS 8

#define I_HALT 0
#define I_LOADI 1
#define I_MOV 2
#define I_ADD 3
#define I_SUB 4
#define I_LOAD 5
#define I_STORE 6
#define I_JNZ 7
#define I_OUT 8
#define I_JZ 9
#define I_MUL 10
#define NINSTR 11

int memory[MEMSIZE];
int regs[NREGS];
int pc;
int running;
int out_sum;
int cycles;

/* Current decoded instruction. */
struct decoded {
    int op;
    int a;
    int b;
};

struct decoded cur;

/* ----- per-opcode handlers, dispatched through a table ----- */

void op_halt(struct decoded *d) {
    running = 0;
}

void op_loadi(struct decoded *d) {
    regs[d->a] = d->b;
}

void op_mov(struct decoded *d) {
    regs[d->a] = regs[d->b];
}

void op_add(struct decoded *d) {
    regs[d->a] += regs[d->b];
}

void op_sub(struct decoded *d) {
    regs[d->a] -= regs[d->b];
}

/* Hand out a memory cell (out-parameter; all callers receive pointers
 * into the one memory image). */
void mem_cell(int **slot, int addr) {
    *slot = &memory[addr % MEMSIZE];
}

void op_load(struct decoded *d) {
    int *cell;
    mem_cell(&cell, regs[d->b]);
    regs[d->a] = *cell;
}

void op_store(struct decoded *d) {
    int *cell;
    mem_cell(&cell, regs[d->b]);
    *cell = regs[d->a];
}

void op_jnz(struct decoded *d) {
    if (regs[d->a] != 0) {
        pc = d->b;
    }
}

void op_jz(struct decoded *d) {
    if (regs[d->a] == 0) {
        pc = d->b;
    }
}

void op_mul(struct decoded *d) {
    regs[d->a] *= regs[d->b];
}

void op_out(struct decoded *d) {
    out_sum += regs[d->a];
}

void (*dispatch[NINSTR])(struct decoded *) = {
    op_halt, op_loadi, op_mov, op_add, op_sub,
    op_load, op_store, op_jnz, op_out, op_jz, op_mul
};

/* Fetch the handler for an opcode into a caller slot (function-pointer
 * out-parameter; the values all come from the one dispatch table). */
void handler_for(void (**slot)(struct decoded *), int op) {
    *slot = dispatch[op];
}

/* ----- fetch/decode/execute ----- */

void fetch_decode(struct decoded *d) {
    d->op = memory[pc++];
    d->a = 0;
    d->b = 0;
    if (d->op == I_HALT) {
        return;
    }
    d->a = memory[pc++];
    if (d->op != I_OUT) {
        d->b = memory[pc++];
    }
}

int step(void) {
    void (*handler)(struct decoded *);
    if (pc < 0 || pc >= MEMSIZE) {
        running = 0;
        return 0;
    }
    fetch_decode(&cur);
    if (cur.op < 0 || cur.op >= NINSTR) {
        running = 0;
        return 0;
    }
    handler_for(&handler, cur.op);
    handler(&cur);
    cycles++;
    return 1;
}

/* ----- program loading ----- */

int load_at;

void emit3(int op, int a, int b) {
    memory[load_at++] = op;
    memory[load_at++] = a;
    memory[load_at++] = b;
}

void emit2(int op, int a) {
    memory[load_at++] = op;
    memory[load_at++] = a;
}

void load_sum_program(void) {
    /* sum 1..10 into r1, write result to memory[100], print it */
    emit3(I_LOADI, 0, 10);   /* r0 = 10        */
    emit3(I_LOADI, 1, 0);    /* r1 = 0         */
    emit3(I_LOADI, 2, 1);    /* r2 = 1         */
    emit3(I_LOADI, 3, 100);  /* r3 = 100       */
    /* loop at pc=12: */
    emit3(I_ADD, 1, 0);      /* r1 += r0       */
    emit3(I_SUB, 0, 2);      /* r0 -= 1        */
    emit3(I_JNZ, 0, 12);     /* if r0 jmp loop */
    emit3(I_STORE, 1, 3);    /* mem[r3] = r1   */
    emit3(I_LOAD, 4, 3);     /* r4 = mem[r3]   */
    emit2(I_OUT, 4);         /* out r4         */
    emit2(I_HALT, 0);
}

void load_factorial_program(void) {
    /* 6! into r1 via MUL/JZ, stash in memory[101] */
    emit3(I_LOADI, 0, 6);    /* r0 = 6             */
    emit3(I_LOADI, 1, 1);    /* r1 = 1             */
    emit3(I_LOADI, 2, 1);    /* r2 = 1             */
    emit3(I_LOADI, 3, 101);  /* r3 = 101           */
    /* loop at pc=12: */
    emit3(I_JZ, 0, 24);      /* if !r0 jmp done    */
    emit3(I_MUL, 1, 0);      /* r1 *= r0           */
    emit3(I_SUB, 0, 2);      /* r0 -= 1            */
    emit3(I_JNZ, 2, 12);     /* jmp loop (r2 == 1) */
    /* done at pc=24: */
    emit3(I_MOV, 5, 1);      /* r5 = r1            */
    emit3(I_STORE, 5, 3);    /* mem[r3] = r5       */
    emit2(I_OUT, 5);         /* out r5             */
    emit2(I_HALT, 0);
}

void clear_machine(void) {
    int i;
    for (i = 0; i < MEMSIZE; i++) {
        memory[i] = 0;
    }
    for (i = 0; i < NREGS; i++) {
        regs[i] = 0;
    }
    load_at = 0;
    pc = 0;
    running = 1;
}

/* Run whatever is loaded; returns the consumed cycles. */
int run_machine(void) {
    int start;
    start = cycles;
    while (running) {
        if (!step()) {
            break;
        }
        if (cycles - start > 10000) {
            return -1;
        }
    }
    return cycles - start;
}

/* Checksum the low memory words through the shared cell accessor. */
int mem_census(void) {
    int addr;
    int sum;
    int *probe;
    sum = 0;
    for (addr = 0; addr < 8; addr++) {
        mem_cell(&probe, addr);
        sum = sum * 5 + *probe;
    }
    return sum % 1000;
}

int main(void) {
    int sum_result;
    int fact_result;
    out_sum = 0;
    cycles = 0;

    clear_machine();
    load_sum_program();
    if (run_machine() < 0) {
        return 9;
    }
    sum_result = memory[100];

    clear_machine();
    load_factorial_program();
    if (run_machine() < 0) {
        return 9;
    }
    fact_result = memory[101];

    printf("cycles=%d out=%d sum=%d fact=%d census=%d\n",
           cycles, out_sum, sum_result, fact_result, mem_census());
    if (sum_result != 55 || fact_result != 720) {
        return 1;
    }
    if (out_sum != 55 + 720) {
        return 2;
    }
    return 0;
}
