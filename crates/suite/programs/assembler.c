/* assembler -- reconstruction of the Landi-suite two-pass assembler.
 *
 * Pointer idioms: an opcode table of structs searched by mnemonic, a
 * label symbol list on the heap, char* scanning cursors, and a tagged
 * union for decoded operands (exercising the union-aliasing model of
 * paper §2). */

#define NOPS 8
#define MAXLINES 32
#define MAXLABELS 16
#define MAXWORDS 64

#define OPD_NONE 0
#define OPD_REG 1
#define OPD_IMM 2
#define OPD_LABEL 3

struct opdef {
    char *mnemonic;
    int code;
    int operands;
};

struct opdef optable[NOPS] = {
    { "halt", 0, 0 },
    { "load", 1, 2 },
    { "store", 2, 2 },
    { "add", 3, 2 },
    { "sub", 4, 2 },
    { "jmp", 5, 1 },
    { "jnz", 6, 1 },
    { "out", 7, 1 }
};

union opval {
    int reg;
    int imm;
    char label[8];
};

struct operand {
    int tag;
    union opval v;
};

struct label {
    char name[8];
    int addr;
    struct label *next;
};

char *program_lines[MAXLINES] = {
    "start:",
    "  load r0 #10",
    "  load r1 #0",
    "loop:",
    "  add r1 r0",
    "  sub r0 #1",
    "  jnz loop",
    "  out r1",
    "  store r1 @acc",
    "  jmp done",
    "  out r0",
    "done:",
    "  out r1",
    "  halt",
    NULL
};

struct label *labels;
int words[MAXWORDS];
int nwords;
int errors;

/* ----- small string helpers over scan cursors ----- */

char *skip_blanks(char *p) {
    while (*p == ' ' || *p == '\t') {
        p++;
    }
    return p;
}

/* Copy the next word (letters/digits/_/@/#/:) into buf; return cursor. */
char *take_word(char *p, char *buf, int cap) {
    int n;
    n = 0;
    while (*p != 0 && *p != ' ' && *p != '\t') {
        if (n < cap - 1) {
            buf[n++] = *p;
        }
        p++;
    }
    buf[n] = 0;
    return p;
}

/* ----- label table (single allocation site) ----- */

void def_label(char *name, int addr) {
    struct label *l;
    l = labels;
    while (l != NULL) {
        if (strcmp(l->name, name) == 0) {
            errors++;
            return;
        }
        l = l->next;
    }
    l = (struct label*)malloc(sizeof(struct label));
    strncpy(l->name, name, 7);
    l->name[7] = 0;
    l->addr = addr;
    l->next = labels;
    labels = l;
}

int lookup_label(char *name) {
    struct label *l;
    l = labels;
    while (l != NULL) {
        if (strcmp(l->name, name) == 0) {
            return l->addr;
        }
        l = l->next;
    }
    errors++;
    return 0;
}

/* ----- mnemonic lookup: returns a pointer into the optable ----- */

struct opdef *find_op(char *name) {
    int i;
    for (i = 0; i < NOPS; i++) {
        if (strcmp(optable[i].mnemonic, name) == 0) {
            return &optable[i];
        }
    }
    return NULL;
}

/* Fetch the opcode definition into a caller-provided slot; both passes
 * share this lookup, and every slot receives pointers into the one
 * static table. */
void opdef_for(struct opdef **slot, char *name) {
    *slot = find_op(name);
}

/* ----- operand decoding into the tagged union ----- */

void decode_operand(char *text, struct operand *out) {
    if (text[0] == 'r' && text[1] >= '0' && text[1] <= '9') {
        out->tag = OPD_REG;
        out->v.reg = text[1] - '0';
        return;
    }
    if (text[0] == '#') {
        int v;
        int i;
        v = 0;
        i = 1;
        while (text[i] >= '0' && text[i] <= '9') {
            v = v * 10 + (text[i] - '0');
            i++;
        }
        out->tag = OPD_IMM;
        out->v.imm = v;
        return;
    }
    out->tag = OPD_LABEL;
    strncpy(out->v.label, text, 7);
    out->v.label[7] = 0;
}

int operand_word(struct operand *o) {
    if (o->tag == OPD_REG) {
        return o->v.reg;
    }
    if (o->tag == OPD_IMM) {
        return 1000 + o->v.imm;
    }
    return 2000 + lookup_label(o->v.label);
}

/* Whether the line defines a label ("name:"). */
int is_label_line(char *buf) {
    int n;
    n = strlen(buf);
    return n > 0 && buf[n - 1] == ':';
}

/* ----- pass 1: assign addresses to labels ----- */

void pass_one(void) {
    int line;
    int addr;
    char buf[16];
    addr = 0;
    for (line = 0; program_lines[line] != NULL; line++) {
        char *p;
        p = skip_blanks(program_lines[line]);
        if (*p == 0) {
            continue;
        }
        take_word(p, buf, 16);
        if (is_label_line(buf)) {
            buf[strlen(buf) - 1] = 0;
            def_label(buf, addr);
        } else {
            struct opdef *op;
            opdef_for(&op, buf);
            if (op == NULL) {
                errors++;
            } else {
                addr = addr + 1 + op->operands;
            }
        }
    }
}

/* ----- pass 2: encode instructions ----- */

void emit_word(int w) {
    if (nwords < MAXWORDS) {
        words[nwords++] = w;
    }
}

void pass_two(void) {
    int line;
    char buf[16];
    struct operand opnd;
    for (line = 0; program_lines[line] != NULL; line++) {
        char *p;
        struct opdef *op;
        int k;
        p = skip_blanks(program_lines[line]);
        if (*p == 0) {
            continue;
        }
        p = take_word(p, buf, 16);
        if (is_label_line(buf)) {
            continue;
        }
        opdef_for(&op, buf);
        if (op == NULL) {
            continue;
        }
        emit_word(op->code * 100);
        for (k = 0; k < op->operands; k++) {
            p = skip_blanks(p);
            p = take_word(p, buf, 16);
            decode_operand(buf, &opnd);
            emit_word(operand_word(&opnd));
        }
    }
}

/* ----- disassembler: decode the words back to text, re-counting ----- */

struct opdef *op_by_code(int code) {
    int i;
    for (i = 0; i < NOPS; i++) {
        if (optable[i].code == code) {
            return &optable[i];
        }
    }
    return NULL;
}

/* Renders one operand word; returns its contribution to the checksum. */
int show_operand(int w) {
    if (w >= 2000) {
        printf(" @%d", w - 2000);
        return w - 2000;
    }
    if (w >= 1000) {
        printf(" #%d", w - 1000);
        return w - 1000;
    }
    printf(" r%d", w);
    return w;
}

/* Walks the emitted words, printing mnemonics; returns an operand sum
 * (a second, independent traversal of the encoded program). */
int disassemble(void) {
    int i;
    int sum;
    sum = 0;
    i = 0;
    while (i < nwords) {
        struct opdef *op;
        int k;
        op = op_by_code(words[i] / 100);
        if (op == NULL) {
            printf("?? %d\n", words[i]);
            i++;
            continue;
        }
        printf("%4d: %s", i, op->mnemonic);
        i++;
        for (k = 0; k < op->operands && i < nwords; k++) {
            sum += show_operand(words[i]);
            i++;
        }
        printf("\n");
    }
    return sum;
}

int checksum(void) {
    int i;
    int sum;
    sum = 0;
    for (i = 0; i < nwords; i++) {
        sum = (sum * 7 + words[i]) % 99991;
    }
    return sum;
}

int main(void) {
    labels = NULL;
    nwords = 0;
    errors = 0;
    pass_one();
    pass_two();
    printf("words=%d errors=%d labels(start)=%d labels(loop)=%d sum=%d\n",
           nwords, errors, lookup_label("start"), lookup_label("loop"),
           checksum());
    printf("opsum=%d\n", disassemble());
    if (errors != 1) {
        /* exactly one: the @acc label is never defined */
        return 1;
    }
    if (nwords != 26) {
        return 2;
    }
    return 0;
}
