/* anagram -- reconstruction of Todd Austin's anagram finder.
 *
 * Pointer idioms: arrays of char*, heap-duplicated strings, character
 * pointers walked by utility routines, an insertion sort over a pointer
 * table. Pointers are almost entirely single-level and reference
 * character (scalar) storage, the shape the paper highlights in §5.1.2. */

#define MAXWORDS 24
#define WORDLEN 16

char *dictionary[MAXWORDS];
char *signatures[MAXWORDS];
int nwords;

/* The embedded word list (the original read a dictionary file). */
char *raw_words[MAXWORDS] = {
    "listen", "silent", "enlist", "google", "banana", "inlets",
    "stone", "tones", "notes", "onset", "steno", "seton",
    "cat", "act", "tac", "dog", "god", "odg",
    "part", "trap", "rapt", "tarp", "prat", "zzz"
};

/* Copy src into a fresh heap buffer. */
char *dup_word(char *src) {
    char *buf;
    buf = (char*)malloc(WORDLEN);
    strcpy(buf, src);
    return buf;
}

/* Fetch a heap copy of a raw word into a caller-provided slot (the
 * out-parameter idiom of paper §5.2: every caller's slot receives a
 * value from the same source, so the cross-caller pairs CI invents are
 * harmless at every dereference). */
void fetch_word(char **slot, int i) {
    *slot = dup_word(raw_words[i % MAXWORDS]);
}

/* Sort the characters of s in place (selection sort). */
void sort_chars(char *s) {
    int i;
    int j;
    int n;
    n = strlen(s);
    for (i = 0; i < n - 1; i++) {
        int best;
        best = i;
        for (j = i + 1; j < n; j++) {
            if (s[j] < s[best]) {
                best = j;
            }
        }
        if (best != i) {
            char t;
            t = s[i];
            s[i] = s[best];
            s[best] = t;
        }
    }
}

/* Build the sorted-letter signature of word w into the heap. */
char *make_signature(char *w) {
    char *sig;
    sig = dup_word(w);
    sort_chars(sig);
    return sig;
}

void load_words(void) {
    int i;
    char *w;
    nwords = 0;
    for (i = 0; i < MAXWORDS; i++) {
        fetch_word(&w, i);
        dictionary[nwords] = w;
        signatures[nwords] = make_signature(w);
        nwords++;
    }
}

/* Longest raw word, fetched through the same out-parameter utility. */
int longest_raw(void) {
    int i;
    int best;
    char *cursor;
    best = 0;
    for (i = 0; i < MAXWORDS; i++) {
        int n;
        fetch_word(&cursor, i);
        n = strlen(cursor);
        if (n > best) {
            best = n;
        }
    }
    return best;
}

/* Sort dictionary and signatures together by signature (insertion sort
 * over the pointer tables). */
void sort_by_signature(void) {
    int i;
    int j;
    for (i = 1; i < nwords; i++) {
        char *sig;
        char *word;
        sig = signatures[i];
        word = dictionary[i];
        j = i - 1;
        while (j >= 0 && strcmp(signatures[j], sig) > 0) {
            signatures[j + 1] = signatures[j];
            dictionary[j + 1] = dictionary[j];
            j--;
        }
        signatures[j + 1] = sig;
        dictionary[j + 1] = word;
    }
}

/* Count and print anagram groups of size >= 2. */
int report_groups(void) {
    int i;
    int groups;
    int start;
    groups = 0;
    start = 0;
    for (i = 1; i <= nwords; i++) {
        if (i == nwords || strcmp(signatures[i], signatures[start]) != 0) {
            if (i - start >= 2) {
                int k;
                groups++;
                printf("group:");
                for (k = start; k < i; k++) {
                    printf(" %s", dictionary[k]);
                }
                printf("\n");
            }
            start = i;
        }
    }
    return groups;
}

int main(void) {
    int groups;
    load_words();
    sort_by_signature();
    groups = report_groups();
    printf("groups=%d words=%d longest=%d\n", groups, nwords, longest_raw());
    if (groups != 5) {
        return 1;
    }
    return 0;
}
