/* bc -- reconstruction of GNU bc (the largest program of the suite).
 *
 * An arbitrary-precision calculator core: a scanner over an embedded
 * script, a recursive-descent expression parser, bignums as heap digit
 * arrays handed around through struct pointers, a free list of number
 * cells, and single-letter variables.
 *
 * Pointer idioms: heap records from a central allocator, digit arrays
 * walked by int*, caller-owned result slots, utility routines shared by
 * every arithmetic path. */

#define MAXDIGITS 64
#define NVARS 26

struct number {
    int ndigits;          /* significant base-10 digits           */
    int negative;
    int *digits;          /* least-significant first, heap        */
    struct number *link;  /* free-list chain                      */
};

struct number *free_nums;
int live_nums;
int peak_nums;

char *script;
int lookahead;

struct number *variables[NVARS];
int out_checksum;

/* ----- number cell management (one allocation site each) ----- */

struct number *num_alloc(void) {
    struct number *n;
    if (free_nums != NULL) {
        n = free_nums;
        free_nums = n->link;
    } else {
        n = (struct number*)malloc(sizeof(struct number));
        n->digits = (int*)malloc(MAXDIGITS * 4);
    }
    n->ndigits = 1;
    n->negative = 0;
    n->digits[0] = 0;
    n->link = NULL;
    live_nums++;
    if (live_nums > peak_nums) {
        peak_nums = live_nums;
    }
    return n;
}

void num_free(struct number *n) {
    if (n == NULL) {
        return;
    }
    n->link = free_nums;
    free_nums = n;
    live_nums--;
}

struct number *num_from_int(int v) {
    struct number *n;
    n = num_alloc();
    if (v < 0) {
        n->negative = 1;
        v = -v;
    }
    n->ndigits = 0;
    if (v == 0) {
        n->digits[0] = 0;
        n->ndigits = 1;
    }
    while (v > 0) {
        n->digits[n->ndigits++] = v % 10;
        v = v / 10;
    }
    return n;
}

struct number *num_copy(struct number *src) {
    struct number *n;
    int i;
    n = num_alloc();
    n->ndigits = src->ndigits;
    n->negative = src->negative;
    for (i = 0; i < src->ndigits; i++) {
        n->digits[i] = src->digits[i];
    }
    return n;
}

void num_trim(struct number *n) {
    while (n->ndigits > 1 && n->digits[n->ndigits - 1] == 0) {
        n->ndigits--;
    }
    if (n->ndigits == 1 && n->digits[0] == 0) {
        n->negative = 0;
    }
}

/* |a| vs |b|: -1, 0, 1 */
int num_cmp_mag(struct number *a, struct number *b) {
    int i;
    if (a->ndigits != b->ndigits) {
        return a->ndigits < b->ndigits ? -1 : 1;
    }
    for (i = a->ndigits - 1; i >= 0; i--) {
        if (a->digits[i] != b->digits[i]) {
            return a->digits[i] < b->digits[i] ? -1 : 1;
        }
    }
    return 0;
}

/* ----- magnitude arithmetic into caller-provided result cells ----- */

void mag_add(struct number *a, struct number *b, struct number *r) {
    int carry;
    int i;
    int n;
    n = a->ndigits > b->ndigits ? a->ndigits : b->ndigits;
    carry = 0;
    for (i = 0; i < n; i++) {
        int da;
        int db;
        int s;
        da = i < a->ndigits ? a->digits[i] : 0;
        db = i < b->ndigits ? b->digits[i] : 0;
        s = da + db + carry;
        r->digits[i] = s % 10;
        carry = s / 10;
    }
    if (carry && n < MAXDIGITS) {
        r->digits[n++] = carry;
    }
    r->ndigits = n;
    num_trim(r);
}

/* Requires |a| >= |b|. */
void mag_sub(struct number *a, struct number *b, struct number *r) {
    int borrow;
    int i;
    borrow = 0;
    for (i = 0; i < a->ndigits; i++) {
        int da;
        int db;
        int d;
        da = a->digits[i];
        db = i < b->ndigits ? b->digits[i] : 0;
        d = da - db - borrow;
        if (d < 0) {
            d += 10;
            borrow = 1;
        } else {
            borrow = 0;
        }
        r->digits[i] = d;
    }
    r->ndigits = a->ndigits;
    num_trim(r);
}

void mag_mul(struct number *a, struct number *b, struct number *r) {
    int i;
    int j;
    int n;
    n = a->ndigits + b->ndigits;
    if (n > MAXDIGITS) {
        n = MAXDIGITS;
    }
    for (i = 0; i < n; i++) {
        r->digits[i] = 0;
    }
    for (i = 0; i < a->ndigits; i++) {
        int carry;
        carry = 0;
        for (j = 0; j < b->ndigits && i + j < MAXDIGITS; j++) {
            int cell;
            cell = r->digits[i + j] + a->digits[i] * b->digits[j] + carry;
            r->digits[i + j] = cell % 10;
            carry = cell / 10;
        }
        if (i + b->ndigits < MAXDIGITS) {
            r->digits[i + b->ndigits] += carry;
        }
    }
    r->ndigits = n;
    num_trim(r);
}

/* ----- signed operations producing fresh cells ----- */

struct number *num_add(struct number *a, struct number *b) {
    struct number *r;
    r = num_alloc();
    if (a->negative == b->negative) {
        mag_add(a, b, r);
        r->negative = a->negative;
    } else if (num_cmp_mag(a, b) >= 0) {
        mag_sub(a, b, r);
        r->negative = a->negative;
    } else {
        mag_sub(b, a, r);
        r->negative = b->negative;
    }
    num_trim(r);
    return r;
}

struct number *num_neg(struct number *a) {
    struct number *r;
    r = num_copy(a);
    if (r->ndigits != 1 || r->digits[0] != 0) {
        r->negative = !r->negative;
    }
    return r;
}

struct number *num_sub(struct number *a, struct number *b) {
    struct number *nb;
    struct number *r;
    nb = num_neg(b);
    r = num_add(a, nb);
    num_free(nb);
    return r;
}

struct number *num_mul(struct number *a, struct number *b) {
    struct number *r;
    r = num_alloc();
    mag_mul(a, b, r);
    r->negative = a->negative != b->negative;
    num_trim(r);
    return r;
}

/* Signed comparison: -1, 0, 1. */
int num_cmp(struct number *a, struct number *b) {
    if (a->negative != b->negative) {
        return a->negative ? -1 : 1;
    }
    if (a->negative) {
        return -num_cmp_mag(a, b);
    }
    return num_cmp_mag(a, b);
}

int num_is_zero(struct number *a) {
    return a->ndigits == 1 && a->digits[0] == 0;
}

/* Schoolbook long division (truncating); returns NULL on divide-by-zero.
 * The remainder accumulates in a caller-provided work cell. */
struct number *num_div(struct number *a, struct number *b) {
    struct number *q;
    struct number *rem;
    int i;
    if (num_is_zero(b)) {
        return NULL;
    }
    q = num_alloc();
    q->ndigits = a->ndigits;
    rem = num_from_int(0);
    for (i = a->ndigits - 1; i >= 0; i--) {
        int d;
        int k;
        /* rem = rem * 10 + a->digits[i] */
        for (k = rem->ndigits; k > 0; k--) {
            rem->digits[k] = rem->digits[k - 1];
        }
        rem->digits[0] = a->digits[i];
        if (rem->ndigits < MAXDIGITS) {
            rem->ndigits++;
        }
        num_trim(rem);
        /* find the quotient digit by repeated subtraction of |b| */
        d = 0;
        while (num_cmp_mag(rem, b) >= 0) {
            struct number *nr;
            nr = num_alloc();
            mag_sub(rem, b, nr);
            num_free(rem);
            rem = nr;
            d++;
            if (d > 9) {
                break;
            }
        }
        q->digits[i] = d;
    }
    q->negative = a->negative != b->negative;
    num_trim(q);
    num_free(rem);
    return q;
}

/* Boolean result cells for the comparison operators. */
struct number *num_bool(int flag) {
    return num_from_int(flag ? 1 : 0);
}

/* By-value peek at a number cell (struct copies carry the digit
 * pointer through the dataflow as an aggregate value). */
struct number peek(struct number *n) {
    return *n;
}

/* ----- printing ----- */

void num_print(struct number *n) {
    int i;
    char buf[MAXDIGITS + 2];
    int pos;
    pos = 0;
    if (n->negative) {
        buf[pos++] = '-';
    }
    for (i = n->ndigits - 1; i >= 0; i--) {
        buf[pos++] = '0' + n->digits[i];
    }
    buf[pos] = 0;
    printf("%s\n", buf);
    for (i = 0; buf[i] != 0; i++) {
        out_checksum = (out_checksum * 31 + buf[i]) % 99991;
    }
}

/* ----- scanner ----- */

void advance(void) {
    while (*script == ' ' || *script == '\n') {
        script++;
    }
    lookahead = *script;
}

void eat_char(void) {
    script++;
    advance();
}

struct number *scan_number(void) {
    int v;
    v = 0;
    while (*script >= '0' && *script <= '9') {
        v = v * 10 + (*script - '0');
        script++;
    }
    advance();
    return num_from_int(v);
}

/* ----- parser / evaluator: expr := term (('+'|'-') term)*
 *        term := factor ('*' factor)*
 *        factor := NUM | VAR | '-' factor | '(' expr ')' ----- */

struct number *parse_expr(void);

struct number *parse_factor(void) {
    if (lookahead >= '0' && lookahead <= '9') {
        return scan_number();
    }
    if (lookahead >= 'a' && lookahead <= 'z') {
        int v;
        v = lookahead - 'a';
        eat_char();
        if (variables[v] == NULL) {
            variables[v] = num_from_int(0);
        }
        return num_copy(variables[v]);
    }
    if (lookahead == '-') {
        struct number *inner;
        struct number *r;
        eat_char();
        inner = parse_factor();
        r = num_neg(inner);
        num_free(inner);
        return r;
    }
    if (lookahead == '(') {
        struct number *e;
        eat_char();
        e = parse_expr();
        if (lookahead == ')') {
            eat_char();
        }
        return e;
    }
    /* Syntax error: treat as zero and skip. */
    eat_char();
    return num_from_int(0);
}

struct number *parse_term(void) {
    struct number *lhs;
    lhs = parse_factor();
    while (lookahead == '*' || lookahead == '/') {
        struct number *rhs;
        struct number *r;
        int divide;
        divide = lookahead == '/';
        eat_char();
        rhs = parse_factor();
        if (divide) {
            r = num_div(lhs, rhs);
            if (r == NULL) {
                /* divide by zero: bc prints a warning and yields 0 */
                printf("divide by zero\n");
                r = num_from_int(0);
            }
        } else {
            r = num_mul(lhs, rhs);
        }
        num_free(lhs);
        num_free(rhs);
        lhs = r;
    }
    return lhs;
}

struct number *parse_sum(void);

/* expr := sum (('<'|'>') sum)?   -- comparisons yield 0/1 */
struct number *parse_expr(void) {
    struct number *lhs;
    lhs = parse_sum();
    while (lookahead == '<' || lookahead == '>') {
        struct number *rhs;
        struct number *r;
        int less;
        less = lookahead == '<';
        eat_char();
        rhs = parse_sum();
        if (less) {
            r = num_bool(num_cmp(lhs, rhs) < 0);
        } else {
            r = num_bool(num_cmp(lhs, rhs) > 0);
        }
        num_free(lhs);
        num_free(rhs);
        lhs = r;
    }
    return lhs;
}

struct number *parse_sum(void) {
    struct number *lhs;
    lhs = parse_term();
    while (lookahead == '+' || lookahead == '-') {
        struct number *rhs;
        struct number *r;
        int minus;
        minus = lookahead == '-';
        eat_char();
        rhs = parse_term();
        if (minus) {
            r = num_sub(lhs, rhs);
        } else {
            r = num_add(lhs, rhs);
        }
        num_free(lhs);
        num_free(rhs);
        lhs = r;
    }
    return lhs;
}

/* stmt := VAR '=' expr ';' | expr ';'  (bare expressions print) */
void run_stmt(void) {
    if (lookahead >= 'a' && lookahead <= 'z' && script[1] == ' '
        && script[2] == '=' && script[3] != '=') {
        int target;
        struct number *v;
        target = lookahead - 'a';
        eat_char(); /* the variable    */
        eat_char(); /* the '='         */
        v = parse_expr();
        num_free(variables[target]);
        variables[target] = v;
    } else {
        struct number *v;
        v = parse_expr();
        num_print(v);
        num_free(v);
    }
    if (lookahead == ';') {
        eat_char();
    }
}

void run_script(char *text) {
    script = text;
    advance();
    while (lookahead != 0) {
        run_stmt();
    }
}

int main(void) {
    int i;
    for (i = 0; i < NVARS; i++) {
        variables[i] = NULL;
    }
    free_nums = NULL;
    live_nums = 0;
    peak_nums = 0;
    out_checksum = 0;

    run_script(
        "a = 123456789 + 987654321;"
        "a;"
        "b = a * a;"
        "b;"
        "c = b - 1234567890 * 999;"
        "c;"
        "d = c * 0 - 42;"
        "d;"
        "(a + b) * 2 + d;"
        "z + 7;"
        "e = b / a;"
        "e;"
        "f = b / 97;"
        "f;"
        "g = (a < b) + (b < a) * 10 + (d < 0) * 100;"
        "g;"
        "h = e / 0;"
        "h;");

    if (variables[0] != NULL) {
        struct number snap;
        snap = peek(variables[0]);
        printf("a has %d digits (neg=%d)\n", snap.ndigits, snap.negative);
        if (snap.digits == NULL) {
            return 2;
        }
    }
    printf("live=%d peak=%d sum=%d\n", live_nums, peak_nums, out_checksum);
    /* 123456789 + 987654321 = 1111111110 */
    if (out_checksum == 0) {
        return 1;
    }
    return 0;
}
