/* lex315 -- reconstruction of the Landi-suite lexical analyzer.
 *
 * Pointer idioms: a char* cursor threaded through scanner routines, a
 * keyword table of char* entries, token text copied into a shared global
 * buffer whose address is returned to every caller (the same-value
 * out-parameter pattern of paper §5.2). */

#define T_EOF 0
#define T_IDENT 1
#define T_NUMBER 2
#define T_KEYWORD 3
#define T_PUNCT 4
#define NKEYWORDS 8

char *keywords[NKEYWORDS] = {
    "if", "else", "while", "return", "int", "char", "for", "break"
};

char token_text[32];
int token_kind;
int counts[5];

char *source_text =
    "int main ( ) { int x ; x = 42 ; while ( x ) { x = x - 1 ; } "
    "if ( x ) return 1 ; else return 0 ; }";

char *banner_text = "lex315 reconstruction for the ruf95 suite";

/* The active input; reassigned between phases. A strongly-updateable
 * global pointer: the strong update between the phases keeps each
 * phase's dereferences single-target (visible in the strong-update
 * ablation). */
char *active_text;

int is_alpha(int c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

int is_digit(int c) {
    return c >= '0' && c <= '9';
}

/* Look the spelled token up in the keyword table. */
int is_keyword(char *text) {
    int i;
    for (i = 0; i < NKEYWORDS; i++) {
        if (strcmp(keywords[i], text) == 0) {
            return 1;
        }
    }
    return 0;
}

/* Scan one identifier starting at *pp; advances the cursor. */
void scan_ident(char **pp) {
    char *p;
    int n;
    p = *pp;
    n = 0;
    while (is_alpha(*p) || is_digit(*p)) {
        if (n < 31) {
            token_text[n++] = *p;
        }
        p++;
    }
    token_text[n] = 0;
    *pp = p;
    token_kind = is_keyword(token_text) ? T_KEYWORD : T_IDENT;
}

void scan_number(char **pp) {
    char *p;
    int n;
    p = *pp;
    n = 0;
    while (is_digit(*p)) {
        if (n < 31) {
            token_text[n++] = *p;
        }
        p++;
    }
    token_text[n] = 0;
    *pp = p;
    token_kind = T_NUMBER;
}

void scan_punct(char **pp) {
    char *p;
    p = *pp;
    token_text[0] = *p;
    token_text[1] = 0;
    *pp = p + 1;
    token_kind = T_PUNCT;
}

/* Get the next token; returns its kind, spelling in token_text. */
int next_token(char **pp) {
    char *p;
    p = *pp;
    while (*p == ' ' || *p == '\t' || *p == '\n') {
        p++;
    }
    *pp = p;
    if (*p == 0) {
        token_kind = T_EOF;
        token_text[0] = 0;
        return T_EOF;
    }
    if (is_alpha(*p)) {
        scan_ident(pp);
    } else if (is_digit(*p)) {
        scan_number(pp);
    } else {
        scan_punct(pp);
    }
    return token_kind;
}

/* Scan everything in active_text; returns the token count. */
int scan_phase(void) {
    char *cursor;
    int kind;
    int total;
    cursor = active_text;
    total = 0;
    while ((kind = next_token(&cursor)) != T_EOF) {
        counts[kind]++;
        total++;
        if (total > 500) {
            return -1;
        }
    }
    return total;
}

int main(void) {
    int total;
    int banner_total;
    int i;
    for (i = 0; i < 5; i++) {
        counts[i] = 0;
    }
    active_text = source_text;
    total = scan_phase();
    active_text = banner_text;   /* phase 2: the banner */
    /* A direct sanity deref between the phases: with strong updates the
     * assignment above definitely overwrote active_text, so this read
     * sees only the banner; the weak-update ablation sees both texts. */
    if (*active_text != 'l') {
        return 3;
    }
    banner_total = scan_phase();
    printf("tokens=%d banner=%d ident=%d num=%d kw=%d punct=%d\n",
           total, banner_total, counts[T_IDENT], counts[T_NUMBER],
           counts[T_KEYWORD], counts[T_PUNCT]);
    if (total < 0 || banner_total != 6) {
        return 2;
    }
    if (counts[T_KEYWORD] != 8) {
        return 1;
    }
    return 0;
}
