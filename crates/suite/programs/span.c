/* span -- reconstruction of Todd Austin's spanning-tree benchmark.
 *
 * Pointer idioms: adjacency lists of heap cells, a work queue of node
 * pointers, parent links written through single-level pointers. The
 * paper reports zero spurious pairs and single-location indirect
 * references for this program. */

#define NNODES 12

struct edge {
    int to;
    struct edge *next;
};

struct edge *adj[NNODES];
int parent[NNODES];
int seen[NNODES];
int queue_buf[NNODES];
int tree_edges;

void add_edge(int a, int b) {
    struct edge *e;
    e = (struct edge*)malloc(sizeof(struct edge));
    e->to = b;
    e->next = adj[a];
    adj[a] = e;
}

void add_undirected(int a, int b) {
    add_edge(a, b);
    add_edge(b, a);
}

void build_graph(void) {
    int i;
    for (i = 0; i < NNODES; i++) {
        adj[i] = NULL;
        parent[i] = -1;
        seen[i] = 0;
    }
    /* A connected graph: ring plus chords. */
    for (i = 0; i < NNODES; i++) {
        add_undirected(i, (i + 1) % NNODES);
    }
    add_undirected(0, 6);
    add_undirected(2, 9);
    add_undirected(4, 11);
    add_undirected(1, 7);
}

/* Fetch a node's adjacency list into a caller slot (out-parameter
 * idiom; all callers receive pointers from the one edge heap). */
void edges_of(struct edge **slot, int node) {
    *slot = adj[node];
}

/* Breadth-first spanning tree from root; returns nodes reached. */
int bfs_span(int root) {
    int head;
    int tail;
    int reached;
    queue_buf[0] = root;
    head = 0;
    tail = 1;
    seen[root] = 1;
    parent[root] = root;
    reached = 1;
    while (head < tail) {
        int u;
        struct edge *e;
        u = queue_buf[head++];
        edges_of(&e, u);
        while (e != NULL) {
            int v;
            v = e->to;
            if (!seen[v]) {
                seen[v] = 1;
                parent[v] = u;
                tree_edges++;
                queue_buf[tail++] = v;
                reached++;
            }
            e = e->next;
        }
    }
    return reached;
}

/* Depth of node v in the spanning tree. */
int depth_of(int v) {
    int d;
    d = 0;
    while (parent[v] != v) {
        v = parent[v];
        d++;
        if (d > NNODES) {
            return -1;
        }
    }
    return d;
}

int check_tree(void) {
    int i;
    int maxd;
    maxd = 0;
    for (i = 0; i < NNODES; i++) {
        int d;
        d = depth_of(i);
        if (d < 0) {
            return -1;
        }
        if (d > maxd) {
            maxd = d;
        }
    }
    return maxd;
}

/* Total degree, walking every adjacency list through edges_of. */
int total_degree(void) {
    int i;
    int n;
    struct edge *walk;
    n = 0;
    for (i = 0; i < NNODES; i++) {
        edges_of(&walk, i);
        while (walk != NULL) {
            n++;
            walk = walk->next;
        }
    }
    return n;
}

int main(void) {
    int reached;
    int maxd;
    tree_edges = 0;
    build_graph();
    reached = bfs_span(0);
    maxd = check_tree();
    printf("reached=%d tree_edges=%d maxdepth=%d degree=%d\n",
           reached, tree_edges, maxd, total_degree());
    if (reached != NNODES) {
        return 1;
    }
    if (tree_edges != NNODES - 1) {
        return 2;
    }
    return 0;
}
