/* allroots -- reconstruction of the Landi-suite polynomial root finder.
 *
 * Pointer idioms: double arrays passed as pointers, caller-allocated
 * out-parameter buffers, single-level pointers throughout. */

#define MAXDEG 8

double poly_coef[MAXDEG + 1];
int poly_deg;

double work_a[MAXDEG + 1];
double work_b[MAXDEG + 1];

/* Evaluate polynomial given by (c, deg) at x via Horner's rule. */
double eval_poly(double *c, int deg, double x) {
    double acc;
    int i;
    acc = c[deg];
    for (i = deg - 1; i >= 0; i--) {
        acc = acc * x + c[i];
    }
    return acc;
}

/* Write the derivative of (c, deg) into caller-provided buffer d. */
void derive_poly(double *c, int deg, double *d) {
    int i;
    for (i = 1; i <= deg; i++) {
        d[i - 1] = c[i] * i;
    }
}

/* Deflate polynomial by root r: synthetic division into out. */
void deflate(double *c, int deg, double r, double *out) {
    double carry;
    int i;
    carry = c[deg];
    for (i = deg - 1; i >= 0; i--) {
        double t;
        t = c[i];
        out[i] = carry;
        carry = t + carry * r;
    }
}

/* Newton iteration from x0; returns 1 on convergence, root in *root. */
int newton(double *c, int deg, double x0, double *root) {
    double x;
    double d[MAXDEG + 1];
    int iter;
    derive_poly(c, deg, d);
    x = x0;
    for (iter = 0; iter < 60; iter++) {
        double f;
        double fp;
        f = eval_poly(c, deg, x);
        fp = eval_poly(d, deg - 1, x);
        if (f < 0.000000001 && f > -0.000000001) {
            *root = x;
            return 1;
        }
        if (fp < 0.0000001 && fp > -0.0000001) {
            return 0;
        }
        x = x - f / fp;
    }
    *root = x;
    return 1;
}

/* Find all real roots; store them in roots, return the count. */
int all_roots(double *c, int deg, double *roots) {
    double *cur;
    double *next;
    double *tmp;
    int found;
    int i;
    cur = work_a;
    next = work_b;
    for (i = 0; i <= deg; i++) {
        cur[i] = c[i];
    }
    found = 0;
    while (deg > 0) {
        double r;
        if (!newton(cur, deg, 0.5 + found, &r)) {
            break;
        }
        roots[found++] = r;
        deflate(cur, deg, r, next);
        deg--;
        tmp = cur;
        cur = next;
        next = tmp;
    }
    return found;
}

void load_poly(int which) {
    int i;
    for (i = 0; i <= MAXDEG; i++) {
        poly_coef[i] = 0.0;
    }
    if (which == 0) {
        /* (x-1)(x-2) = x^2 - 3x + 2 */
        poly_deg = 2;
        poly_coef[2] = 1.0;
        poly_coef[1] = -3.0;
        poly_coef[0] = 2.0;
    } else {
        /* (x-1)(x-2)(x-3) */
        poly_deg = 3;
        poly_coef[3] = 1.0;
        poly_coef[2] = -6.0;
        poly_coef[1] = 11.0;
        poly_coef[0] = -6.0;
    }
}

int main(void) {
    double roots[MAXDEG];
    int n;
    int total;
    int which;
    total = 0;
    for (which = 0; which < 2; which++) {
        load_poly(which);
        n = all_roots(poly_coef, poly_deg, roots);
        total += n;
        printf("poly %d: %d roots\n", which, n);
    }
    return total;
}
