/* compiler -- reconstruction of the Landi-suite toy compiler.
 *
 * Pipeline: scanner over an embedded source string, recursive-descent
 * parser building heap AST nodes, a tree-walking constant folder, a
 * code generator emitting stack-machine instructions, and a small VM.
 *
 * Pointer idioms: AST node pointers (one allocation site feeding every
 * tree constructor), a char* scan cursor held in a global, parent
 * routines receiving subtree pointers from a single producer. */

enum node_kind { N_NUM, N_VAR, N_ADD, N_SUB, N_MUL };

enum opcode {
    OP_PUSH, OP_LOAD, OP_ADD, OP_SUB, OP_MUL, OP_STORE, OP_PRINT
};

#define MAXCODE 256
#define NVARS 26

struct ast {
    int kind;
    int value;       /* number or variable index */
    struct ast *lhs;
    struct ast *rhs;
};

char *src;
int lookahead;

int code_op[MAXCODE];
int code_arg[MAXCODE];
int ncode;

int vars[NVARS];
int stack[64];
int printed;

/* ----- scanner ----- */

void advance(void) {
    while (*src == ' ') {
        src++;
    }
    lookahead = *src;
}

int scan_number(void) {
    int v;
    v = 0;
    while (*src >= '0' && *src <= '9') {
        v = v * 10 + (*src - '0');
        src++;
    }
    advance();
    return v;
}

int scan_var(void) {
    int v;
    v = *src - 'a';
    src++;
    advance();
    return v;
}

void eat(int c) {
    if (lookahead != c) {
        printf("syntax error: expected %c\n", c);
        exit(2);
    }
    src++;
    advance();
}

/* ----- parser: expr := term (('+'|'-') term)*; term := factor ('*' factor)*;
 *       factor := NUM | VAR | '(' expr ')' ----- */

struct ast *mk_node(int kind, int value, struct ast *lhs, struct ast *rhs) {
    struct ast *n;
    n = (struct ast*)malloc(sizeof(struct ast));
    n->kind = kind;
    n->value = value;
    n->lhs = lhs;
    n->rhs = rhs;
    return n;
}

struct ast *parse_expr(void);

struct ast *parse_factor(void) {
    if (lookahead >= '0' && lookahead <= '9') {
        return mk_node(N_NUM, scan_number(), NULL, NULL);
    }
    if (lookahead >= 'a' && lookahead <= 'z') {
        return mk_node(N_VAR, scan_var(), NULL, NULL);
    }
    if (lookahead == '(') {
        struct ast *e;
        eat('(');
        e = parse_expr();
        eat(')');
        return e;
    }
    printf("syntax error at factor\n");
    exit(2);
    return NULL;
}

struct ast *parse_term(void) {
    struct ast *lhs;
    lhs = parse_factor();
    while (lookahead == '*') {
        eat('*');
        lhs = mk_node(N_MUL, 0, lhs, parse_factor());
    }
    return lhs;
}

struct ast *parse_expr(void) {
    struct ast *lhs;
    lhs = parse_term();
    while (lookahead == '+' || lookahead == '-') {
        if (lookahead == '+') {
            eat('+');
            lhs = mk_node(N_ADD, 0, lhs, parse_term());
        } else {
            eat('-');
            lhs = mk_node(N_SUB, 0, lhs, parse_term());
        }
    }
    return lhs;
}

/* ----- constant folding (tree rewrite in place) ----- */

struct ast *fold(struct ast *n) {
    if (n == NULL) {
        return NULL;
    }
    n->lhs = fold(n->lhs);
    n->rhs = fold(n->rhs);
    if (n->kind >= N_ADD && n->lhs->kind == N_NUM && n->rhs->kind == N_NUM) {
        int a;
        int b;
        int v;
        a = n->lhs->value;
        b = n->rhs->value;
        v = 0;
        switch (n->kind) {
        case N_ADD:
            v = a + b;
            break;
        case N_SUB:
            v = a - b;
            break;
        case N_MUL:
            v = a * b;
            break;
        }
        n->kind = N_NUM;
        n->value = v;
        n->lhs = NULL;
        n->rhs = NULL;
    }
    return n;
}

/* ----- code generation ----- */

void emit(int op, int arg) {
    if (ncode < MAXCODE) {
        code_op[ncode] = op;
        code_arg[ncode] = arg;
        ncode++;
    }
}

void gen_expr(struct ast *n) {
    if (n->kind == N_NUM) {
        emit(OP_PUSH, n->value);
        return;
    }
    if (n->kind == N_VAR) {
        emit(OP_LOAD, n->value);
        return;
    }
    gen_expr(n->lhs);
    gen_expr(n->rhs);
    if (n->kind == N_ADD) {
        emit(OP_ADD, 0);
    } else if (n->kind == N_SUB) {
        emit(OP_SUB, 0);
    } else {
        emit(OP_MUL, 0);
    }
}

/* stmt := VAR '=' expr ';' | '!' expr ';'   ('!' prints) */
void gen_stmt(void) {
    if (lookahead == '!') {
        struct ast *e;
        eat('!');
        e = fold(parse_expr());
        gen_expr(e);
        emit(OP_PRINT, 0);
    } else {
        int target;
        struct ast *e;
        target = scan_var();
        eat('=');
        e = fold(parse_expr());
        gen_expr(e);
        emit(OP_STORE, target);
    }
    eat(';');
}

void compile(char *text) {
    src = text;
    ncode = 0;
    advance();
    while (lookahead != 0) {
        gen_stmt();
    }
}

/* ----- the stack-machine VM ----- */

int run_vm(void) {
    int pc;
    int sp;
    sp = 0;
    printed = 0;
    for (pc = 0; pc < ncode; pc++) {
        int op;
        int arg;
        op = code_op[pc];
        arg = code_arg[pc];
        switch (op) {
        case OP_PUSH:
            stack[sp++] = arg;
            break;
        case OP_LOAD:
            stack[sp++] = vars[arg];
            break;
        case OP_ADD:
            sp--;
            stack[sp - 1] += stack[sp];
            break;
        case OP_SUB:
            sp--;
            stack[sp - 1] -= stack[sp];
            break;
        case OP_MUL:
            sp--;
            stack[sp - 1] *= stack[sp];
            break;
        case OP_STORE:
            vars[arg] = stack[--sp];
            break;
        case OP_PRINT:
            printf("= %d\n", stack[--sp]);
            printed++;
            break;
        }
    }
    return sp;
}

int main(void) {
    int i;
    int leftover;
    for (i = 0; i < NVARS; i++) {
        vars[i] = 0;
    }
    compile("a = 2 + 3 * 4; b = a * a; c = (a + b) * 2 - 6; ! a; ! b; ! c; ! 7 * 6;");
    leftover = run_vm();
    printf("code=%d printed=%d a=%d b=%d c=%d\n",
           ncode, printed, vars[0], vars[1], vars[2]);
    if (vars[0] != 14 || vars[1] != 196 || vars[2] != 414) {
        return 1;
    }
    if (leftover != 0 || printed != 4) {
        return 2;
    }
    return 0;
}
