/* loader -- reconstruction of the Landi-suite object-file loader.
 *
 * Pointer idioms: a symbol table of heap records chained into hash
 * buckets, relocation entries resolved by pointer-returning lookups
 * (every lookup returns a pointer into the one symbol heap), and a
 * simulated segment image patched through int*. */

#define NBUCKETS 13
#define SEGSIZE 64
#define MAXRELOC 32

struct symbol {
    char name[12];
    int value;
    int defined;
    struct symbol *link;
};

struct reloc {
    int offset;
    char refname[12];
};

struct symbol *buckets[NBUCKETS];
int segment[SEGSIZE];
struct reloc relocs[MAXRELOC];
int nrelocs;
int errors;

int hash_name(char *s) {
    int h;
    h = 0;
    while (*s != 0) {
        h = (h * 31 + *s) % NBUCKETS;
        s++;
    }
    if (h < 0) {
        h += NBUCKETS;
    }
    return h;
}

/* Find a symbol; NULL when absent. */
struct symbol *find_symbol(char *name) {
    struct symbol *s;
    s = buckets[hash_name(name)];
    while (s != NULL) {
        if (strcmp(s->name, name) == 0) {
            return s;
        }
        s = s->link;
    }
    return NULL;
}

/* Find-or-create (the single allocation site of the table). */
struct symbol *intern_symbol(char *name) {
    struct symbol *s;
    int h;
    s = find_symbol(name);
    if (s != NULL) {
        return s;
    }
    s = (struct symbol*)malloc(sizeof(struct symbol));
    strcpy(s->name, name);
    s->value = 0;
    s->defined = 0;
    h = hash_name(name);
    s->link = buckets[h];
    buckets[h] = s;
    return s;
}

/* "Define" a symbol at a segment address. */
void define_symbol(char *name, int value) {
    struct symbol *s;
    s = intern_symbol(name);
    if (s->defined) {
        errors++;
        return;
    }
    s->value = value;
    s->defined = 1;
}

/* Record a relocation against a (possibly forward) reference. */
void add_reloc(int offset, char *name) {
    if (nrelocs < MAXRELOC) {
        relocs[nrelocs].offset = offset;
        strcpy(relocs[nrelocs].refname, name);
        nrelocs++;
    }
}

/* Resolve a name into a caller-provided slot; all slots receive
 * pointers from the one symbol heap. */
void symbol_into(struct symbol **slot, char *name) {
    *slot = find_symbol(name);
}

/* Patch the segment image through the table. */
int resolve_all(void) {
    int i;
    int unresolved;
    unresolved = 0;
    for (i = 0; i < nrelocs; i++) {
        struct symbol *s;
        int *slot;
        symbol_into(&s, relocs[i].refname);
        if (s == NULL || !s->defined) {
            unresolved++;
            continue;
        }
        slot = &segment[relocs[i].offset];
        *slot = *slot + s->value;
    }
    return unresolved;
}

/* A tiny "object file": define/refer directives driven by tables. */
char *def_names[6] = { "start", "loop", "body", "exit", "data", "tab" };
int def_addrs[6] = { 0, 8, 16, 32, 40, 48 };

char *ref_names[8] = {
    "loop", "exit", "data", "start", "tab", "body", "data", "ghost"
};
int ref_sites[8] = { 1, 3, 5, 7, 9, 11, 13, 15 };

void load_object(void) {
    int i;
    for (i = 0; i < SEGSIZE; i++) {
        segment[i] = i;
    }
    for (i = 0; i < 6; i++) {
        define_symbol(def_names[i], def_addrs[i]);
    }
    for (i = 0; i < 8; i++) {
        add_reloc(ref_sites[i], ref_names[i]);
    }
    /* A duplicate definition to exercise the error path. */
    define_symbol("loop", 99);
}

/* Count defined symbols by re-resolving each definition name. */
int defined_count(void) {
    int i;
    int n;
    struct symbol *probe;
    n = 0;
    for (i = 0; i < 6; i++) {
        symbol_into(&probe, def_names[i]);
        if (probe != NULL && probe->defined) {
            n++;
        }
    }
    return n;
}

int checksum(void) {
    int i;
    int sum;
    sum = 0;
    for (i = 0; i < SEGSIZE; i++) {
        sum = (sum * 3 + segment[i]) % 65521;
    }
    return sum;
}

int main(void) {
    int unresolved;
    int i;
    for (i = 0; i < NBUCKETS; i++) {
        buckets[i] = NULL;
    }
    nrelocs = 0;
    errors = 0;
    load_object();
    unresolved = resolve_all();
    printf("relocs=%d unresolved=%d errors=%d defined=%d sum=%d\n",
           nrelocs, unresolved, errors, defined_count(), checksum());
    if (unresolved != 1) {
        return 1;
    }
    if (errors != 1) {
        return 2;
    }
    return 0;
}
