/* backprop -- reconstruction of Todd Austin's neural-network trainer.
 *
 * Pointer idioms: heap-allocated weight matrices handed around as
 * double*, layer activations in caller-provided buffers, all pointers
 * single-level and referencing floating-point (scalar) storage. The
 * paper notes this program's indirect operations each touch exactly one
 * location. */

#define NIN 4
#define NHID 3
#define NOUT 2

double *w_in_hid;   /* NIN x NHID  */
double *w_hid_out;  /* NHID x NOUT */

double inputs[NIN];
double hidden[NHID];
double outputs[NOUT];
double targets[NOUT];
double err_out[NOUT];
double err_hid[NHID];

/* A tiny deterministic pseudo-random weight stream. */
int wseed;
double next_weight(void) {
    wseed = (wseed * 1103515245 + 12345) % 2147483647;
    if (wseed < 0) {
        wseed = -wseed;
    }
    return (wseed % 1000) / 1000.0 - 0.5;
}

double *alloc_matrix(int rows, int cols) {
    double *m;
    int i;
    m = (double*)malloc(rows * cols * 8);
    for (i = 0; i < rows * cols; i++) {
        m[i] = next_weight();
    }
    return m;
}

/* Squashing function (piecewise-linear sigmoid stand-in). */
double squash(double x) {
    if (x > 1.0) {
        return 1.0;
    }
    if (x < -1.0) {
        return 0.0;
    }
    return (x + 1.0) / 2.0;
}

/* Forward pass from src (n_src wide) through w into dst (n_dst wide). */
void forward_layer(double *src, int n_src, double *w, double *dst, int n_dst) {
    int i;
    int j;
    for (j = 0; j < n_dst; j++) {
        double sum;
        sum = 0.0;
        for (i = 0; i < n_src; i++) {
            sum += src[i] * w[i * n_dst + j];
        }
        dst[j] = squash(sum);
    }
}

/* Output-layer error into caller buffer err. */
void output_error(double *out, double *want, double *err, int n) {
    int j;
    for (j = 0; j < n; j++) {
        err[j] = (want[j] - out[j]) * out[j] * (1.0 - out[j]);
    }
}

/* Back-propagate err_dst through w into err_src. */
void hidden_error(double *err_dst, int n_dst, double *w, double *act_src,
                  double *err_src, int n_src) {
    int i;
    int j;
    for (i = 0; i < n_src; i++) {
        double sum;
        sum = 0.0;
        for (j = 0; j < n_dst; j++) {
            sum += err_dst[j] * w[i * n_dst + j];
        }
        err_src[i] = sum * act_src[i] * (1.0 - act_src[i]);
    }
}

/* Gradient step on w given source activations and destination errors. */
void adjust_weights(double *src, int n_src, double *err, int n_dst, double *w) {
    int i;
    int j;
    for (i = 0; i < n_src; i++) {
        for (j = 0; j < n_dst; j++) {
            w[i * n_dst + j] += 0.25 * err[j] * src[i];
        }
    }
}

void load_case(int which) {
    int i;
    for (i = 0; i < NIN; i++) {
        inputs[i] = ((which + i) % 3) / 2.0;
    }
    targets[0] = (which % 2 == 0) ? 1.0 : 0.0;
    targets[1] = 1.0 - targets[0];
}

double train_epoch(void) {
    double total;
    int c;
    total = 0.0;
    for (c = 0; c < 8; c++) {
        int j;
        load_case(c);
        forward_layer(inputs, NIN, w_in_hid, hidden, NHID);
        forward_layer(hidden, NHID, w_hid_out, outputs, NOUT);
        output_error(outputs, targets, err_out, NOUT);
        hidden_error(err_out, NOUT, w_hid_out, hidden, err_hid, NHID);
        adjust_weights(hidden, NHID, err_out, NOUT, w_hid_out);
        adjust_weights(inputs, NIN, err_hid, NHID, w_in_hid);
        for (j = 0; j < NOUT; j++) {
            double d;
            d = targets[j] - outputs[j];
            if (d < 0.0) {
                d = -d;
            }
            total += d;
        }
    }
    return total;
}

int main(void) {
    int epoch;
    double err;
    wseed = 12345;
    w_in_hid = alloc_matrix(NIN, NHID);
    w_hid_out = alloc_matrix(NHID, NOUT);
    err = 0.0;
    for (epoch = 0; epoch < 12; epoch++) {
        err = train_epoch();
    }
    printf("final error x1000 = %d\n", (int)(err * 1000.0));
    if (err > 16.0) {
        return 1;
    }
    return 0;
}
