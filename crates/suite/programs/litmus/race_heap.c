/* litmus: write-write race on a heap cell.
 *
 * Main hands the worker a pointer to a malloc'd cell and then stores
 * through its own copy before the join. The race needs the points-to
 * analysis: both accesses are indirect, and only their referent sets
 * reveal the shared allocation site. */
void worker(int *p) {
    *p = 7;
}

int main(void) {
    int *c;
    int r;
    c = (int *) malloc(sizeof(int));
    *c = 7;
    spawn worker(c);
    *c = 7;
    join;
    r = *c;
    free(c);
    return r - 7;
}
