/* litmus: race-free — concurrent threads touch disjoint globals.
 *
 * Both workers run in parallel with each other and with main, but their
 * footprints do not overlap: `wa` only writes `a`, `wb` only writes
 * `b`, and main reads both only after the join. */
int a;
int b;

void wa(void) {
    a = 1;
}

void wb(void) {
    b = 2;
}

int main(void) {
    spawn wa();
    spawn wb();
    join;
    return a + b;
}
