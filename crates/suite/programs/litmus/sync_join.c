/* litmus: race-free — join-all orders the worker before main's access.
 *
 * The worker's store to `g` happens strictly before main's
 * read-modify-write: the join is a barrier. No checker may flag a race
 * here under any solver. */
int g;

void worker(int x) {
    g = x;
}

int main(void) {
    spawn worker(3);
    join;
    g = g + 1;
    return g;
}
