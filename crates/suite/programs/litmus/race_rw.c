/* litmus: read-write race on a shared global.
 *
 * Main reads `g` while the worker's store to it is still pending; the
 * read sees 0 or 1 depending on the schedule, but the branch keeps the
 * exit code schedule-independent. */
int g;

void worker(void) {
    g = 1;
}

int main(void) {
    int seen;
    spawn worker();
    seen = g;
    join;
    if (seen > 1) {
        return 1;
    }
    return 0;
}
