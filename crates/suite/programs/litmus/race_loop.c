/* litmus: self-race of a respawned thread.
 *
 * The loop spawns three instances of the same worker with no
 * intervening join, so two instances of the *same* spawn site may run
 * in parallel — the read-modify-write of `g` races with itself. The
 * increment of 0 keeps the exit schedule-independent. */
int g;

void worker(int x) {
    g = g + x;
}

int main(void) {
    int i;
    i = 0;
    while (i < 3) {
        spawn worker(0);
        i = i + 1;
    }
    join;
    return g;
}
