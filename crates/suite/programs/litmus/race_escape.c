/* litmus: race through an escaped stack address.
 *
 * Main passes `&x` to the worker, so the worker's indirect store and
 * main's direct store to its own local hit the same frame slot. This is
 * the case the checker's thread-local-frame rule must NOT suppress:
 * the common base is a local, but one access is indirect. */
void worker(int *p) {
    *p = 5;
}

int main(void) {
    int x;
    x = 5;
    spawn worker(&x);
    x = 5;
    join;
    return x - 5;
}
