/* litmus: write-write race on a shared global.
 *
 * Both the spawned worker and main store to `g` before the join, so the
 * two writes are unordered. Both write the same value, keeping the exit
 * code schedule-independent while the race itself is real. */
int g;

void worker(int x) {
    g = x;
}

int main(void) {
    spawn worker(2);
    g = 2;
    join;
    return g;
}
