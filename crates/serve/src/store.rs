//! Versioned, checksummed disk store for per-project analysis state.
//!
//! One file per project, `<dir>/<project>.json`:
//!
//! ```text
//! ruf95-store v1 <fnv64-of-payload, 16 hex digits>
//! { ...payload JSON on one line... }
//! ```
//!
//! The payload carries, per benchmark, everything a restored session
//! needs to warm-start without trusting the store for correctness:
//! the source text (recompiled on restore), the FNV source/graph
//! fingerprints it was analyzed under, the per-function [`FuncSummary`]
//! facts in stable vocabulary (seeds for the tier-3 CI resume), each
//! solver's canonical solution fingerprint, and the check-results
//! fingerprint when checks ran. Solutions themselves are *not*
//! persisted — they are graph-id-indexed and cheaper to re-derive from
//! seeds than to re-validate — so a load can only ever seed work, never
//! substitute for it.
//!
//! Every load failure — missing file, bad header, version or checksum
//! mismatch, malformed or incomplete payload — degrades to an explicit
//! [`LoadOutcome`] variant that the service maps to a cold start.
//! Nothing in this module panics on hostile input.

use alias::fingerprint::{fnv64, FuncSummary, StableOp, StablePair, StablePath};
use proto::json::Value;
use proto::{bytes_hex, fp_hex, parse_bytes_hex, parse_fp_hex};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Store format version; bumped on any payload schema change.
pub const STORE_VERSION: u32 = 1;

/// One benchmark's persisted state.
#[derive(Debug, Clone)]
pub struct StoredBench {
    /// Benchmark name.
    pub name: String,
    /// Full source text, recompiled on restore.
    pub source: String,
    /// Interpreter input bytes for the checker oracle.
    pub input: Vec<u8>,
    /// FNV-64 of `source` at persist time.
    pub source_fp: u64,
    /// VDG content fingerprint at persist time.
    pub graph_fp: u64,
    /// `(analysis, canonical solution fingerprint)` per solver;
    /// `None` for failed solves.
    pub solution_fps: Vec<(String, Option<u64>)>,
    /// Memoized per-function facts, the CI resume seeds. Loaded lazily:
    /// decoding is the dominant load cost, and a session that only
    /// fields demand queries never needs the seeds at all.
    pub summaries: StoredSummaries,
    /// FNV-64 over the benchmark's per-solver diagnostics, when a
    /// check request ran.
    pub check_fp: Option<u64>,
}

/// A benchmark's summaries, decoded on first touch rather than at load
/// time — `Store::load` used to decode every bench's summary map
/// eagerly, which made a warm restore *slower* than a cold solve for a
/// session that then touched one bench.
#[derive(Debug, Clone)]
pub enum StoredSummaries {
    /// Decoded facts, ready to seed a CI resume.
    Ready(alias::fxhash::HashMap<String, FuncSummary>),
    /// The raw `"summaries"` JSON object as loaded from disk.
    Raw(Value),
}

impl Default for StoredSummaries {
    fn default() -> Self {
        StoredSummaries::Ready(alias::fxhash::HashMap::default())
    }
}

impl StoredSummaries {
    /// The decoded map, decoding (once) if this is still the raw disk
    /// form. A malformed raw object decodes to the empty map: the
    /// session then cold-solves that bench — the store can cost time,
    /// never correctness.
    pub fn decoded(&mut self) -> &alias::fxhash::HashMap<String, FuncSummary> {
        if let StoredSummaries::Raw(v) = self {
            let m = decode_summaries(v).unwrap_or_default();
            *self = StoredSummaries::Ready(m);
        }
        match self {
            StoredSummaries::Ready(m) => m,
            StoredSummaries::Raw(_) => unreachable!("decoded above"),
        }
    }

    /// An owned decoded map, *without* materializing the `Ready` form:
    /// a raw entry decodes straight into the caller's hands and stays
    /// raw here, so re-persisting remains a verbatim re-emit and no
    /// second copy of the map is kept (or cloned) per bench.
    pub fn decode_fresh(&self) -> alias::fxhash::HashMap<String, FuncSummary> {
        match self {
            StoredSummaries::Ready(m) => m.clone(),
            StoredSummaries::Raw(v) => decode_summaries(v).unwrap_or_default(),
        }
    }
}

/// A project's full persisted state.
#[derive(Debug, Clone, Default)]
pub struct StoredProject {
    /// The engine CI spec key the artifacts were computed under;
    /// summaries are only sound seeds for an engine with the same key.
    pub ci_spec_key: String,
    /// One entry per benchmark, sorted by name.
    pub benches: Vec<StoredBench>,
}

/// Result of loading a project file.
#[derive(Debug)]
pub enum LoadOutcome {
    /// No file on disk — a genuinely new project.
    Missing,
    /// The project's state, verified and decoded.
    Loaded(StoredProject),
    /// The file exists but is unusable (truncated, corrupt, malformed,
    /// or written by a different store version). The service treats
    /// this exactly like [`LoadOutcome::Missing`] — cold start — and
    /// the next save overwrites the bad file.
    Rejected {
        /// Why the file was rejected.
        reason: String,
    },
}

/// Directory-backed store, one file per project.
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation error.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Store> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Store { dir })
    }

    /// The file a project persists to.
    pub fn path_of(&self, project: &str) -> PathBuf {
        self.dir.join(format!("{project}.json"))
    }

    /// Loads and verifies one project's state. Never panics: every
    /// failure mode becomes a [`LoadOutcome`] variant.
    pub fn load(&self, project: &str) -> LoadOutcome {
        let path = self.path_of(project);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Missing,
            Err(e) => {
                return LoadOutcome::Rejected {
                    reason: format!("unreadable: {e}"),
                }
            }
        };
        let Some((header, payload)) = text.split_once('\n') else {
            return LoadOutcome::Rejected {
                reason: "truncated: no payload line".into(),
            };
        };
        let fields: Vec<&str> = header.split(' ').collect();
        if fields.len() != 3 || fields[0] != "ruf95-store" {
            return LoadOutcome::Rejected {
                reason: format!("bad header {header:?}"),
            };
        }
        if fields[1] != format!("v{STORE_VERSION}") {
            return LoadOutcome::Rejected {
                reason: format!(
                    "version mismatch: file is {}, store is v{STORE_VERSION}",
                    fields[1]
                ),
            };
        }
        let Some(expected) = parse_fp_hex(fields[2]) else {
            return LoadOutcome::Rejected {
                reason: format!("bad checksum field {:?}", fields[2]),
            };
        };
        let payload = payload.trim_end_matches('\n');
        if fnv64(payload.as_bytes()) != expected {
            return LoadOutcome::Rejected {
                reason: "checksum mismatch (corrupt or truncated payload)".into(),
            };
        }
        let value = match Value::parse(payload) {
            Ok(v) => v,
            Err(e) => {
                return LoadOutcome::Rejected {
                    reason: format!("malformed payload: {e}"),
                }
            }
        };
        match decode_project(value) {
            Some(p) => LoadOutcome::Loaded(p),
            None => LoadOutcome::Rejected {
                reason: "incomplete payload (schema drift within v1?)".into(),
            },
        }
    }

    /// Persists one project's state, atomically (write temp + rename)
    /// so a crash mid-write leaves the previous file intact.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, project: &str, state: &StoredProject) -> std::io::Result<()> {
        let payload = encode_project(state).render();
        let header = format!(
            "ruf95-store v{STORE_VERSION} {}",
            fp_hex(fnv64(payload.as_bytes()))
        );
        let path = self.path_of(project);
        let tmp = self.dir.join(format!("{project}.json.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{header}")?;
            writeln!(f, "{payload}")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)
    }

    /// Project names with a file in the store, sorted.
    pub fn projects(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                if let Some(name) = e.file_name().to_str().and_then(|n| n.strip_suffix(".json")) {
                    out.push(name.to_string());
                }
            }
        }
        out.sort();
        out
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn encode_path(p: &StablePath) -> Value {
    Value::Obj(vec![
        ("b".into(), Value::opt_str(p.base.as_deref())),
        (
            "o".into(),
            Value::Arr(
                p.ops
                    .iter()
                    .map(|op| match op {
                        StableOp::Field(f) => Value::str(format!("f:{f}")),
                        StableOp::Index => Value::str("ix"),
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_path(v: &Value) -> Option<StablePath> {
    let ops = v
        .get("o")?
        .as_arr()?
        .iter()
        .map(|op| {
            let s = op.as_str()?;
            if s == "ix" {
                Some(StableOp::Index)
            } else {
                s.strip_prefix("f:").map(|f| StableOp::Field(f.into()))
            }
        })
        .collect::<Option<Vec<_>>>()?;
    Some(StablePath {
        base: v.get("b").and_then(Value::as_str).map(str::to_string),
        ops,
    })
}

fn encode_summary(s: &FuncSummary) -> Value {
    Value::Obj(vec![
        ("fp".into(), Value::str(fp_hex(s.fingerprint))),
        (
            "outputs".into(),
            Value::Arr(
                s.outputs
                    .iter()
                    .map(|pairs| {
                        Value::Arr(
                            pairs
                                .iter()
                                .map(|p| {
                                    Value::Obj(vec![
                                        ("p".into(), encode_path(&p.path)),
                                        ("r".into(), encode_path(&p.referent)),
                                    ])
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "calls".into(),
            Value::Arr(
                s.calls
                    .iter()
                    .map(|(off, callees)| {
                        Value::Arr(vec![
                            Value::Int(*off as i64),
                            Value::Arr(callees.iter().map(Value::str).collect()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_summary(v: &Value) -> Option<FuncSummary> {
    let outputs = v
        .get("outputs")?
        .as_arr()?
        .iter()
        .map(|pairs| {
            pairs
                .as_arr()?
                .iter()
                .map(|p| {
                    Some(StablePair {
                        path: decode_path(p.get("p")?)?,
                        referent: decode_path(p.get("r")?)?,
                    })
                })
                .collect::<Option<Vec<_>>>()
        })
        .collect::<Option<Vec<_>>>()?;
    let calls = v
        .get("calls")?
        .as_arr()?
        .iter()
        .map(|c| {
            let c = c.as_arr()?;
            let off = c.first()?.as_u64()?;
            let callees = c
                .get(1)?
                .as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?;
            Some((off as u32, callees))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(FuncSummary {
        fingerprint: parse_fp_hex(v.get("fp")?.as_str()?)?,
        outputs,
        calls,
    })
}

/// Decodes a bench's full `"summaries"` object (the deferred half of
/// project loading).
fn decode_summaries(v: &Value) -> Option<alias::fxhash::HashMap<String, FuncSummary>> {
    v.as_obj()?
        .iter()
        .map(|(name, s)| Some((name.clone(), decode_summary(s)?)))
        .collect()
}

fn encode_project(p: &StoredProject) -> Value {
    Value::Obj(vec![
        ("ci_spec_key".into(), Value::str(&p.ci_spec_key)),
        (
            "benches".into(),
            Value::Arr(
                p.benches
                    .iter()
                    .map(|b| {
                        let summaries = match &b.summaries {
                            // Sort function names so the file is
                            // byte-stable across runs (hash-map
                            // iteration is not).
                            StoredSummaries::Ready(m) => {
                                let mut names: Vec<&String> = m.keys().collect();
                                names.sort();
                                Value::Obj(
                                    names
                                        .iter()
                                        .map(|n| ((*n).clone(), encode_summary(&m[*n])))
                                        .collect(),
                                )
                            }
                            // Never-touched raw form: re-emit verbatim
                            // (it round-tripped the checksum at load).
                            StoredSummaries::Raw(v) => v.clone(),
                        };
                        Value::Obj(vec![
                            ("name".into(), Value::str(&b.name)),
                            ("source".into(), Value::str(&b.source)),
                            ("input".into(), Value::str(bytes_hex(&b.input))),
                            ("source_fp".into(), Value::str(fp_hex(b.source_fp))),
                            ("graph_fp".into(), Value::str(fp_hex(b.graph_fp))),
                            (
                                "solutions".into(),
                                Value::Arr(
                                    b.solution_fps
                                        .iter()
                                        .map(|(a, fp)| {
                                            Value::Obj(vec![
                                                ("analysis".into(), Value::str(a)),
                                                (
                                                    "fp".into(),
                                                    Value::opt_str(fp.map(fp_hex).as_deref()),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            ("summaries".into(), summaries),
                            (
                                "check_fp".into(),
                                Value::opt_str(b.check_fp.map(fp_hex).as_deref()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Consumes the parsed payload so each bench's `"summaries"` subtree
/// can be *moved* into [`StoredSummaries::Raw`] — cloning it at load
/// time would cost more than the eager decode this laziness replaces.
fn decode_project(v: Value) -> Option<StoredProject> {
    let ci_spec_key = v.get("ci_spec_key")?.as_str()?.to_string();
    let Value::Obj(fields) = v else { return None };
    let benches_raw = fields.into_iter().find(|(k, _)| k == "benches")?.1;
    let Value::Arr(items) = benches_raw else {
        return None;
    };
    let benches = items
        .into_iter()
        .map(decode_bench)
        .collect::<Option<Vec<_>>>()?;
    Some(StoredProject {
        ci_spec_key,
        benches,
    })
}

fn decode_bench(b: Value) -> Option<StoredBench> {
    let Value::Obj(mut fields) = b else {
        return None;
    };
    // Shape-check only; per-function decoding is deferred to the first
    // touch (StoredSummaries::decoded).
    let idx = fields.iter().position(|(k, _)| k == "summaries")?;
    let raw = fields.remove(idx).1;
    raw.as_obj()?;
    let summaries = StoredSummaries::Raw(raw);
    let b = Value::Obj(fields);
    let solution_fps = b
        .get("solutions")?
        .as_arr()?
        .iter()
        .map(|s| {
            let analysis = s.get("analysis")?.as_str()?.to_string();
            let fp = match s.get("fp") {
                Some(Value::Null) | None => None,
                Some(f) => Some(parse_fp_hex(f.as_str()?)?),
            };
            Some((analysis, fp))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(StoredBench {
        name: b.get("name")?.as_str()?.to_string(),
        source: b.get("source")?.as_str()?.to_string(),
        input: parse_bytes_hex(b.get("input")?.as_str()?)?,
        source_fp: parse_fp_hex(b.get("source_fp")?.as_str()?)?,
        graph_fp: parse_fp_hex(b.get("graph_fp")?.as_str()?)?,
        solution_fps,
        summaries,
        check_fp: match b.get("check_fp") {
            Some(Value::Null) | None => None,
            Some(f) => Some(parse_fp_hex(f.as_str()?)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_project() -> StoredProject {
        let mut summaries = alias::fxhash::HashMap::default();
        summaries.insert(
            "main".to_string(),
            FuncSummary {
                fingerprint: 0xfeed_f00d_dead_beef,
                outputs: vec![
                    vec![StablePair {
                        path: StablePath {
                            base: Some("g:gp".into()),
                            ops: vec![],
                        },
                        referent: StablePath {
                            base: Some("l:main:x".into()),
                            ops: vec![StableOp::Field("f".into()), StableOp::Index],
                        },
                    }],
                    vec![],
                ],
                calls: vec![(3, vec!["id".into(), "setg".into()])],
            },
        );
        StoredProject {
            ci_spec_key: "ci|site|none".into(),
            benches: vec![StoredBench {
                name: "span".into(),
                source: "int main(void) { return 0; }\n".into(),
                input: vec![1, 2, 3],
                source_fp: 7,
                graph_fp: u64::MAX,
                solution_fps: vec![("ci".into(), Some(42)), ("cs".into(), None)],
                summaries: StoredSummaries::Ready(summaries),
                check_fp: Some(99),
            }],
        }
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join("ruf95-store-test-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let p = sample_project();
        store.save("alpha", &p).unwrap();
        let LoadOutcome::Loaded(mut q) = store.load("alpha") else {
            panic!("expected Loaded");
        };
        assert_eq!(q.ci_spec_key, p.ci_spec_key);
        assert_eq!(q.benches.len(), 1);
        // Loading defers summary decoding; the first touch decodes.
        assert!(matches!(q.benches[0].summaries, StoredSummaries::Raw(_)));
        let mut p = p;
        let (a, b) = (&mut p.benches[0], &mut q.benches[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.source, b.source);
        assert_eq!(a.input, b.input);
        assert_eq!(a.source_fp, b.source_fp);
        assert_eq!(a.graph_fp, b.graph_fp);
        assert_eq!(a.solution_fps, b.solution_fps);
        assert_eq!(a.check_fp, b.check_fp);
        let (sa, sb) = (
            &a.summaries.decoded()["main"],
            &b.summaries.decoded()["main"],
        );
        assert_eq!(sa.fingerprint, sb.fingerprint);
        assert_eq!(sa.outputs, sb.outputs);
        assert_eq!(sa.calls, sb.calls);
        assert_eq!(store.projects(), vec!["alpha".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn raw_summaries_reencode_byte_identically() {
        // save → load (raw) → save must produce the same file as the
        // original save, so a session that never touched a bench's
        // summaries re-persists them without decoding.
        let dir = std::env::temp_dir().join("ruf95-store-test-raw-reencode");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        store.save("alpha", &sample_project()).unwrap();
        let first = std::fs::read_to_string(store.path_of("alpha")).unwrap();
        let LoadOutcome::Loaded(q) = store.load("alpha") else {
            panic!("expected Loaded");
        };
        store.save("alpha", &q).unwrap();
        let second = std::fs::read_to_string(store.path_of("alpha")).unwrap();
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_summaries_decode_to_empty_not_reject() {
        let mut p = sample_project();
        p.benches[0].summaries =
            StoredSummaries::Raw(Value::parse("{\"main\": {\"fp\": \"nope\"}}").unwrap());
        let dir = std::env::temp_dir().join("ruf95-store-test-badsum");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        store.save("alpha", &p).unwrap();
        let LoadOutcome::Loaded(mut q) = store.load("alpha") else {
            panic!("bad summaries must not reject the whole project");
        };
        assert!(q.benches[0].summaries.decoded().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_missing() {
        let dir = std::env::temp_dir().join("ruf95-store-test-missing");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        assert!(matches!(store.load("ghost"), LoadOutcome::Missing));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
