//! Versioned, checksummed disk store for per-project analysis state.
//!
//! One file per project, `<dir>/<project>.json`:
//!
//! ```text
//! ruf95-store v2 <fnv64-of-payload, 16 hex digits>
//! { ...payload JSON on one line... }
//! ```
//!
//! The payload carries, per benchmark, everything a restored session
//! needs to warm-start without trusting the store for correctness:
//! the source text (recompiled on restore), the FNV source/graph
//! fingerprints it was analyzed under, one versioned summary payload
//! *per solver* — each naming its vocabulary and carrying that solver's
//! per-function [`FunctionSummary`] facts, the seeds for every solver's
//! tier-3 resume — each solver's canonical solution fingerprint, and
//! the check-results fingerprint when checks ran. Solutions themselves
//! are *not* persisted — they are graph-id-indexed and cheaper to
//! re-derive from seeds than to re-validate — so a load can only ever
//! seed work, never substitute for it.
//!
//! Every load failure — missing file, bad header, version or checksum
//! mismatch, malformed or incomplete payload — degrades to an explicit
//! [`LoadOutcome`] variant that the service maps to a cold start. In
//! particular a `v1` file (CI-only summaries, pre-unification schema)
//! is rejected wholesale rather than half-decoded. Nothing in this
//! module panics on hostile input.

use alias::fingerprint::{fnv64, StableOp, StablePair, StablePath};
use alias::summary::{
    FuncFacts, FunctionSummary, MemOpPruning, SolverSummaries, StableAssum, StableCtx,
    SteensConstraint, Vocab,
};
use proto::json::Value;
use proto::{bytes_hex, fp_hex, parse_bytes_hex, parse_fp_hex};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Store format version; bumped on any payload schema change. `v2`
/// replaced the CI-only summary map with one versioned
/// [`SummaryPayload`](self) per solver.
pub const STORE_VERSION: u32 = 2;

/// Version tag inside each per-solver summary payload, independent of
/// the file header so a future payload-only change can keep the outer
/// framing.
pub const SUMMARY_PAYLOAD_VERSION: i64 = 2;

/// One benchmark's persisted state.
#[derive(Debug, Clone)]
pub struct StoredBench {
    /// Benchmark name.
    pub name: String,
    /// Full source text, recompiled on restore.
    pub source: String,
    /// Interpreter input bytes for the checker oracle.
    pub input: Vec<u8>,
    /// FNV-64 of `source` at persist time.
    pub source_fp: u64,
    /// VDG content fingerprint at persist time.
    pub graph_fp: u64,
    /// `(analysis, canonical solution fingerprint)` per solver;
    /// `None` for failed solves.
    pub solution_fps: Vec<(String, Option<u64>)>,
    /// Memoized per-solver facts, the tier-3 resume seeds. Loaded
    /// lazily: decoding is the dominant load cost, and a session that
    /// only fields demand queries never needs the seeds at all.
    pub summaries: StoredSummaries,
    /// FNV-64 over the benchmark's per-solver diagnostics, when a
    /// check request ran.
    pub check_fp: Option<u64>,
}

/// A benchmark's per-solver summaries, decoded on first touch rather
/// than at load time — `Store::load` used to decode every bench's
/// summary maps eagerly, which made a warm restore *slower* than a cold
/// solve for a session that then touched one bench.
#[derive(Debug, Clone)]
pub enum StoredSummaries {
    /// Decoded facts by solver name, ready to seed every solver's
    /// resume.
    Ready(HashMap<String, Arc<SolverSummaries>>),
    /// The raw `"summaries"` JSON object as loaded from disk.
    Raw(Value),
}

impl Default for StoredSummaries {
    fn default() -> Self {
        StoredSummaries::Ready(HashMap::default())
    }
}

impl StoredSummaries {
    /// The decoded per-solver map, decoding (once) if this is still the
    /// raw disk form. A malformed payload decodes to no entry for that
    /// solver: the session then cold-solves with it — the store can
    /// cost time, never correctness.
    pub fn decoded(&mut self) -> &HashMap<String, Arc<SolverSummaries>> {
        if let StoredSummaries::Raw(v) = self {
            let m = decode_summaries(v);
            *self = StoredSummaries::Ready(m);
        }
        match self {
            StoredSummaries::Ready(m) => m,
            StoredSummaries::Raw(_) => unreachable!("decoded above"),
        }
    }

    /// An owned decoded map, *without* materializing the `Ready` form:
    /// a raw entry decodes straight into the caller's hands and stays
    /// raw here, so re-persisting remains a verbatim re-emit and no
    /// second copy of the maps is kept (or cloned) per bench.
    pub fn decode_fresh(&self) -> HashMap<String, Arc<SolverSummaries>> {
        match self {
            StoredSummaries::Ready(m) => m.clone(),
            StoredSummaries::Raw(v) => decode_summaries(v),
        }
    }
}

/// A project's full persisted state.
#[derive(Debug, Clone, Default)]
pub struct StoredProject {
    /// The engine's full solver-spec key (CI spec plus every configured
    /// solver spec) the artifacts were computed under; summaries are
    /// only sound seeds for an engine with the same key.
    pub spec_key: String,
    /// One entry per benchmark, sorted by name.
    pub benches: Vec<StoredBench>,
}

/// Result of loading a project file.
#[derive(Debug)]
pub enum LoadOutcome {
    /// No file on disk — a genuinely new project.
    Missing,
    /// The project's state, verified and decoded.
    Loaded(StoredProject),
    /// The file exists but is unusable (truncated, corrupt, malformed,
    /// or written by a different store version — including pre-v2
    /// CI-only files). The service treats this exactly like
    /// [`LoadOutcome::Missing`] — cold start — and the next save
    /// overwrites the bad file.
    Rejected {
        /// Why the file was rejected.
        reason: String,
    },
}

/// Directory-backed store, one file per project.
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation error.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Store> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Store { dir })
    }

    /// The file a project persists to.
    pub fn path_of(&self, project: &str) -> PathBuf {
        self.dir.join(format!("{project}.json"))
    }

    /// Loads and verifies one project's state. Never panics: every
    /// failure mode becomes a [`LoadOutcome`] variant.
    pub fn load(&self, project: &str) -> LoadOutcome {
        let path = self.path_of(project);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Missing,
            Err(e) => {
                return LoadOutcome::Rejected {
                    reason: format!("unreadable: {e}"),
                }
            }
        };
        let Some((header, payload)) = text.split_once('\n') else {
            return LoadOutcome::Rejected {
                reason: "truncated: no payload line".into(),
            };
        };
        let fields: Vec<&str> = header.split(' ').collect();
        if fields.len() != 3 || fields[0] != "ruf95-store" {
            return LoadOutcome::Rejected {
                reason: format!("bad header {header:?}"),
            };
        }
        if fields[1] != format!("v{STORE_VERSION}") {
            return LoadOutcome::Rejected {
                reason: format!(
                    "version mismatch: file is {}, store is v{STORE_VERSION}",
                    fields[1]
                ),
            };
        }
        let Some(expected) = parse_fp_hex(fields[2]) else {
            return LoadOutcome::Rejected {
                reason: format!("bad checksum field {:?}", fields[2]),
            };
        };
        let payload = payload.trim_end_matches('\n');
        if fnv64(payload.as_bytes()) != expected {
            return LoadOutcome::Rejected {
                reason: "checksum mismatch (corrupt or truncated payload)".into(),
            };
        }
        let value = match Value::parse(payload) {
            Ok(v) => v,
            Err(e) => {
                return LoadOutcome::Rejected {
                    reason: format!("malformed payload: {e}"),
                }
            }
        };
        match decode_project(value) {
            Some(p) => LoadOutcome::Loaded(p),
            None => LoadOutcome::Rejected {
                reason: "incomplete payload (schema drift within v2?)".into(),
            },
        }
    }

    /// Persists one project's state, atomically (write temp + rename)
    /// so a crash mid-write leaves the previous file intact.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, project: &str, state: &StoredProject) -> std::io::Result<()> {
        let payload = encode_project(state).render();
        let header = format!(
            "ruf95-store v{STORE_VERSION} {}",
            fp_hex(fnv64(payload.as_bytes()))
        );
        let path = self.path_of(project);
        let tmp = self.dir.join(format!("{project}.json.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{header}")?;
            writeln!(f, "{payload}")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)
    }

    /// Project names with a file in the store, sorted.
    pub fn projects(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                if let Some(name) = e.file_name().to_str().and_then(|n| n.strip_suffix(".json")) {
                    out.push(name.to_string());
                }
            }
        }
        out.sort();
        out
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

// ---------------------------------------------------------------------
// Stable-vocabulary codecs. Encoders emit canonical (sorted) forms so
// the file is byte-stable across runs; decoders return `None` on any
// shape violation, which the caller degrades to "no seeds".
// ---------------------------------------------------------------------

fn encode_path(p: &StablePath) -> Value {
    Value::Obj(vec![
        ("b".into(), Value::opt_str(p.base.as_deref())),
        (
            "o".into(),
            Value::Arr(
                p.ops
                    .iter()
                    .map(|op| match op {
                        StableOp::Field(f) => Value::str(format!("f:{f}")),
                        StableOp::Index => Value::str("ix"),
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_path(v: &Value) -> Option<StablePath> {
    let ops = v
        .get("o")?
        .as_arr()?
        .iter()
        .map(|op| {
            let s = op.as_str()?;
            if s == "ix" {
                Some(StableOp::Index)
            } else {
                s.strip_prefix("f:").map(|f| StableOp::Field(f.into()))
            }
        })
        .collect::<Option<Vec<_>>>()?;
    Some(StablePath {
        base: v.get("b").and_then(Value::as_str).map(str::to_string),
        ops,
    })
}

fn encode_pair(p: &StablePair) -> Value {
    Value::Obj(vec![
        ("p".into(), encode_path(&p.path)),
        ("r".into(), encode_path(&p.referent)),
    ])
}

fn decode_pair(v: &Value) -> Option<StablePair> {
    Some(StablePair {
        path: decode_path(v.get("p")?)?,
        referent: decode_path(v.get("r")?)?,
    })
}

fn encode_pair_rows(rows: &[Vec<StablePair>]) -> Value {
    Value::Arr(
        rows.iter()
            .map(|pairs| Value::Arr(pairs.iter().map(encode_pair).collect()))
            .collect(),
    )
}

fn decode_pair_rows(v: &Value) -> Option<Vec<Vec<StablePair>>> {
    v.as_arr()?
        .iter()
        .map(|pairs| pairs.as_arr()?.iter().map(decode_pair).collect())
        .collect()
}

fn encode_ctx(c: &StableCtx) -> Value {
    match c {
        StableCtx::Root => Value::Null,
        StableCtx::Call { func, offset } => Value::Obj(vec![
            ("f".into(), Value::str(func)),
            ("o".into(), Value::Int(*offset as i64)),
        ]),
    }
}

fn decode_ctx(v: &Value) -> Option<StableCtx> {
    match v {
        Value::Null => Some(StableCtx::Root),
        _ => Some(StableCtx::Call {
            func: v.get("f")?.as_str()?.to_string(),
            offset: v.get("o")?.as_u64()? as u32,
        }),
    }
}

fn encode_assum(a: &StableAssum) -> Value {
    Value::Obj(vec![
        ("i".into(), Value::Int(a.formal as i64)),
        ("pr".into(), encode_pair(&a.pair)),
    ])
}

fn decode_assum(v: &Value) -> Option<StableAssum> {
    Some(StableAssum {
        formal: v.get("i")?.as_u64()? as u32,
        pair: decode_pair(v.get("pr")?)?,
    })
}

fn encode_atom(a: &SteensConstraint) -> Value {
    let int = |n: u32| Value::Int(n as i64);
    let opt_int = |n: Option<u32>| n.map_or(Value::Null, |n| Value::Int(n as i64));
    let ints = |ns: &[u32]| Value::Arr(ns.iter().map(|&n| int(n)).collect());
    Value::Arr(match a {
        SteensConstraint::Base { out, base } => {
            vec![Value::str("b"), int(*out), Value::str(base)]
        }
        SteensConstraint::Move { dst, src } => vec![Value::str("m"), int(*dst), int(*src)],
        SteensConstraint::Load { out, loc } => vec![Value::str("l"), int(*out), int(*loc)],
        SteensConstraint::Store { loc, val } => vec![Value::str("s"), int(*loc), int(*val)],
        SteensConstraint::Copy { dst, src } => vec![Value::str("c"), int(*dst), int(*src)],
        SteensConstraint::CallTo {
            callee,
            args,
            result,
        } => vec![
            Value::str("ct"),
            Value::str(callee),
            ints(args),
            opt_int(*result),
        ],
        SteensConstraint::CallIndirect { args, result } => {
            vec![Value::str("cx"), ints(args), opt_int(*result)]
        }
    })
}

fn decode_atom(v: &Value) -> Option<SteensConstraint> {
    let a = v.as_arr()?;
    let int = |i: usize| a.get(i)?.as_u64().map(|n| n as u32);
    let opt_int = |i: usize| match a.get(i) {
        Some(Value::Null) => Some(None),
        Some(v) => v.as_u64().map(|n| Some(n as u32)),
        None => None,
    };
    let ints = |i: usize| -> Option<Vec<u32>> {
        a.get(i)?
            .as_arr()?
            .iter()
            .map(|n| n.as_u64().map(|n| n as u32))
            .collect()
    };
    Some(match a.first()?.as_str()? {
        "b" => SteensConstraint::Base {
            out: int(1)?,
            base: a.get(2)?.as_str()?.to_string(),
        },
        "m" => SteensConstraint::Move {
            dst: int(1)?,
            src: int(2)?,
        },
        "l" => SteensConstraint::Load {
            out: int(1)?,
            loc: int(2)?,
        },
        "s" => SteensConstraint::Store {
            loc: int(1)?,
            val: int(2)?,
        },
        "c" => SteensConstraint::Copy {
            dst: int(1)?,
            src: int(2)?,
        },
        "ct" => SteensConstraint::CallTo {
            callee: a.get(1)?.as_str()?.to_string(),
            args: ints(2)?,
            result: opt_int(3)?,
        },
        "cx" => SteensConstraint::CallIndirect {
            args: ints(1)?,
            result: opt_int(2)?,
        },
        _ => return None,
    })
}

fn encode_facts(f: &FuncFacts) -> Value {
    match f {
        FuncFacts::Ci(rows) | FuncFacts::Weihl(rows) => encode_pair_rows(rows),
        FuncFacts::K1(rows) => Value::Arr(
            rows.iter()
                .map(|ctxs| {
                    Value::Arr(
                        ctxs.iter()
                            .map(|(c, pairs)| {
                                Value::Arr(vec![
                                    encode_ctx(c),
                                    Value::Arr(pairs.iter().map(encode_pair).collect()),
                                ])
                            })
                            .collect(),
                    )
                })
                .collect(),
        ),
        FuncFacts::Cs { outputs, memops } => Value::Obj(vec![
            (
                "outputs".into(),
                Value::Arr(
                    outputs
                        .iter()
                        .map(|row| {
                            Value::Arr(
                                row.iter()
                                    .map(|(p, antichain)| {
                                        Value::Arr(vec![
                                            encode_pair(p),
                                            Value::Arr(
                                                antichain
                                                    .iter()
                                                    .map(|set| {
                                                        Value::Arr(
                                                            set.iter().map(encode_assum).collect(),
                                                        )
                                                    })
                                                    .collect(),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "memops".into(),
                Value::Arr(
                    memops
                        .iter()
                        .map(|m| {
                            Value::Obj(vec![
                                ("o".into(), Value::Int(m.offset as i64)),
                                ("s".into(), Value::Bool(m.single)),
                                (
                                    "lr".into(),
                                    Value::Arr(m.loc_refs.iter().map(encode_path).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        FuncFacts::Steens(atoms) => Value::Arr(atoms.iter().map(encode_atom).collect()),
    }
}

fn decode_facts(vocab: Vocab, v: &Value) -> Option<FuncFacts> {
    Some(match vocab {
        Vocab::Ci => FuncFacts::Ci(decode_pair_rows(v)?),
        Vocab::Weihl => FuncFacts::Weihl(decode_pair_rows(v)?),
        Vocab::K1 => FuncFacts::K1(
            v.as_arr()?
                .iter()
                .map(|ctxs| {
                    ctxs.as_arr()?
                        .iter()
                        .map(|entry| {
                            let entry = entry.as_arr()?;
                            let ctx = decode_ctx(entry.first()?)?;
                            let pairs = entry
                                .get(1)?
                                .as_arr()?
                                .iter()
                                .map(decode_pair)
                                .collect::<Option<Vec<_>>>()?;
                            Some((ctx, pairs))
                        })
                        .collect()
                })
                .collect::<Option<Vec<_>>>()?,
        ),
        Vocab::Cs => FuncFacts::Cs {
            outputs: v
                .get("outputs")?
                .as_arr()?
                .iter()
                .map(|row| {
                    row.as_arr()?
                        .iter()
                        .map(|entry| {
                            let entry = entry.as_arr()?;
                            let pair = decode_pair(entry.first()?)?;
                            let antichain = entry
                                .get(1)?
                                .as_arr()?
                                .iter()
                                .map(|set| {
                                    set.as_arr()?
                                        .iter()
                                        .map(decode_assum)
                                        .collect::<Option<Vec<_>>>()
                                })
                                .collect::<Option<Vec<_>>>()?;
                            Some((pair, antichain))
                        })
                        .collect()
                })
                .collect::<Option<Vec<_>>>()?,
            memops: v
                .get("memops")?
                .as_arr()?
                .iter()
                .map(|m| {
                    Some(MemOpPruning {
                        offset: m.get("o")?.as_u64()? as u32,
                        single: m.get("s")?.as_bool()?,
                        loc_refs: m
                            .get("lr")?
                            .as_arr()?
                            .iter()
                            .map(decode_path)
                            .collect::<Option<Vec<_>>>()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        },
        Vocab::Steens => FuncFacts::Steens(
            v.as_arr()?
                .iter()
                .map(decode_atom)
                .collect::<Option<Vec<_>>>()?,
        ),
    })
}

fn encode_func(s: &FunctionSummary) -> Value {
    Value::Obj(vec![
        ("fp".into(), Value::str(fp_hex(s.fingerprint))),
        (
            "calls".into(),
            Value::Arr(
                s.calls
                    .iter()
                    .map(|(off, callees)| {
                        Value::Arr(vec![
                            Value::Int(*off as i64),
                            Value::Arr(callees.iter().map(Value::str).collect()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("facts".into(), encode_facts(&s.facts)),
    ])
}

fn decode_func(vocab: Vocab, v: &Value) -> Option<FunctionSummary> {
    let calls = v
        .get("calls")?
        .as_arr()?
        .iter()
        .map(|c| {
            let c = c.as_arr()?;
            let off = c.first()?.as_u64()?;
            let callees = c
                .get(1)?
                .as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?;
            Some((off as u32, callees))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(FunctionSummary {
        fingerprint: parse_fp_hex(v.get("fp")?.as_str()?)?,
        calls,
        facts: decode_facts(vocab, v.get("facts")?)?,
    })
}

/// Encodes one solver's whole-program summaries as a versioned payload
/// naming its vocabulary.
fn encode_payload(s: &SolverSummaries) -> Value {
    // Sort function names so the file is byte-stable across runs
    // (hash-map iteration is not).
    let mut names: Vec<&String> = s.funcs.keys().collect();
    names.sort();
    Value::Obj(vec![
        ("v".into(), Value::Int(SUMMARY_PAYLOAD_VERSION)),
        ("vocab".into(), Value::str(s.vocab.name())),
        (
            "funcs".into(),
            Value::Obj(
                names
                    .iter()
                    .map(|n| ((*n).clone(), encode_func(&s.funcs[*n])))
                    .collect(),
            ),
        ),
        (
            "store".into(),
            Value::Arr(s.store.iter().map(encode_pair).collect()),
        ),
    ])
}

fn decode_payload(v: &Value) -> Option<SolverSummaries> {
    if v.get("v")?.as_i64()? != SUMMARY_PAYLOAD_VERSION {
        return None;
    }
    let vocab = Vocab::by_name(v.get("vocab")?.as_str()?)?;
    let mut out = SolverSummaries::new(vocab);
    for (name, f) in v.get("funcs")?.as_obj()? {
        out.funcs.insert(name.clone(), decode_func(vocab, f)?);
    }
    out.store = v
        .get("store")?
        .as_arr()?
        .iter()
        .map(decode_pair)
        .collect::<Option<Vec<_>>>()?;
    Some(out)
}

/// Decodes a bench's full `"summaries"` object (the deferred half of
/// project loading). A malformed payload drops that solver's entry —
/// the session then solves it fresh — rather than rejecting the rest.
fn decode_summaries(v: &Value) -> HashMap<String, Arc<SolverSummaries>> {
    let Some(obj) = v.as_obj() else {
        return HashMap::default();
    };
    obj.iter()
        .filter_map(|(name, s)| Some((name.clone(), Arc::new(decode_payload(s)?))))
        .collect()
}

fn encode_project(p: &StoredProject) -> Value {
    Value::Obj(vec![
        ("spec_key".into(), Value::str(&p.spec_key)),
        (
            "benches".into(),
            Value::Arr(
                p.benches
                    .iter()
                    .map(|b| {
                        let summaries = match &b.summaries {
                            StoredSummaries::Ready(m) => {
                                let mut names: Vec<&String> = m.keys().collect();
                                names.sort();
                                Value::Obj(
                                    names
                                        .iter()
                                        .map(|n| ((*n).clone(), encode_payload(&m[*n])))
                                        .collect(),
                                )
                            }
                            // Never-touched raw form: re-emit verbatim
                            // (it round-tripped the checksum at load).
                            StoredSummaries::Raw(v) => v.clone(),
                        };
                        Value::Obj(vec![
                            ("name".into(), Value::str(&b.name)),
                            ("source".into(), Value::str(&b.source)),
                            ("input".into(), Value::str(bytes_hex(&b.input))),
                            ("source_fp".into(), Value::str(fp_hex(b.source_fp))),
                            ("graph_fp".into(), Value::str(fp_hex(b.graph_fp))),
                            (
                                "solutions".into(),
                                Value::Arr(
                                    b.solution_fps
                                        .iter()
                                        .map(|(a, fp)| {
                                            Value::Obj(vec![
                                                ("analysis".into(), Value::str(a)),
                                                (
                                                    "fp".into(),
                                                    Value::opt_str(fp.map(fp_hex).as_deref()),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            ("summaries".into(), summaries),
                            (
                                "check_fp".into(),
                                Value::opt_str(b.check_fp.map(fp_hex).as_deref()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Consumes the parsed payload so each bench's `"summaries"` subtree
/// can be *moved* into [`StoredSummaries::Raw`] — cloning it at load
/// time would cost more than the eager decode this laziness replaces.
fn decode_project(v: Value) -> Option<StoredProject> {
    let spec_key = v.get("spec_key")?.as_str()?.to_string();
    let Value::Obj(fields) = v else { return None };
    let benches_raw = fields.into_iter().find(|(k, _)| k == "benches")?.1;
    let Value::Arr(items) = benches_raw else {
        return None;
    };
    let benches = items
        .into_iter()
        .map(decode_bench)
        .collect::<Option<Vec<_>>>()?;
    Some(StoredProject { spec_key, benches })
}

fn decode_bench(b: Value) -> Option<StoredBench> {
    let Value::Obj(mut fields) = b else {
        return None;
    };
    // Shape-check only; per-solver decoding is deferred to the first
    // touch (StoredSummaries::decoded).
    let idx = fields.iter().position(|(k, _)| k == "summaries")?;
    let raw = fields.remove(idx).1;
    raw.as_obj()?;
    let summaries = StoredSummaries::Raw(raw);
    let b = Value::Obj(fields);
    let solution_fps = b
        .get("solutions")?
        .as_arr()?
        .iter()
        .map(|s| {
            let analysis = s.get("analysis")?.as_str()?.to_string();
            let fp = match s.get("fp") {
                Some(Value::Null) | None => None,
                Some(f) => Some(parse_fp_hex(f.as_str()?)?),
            };
            Some((analysis, fp))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(StoredBench {
        name: b.get("name")?.as_str()?.to_string(),
        source: b.get("source")?.as_str()?.to_string(),
        input: parse_bytes_hex(b.get("input")?.as_str()?)?,
        source_fp: parse_fp_hex(b.get("source_fp")?.as_str()?)?,
        graph_fp: parse_fp_hex(b.get("graph_fp")?.as_str()?)?,
        solution_fps,
        summaries,
        check_fp: match b.get("check_fp") {
            Some(Value::Null) | None => None,
            Some(f) => Some(parse_fp_hex(f.as_str()?)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(base: &str, referent: &str) -> StablePair {
        StablePair {
            path: StablePath {
                base: Some(base.into()),
                ops: vec![],
            },
            referent: StablePath {
                base: Some(referent.into()),
                ops: vec![StableOp::Field("f".into()), StableOp::Index],
            },
        }
    }

    /// One summary container per solver vocabulary, covering every
    /// `FuncFacts` variant the codec must round-trip.
    fn sample_summaries() -> HashMap<String, Arc<SolverSummaries>> {
        let func = |facts: FuncFacts| FunctionSummary {
            fingerprint: 0xfeed_f00d_dead_beef,
            calls: vec![(3, vec!["id".into(), "setg".into()])],
            facts,
        };
        let mut all = HashMap::default();
        for vocab in [Vocab::Ci, Vocab::Weihl, Vocab::K1, Vocab::Cs, Vocab::Steens] {
            let facts = match vocab {
                Vocab::Ci => FuncFacts::Ci(vec![vec![pair("g:gp", "l:main:x")], vec![]]),
                Vocab::Weihl => FuncFacts::Weihl(vec![vec![], vec![pair("g:a", "g:b")]]),
                Vocab::K1 => FuncFacts::K1(vec![vec![
                    (StableCtx::Root, vec![pair("g:gp", "g:g1")]),
                    (
                        StableCtx::Call {
                            func: "main".into(),
                            offset: 7,
                        },
                        vec![],
                    ),
                ]]),
                Vocab::Cs => FuncFacts::Cs {
                    outputs: vec![vec![(
                        pair("g:gp", "g:g1"),
                        vec![
                            vec![StableAssum {
                                formal: 1,
                                pair: pair("l:f:p", "g:g2"),
                            }],
                            vec![],
                        ],
                    )]],
                    memops: vec![MemOpPruning {
                        offset: 9,
                        single: true,
                        loc_refs: vec![StablePath {
                            base: Some("g:g1".into()),
                            ops: vec![],
                        }],
                    }],
                },
                Vocab::Steens => FuncFacts::Steens(vec![
                    SteensConstraint::Base {
                        out: 0,
                        base: "g:g1".into(),
                    },
                    SteensConstraint::Move { dst: 1, src: 0 },
                    SteensConstraint::Load { out: 2, loc: 1 },
                    SteensConstraint::Store { loc: 1, val: 2 },
                    SteensConstraint::Copy { dst: 3, src: 4 },
                    SteensConstraint::CallTo {
                        callee: "id".into(),
                        args: vec![5, 6],
                        result: Some(7),
                    },
                    SteensConstraint::CallIndirect {
                        args: vec![],
                        result: None,
                    },
                ]),
            };
            let mut s = SolverSummaries::new(vocab);
            s.funcs.insert("main".to_string(), func(facts));
            if vocab == Vocab::Weihl {
                s.store = vec![pair("g:store", "g:g2")];
            }
            all.insert(vocab.name().to_string(), Arc::new(s));
        }
        all
    }

    fn sample_project() -> StoredProject {
        StoredProject {
            spec_key: "ci|site|none|weihl|steens|ci|k1|cs".into(),
            benches: vec![StoredBench {
                name: "span".into(),
                source: "int main(void) { return 0; }\n".into(),
                input: vec![1, 2, 3],
                source_fp: 7,
                graph_fp: u64::MAX,
                solution_fps: vec![("ci".into(), Some(42)), ("cs".into(), None)],
                summaries: StoredSummaries::Ready(sample_summaries()),
                check_fp: Some(99),
            }],
        }
    }

    #[test]
    fn save_load_round_trips_every_vocabulary() {
        let dir = std::env::temp_dir().join("ruf95-store-test-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let p = sample_project();
        store.save("alpha", &p).unwrap();
        let LoadOutcome::Loaded(mut q) = store.load("alpha") else {
            panic!("expected Loaded");
        };
        assert_eq!(q.spec_key, p.spec_key);
        assert_eq!(q.benches.len(), 1);
        // Loading defers summary decoding; the first touch decodes.
        assert!(matches!(q.benches[0].summaries, StoredSummaries::Raw(_)));
        let mut p = p;
        let (a, b) = (&mut p.benches[0], &mut q.benches[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.source, b.source);
        assert_eq!(a.input, b.input);
        assert_eq!(a.source_fp, b.source_fp);
        assert_eq!(a.graph_fp, b.graph_fp);
        assert_eq!(a.solution_fps, b.solution_fps);
        assert_eq!(a.check_fp, b.check_fp);
        let (sa, sb) = (a.summaries.decoded(), b.summaries.decoded());
        assert_eq!(sa.len(), 5, "one payload per solver");
        for (solver, expect) in sa {
            let got = &sb[solver];
            assert_eq!(**expect, **got, "{solver} diverged in the round trip");
        }
        assert_eq!(store.projects(), vec!["alpha".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn raw_summaries_reencode_byte_identically() {
        // save → load (raw) → save must produce the same file as the
        // original save, so a session that never touched a bench's
        // summaries re-persists them without decoding.
        let dir = std::env::temp_dir().join("ruf95-store-test-raw-reencode");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        store.save("alpha", &sample_project()).unwrap();
        let first = std::fs::read_to_string(store.path_of("alpha")).unwrap();
        let LoadOutcome::Loaded(q) = store.load("alpha") else {
            panic!("expected Loaded");
        };
        store.save("alpha", &q).unwrap();
        let second = std::fs::read_to_string(store.path_of("alpha")).unwrap();
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_summaries_decode_to_empty_not_reject() {
        let mut p = sample_project();
        p.benches[0].summaries =
            StoredSummaries::Raw(Value::parse("{\"ci\": {\"vocab\": \"nope\"}}").unwrap());
        let dir = std::env::temp_dir().join("ruf95-store-test-badsum");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        store.save("alpha", &p).unwrap();
        let LoadOutcome::Loaded(mut q) = store.load("alpha") else {
            panic!("bad summaries must not reject the whole project");
        };
        assert!(q.benches[0].summaries.decoded().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_payload_version_drops_that_solver_only() {
        let mut p = sample_project();
        // One stale-versioned payload among good ones: only it drops.
        let good = encode_payload(&sample_summaries()["ci"]).render();
        let raw = format!(
            "{{\"ci\": {good}, \"cs\": {{\"v\": 1, \"vocab\": \"cs\", \"funcs\": {{}}, \"store\": []}}}}"
        );
        p.benches[0].summaries = StoredSummaries::Raw(Value::parse(&raw).unwrap());
        let dir = std::env::temp_dir().join("ruf95-store-test-payloadver");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        store.save("alpha", &p).unwrap();
        let LoadOutcome::Loaded(mut q) = store.load("alpha") else {
            panic!("expected Loaded");
        };
        let decoded = q.benches[0].summaries.decoded();
        assert!(decoded.contains_key("ci"));
        assert!(!decoded.contains_key("cs"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_store_files_are_rejected() {
        // A pre-unification v1 file (CI-only summaries) must cold-start,
        // not half-decode: the header version gates the whole payload.
        let dir = std::env::temp_dir().join("ruf95-store-test-v1");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let payload = r#"{"ci_spec_key": "k", "benches": []}"#;
        let text = format!(
            "ruf95-store v1 {}\n{payload}\n",
            fp_hex(fnv64(payload.as_bytes()))
        );
        std::fs::write(store.path_of("old"), text).unwrap();
        match store.load("old") {
            LoadOutcome::Rejected { reason } => {
                assert!(reason.contains("version mismatch"), "{reason}");
            }
            other => panic!("v1 file must be rejected, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_missing() {
        let dir = std::env::temp_dir().join("ruf95-store-test-missing");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        assert!(matches!(store.load("ghost"), LoadOutcome::Missing));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
