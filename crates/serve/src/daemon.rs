//! The socket transport: a newline-delimited-JSON TCP daemon around
//! [`Service`], plus the client side.
//!
//! Framing is [`proto::write_frame`]/[`proto::read_frame`]: one JSON
//! object per line, `"v": 2` version tag. One thread per connection;
//! every request takes the service mutex, so the daemon's answers are
//! exactly the answers of a serial in-process [`Service`].
//!
//! Shutdown: a [`proto::Request::Shutdown`] flips an atomic flag and
//! the accept loop is unblocked by a self-connection, so the listener
//! thread exits promptly instead of hanging in `accept`.

use crate::service::Service;
use proto::{read_frame, write_frame, Request, Response};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// A running daemon: join handle plus the bound address.
pub struct DaemonHandle {
    addr: std::net::SocketAddr,
    join: thread::JoinHandle<()>,
}

impl DaemonHandle {
    /// The address the daemon actually bound (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Waits for the accept loop to exit (after a shutdown request).
    pub fn join(self) {
        let _ = self.join.join();
    }
}

/// Binds `bind_addr` and serves `service` on a background thread.
/// Returns once the listener is bound, so callers can connect
/// immediately.
///
/// # Errors
///
/// Returns the bind error, if any.
pub fn spawn(service: Service, bind_addr: &str) -> io::Result<DaemonHandle> {
    let listener = TcpListener::bind(bind_addr)?;
    let addr = listener.local_addr()?;
    let service = Arc::new(Mutex::new(service));
    let stop = Arc::new(AtomicBool::new(false));
    let join = thread::spawn(move || accept_loop(listener, service, stop));
    Ok(DaemonHandle { addr, join })
}

/// Binds and serves on the calling thread until shutdown. This is the
/// `ruf95 serve` entry point.
///
/// # Errors
///
/// Returns the bind error, if any.
pub fn run(service: Service, bind_addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(bind_addr)?;
    eprintln!("ruf95 serve: listening on {}", listener.local_addr()?);
    accept_loop(
        listener,
        Arc::new(Mutex::new(service)),
        Arc::new(AtomicBool::new(false)),
    );
    Ok(())
}

fn accept_loop(listener: TcpListener, service: Arc<Mutex<Service>>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        // Connection threads are deliberately not joined: one blocked
        // in `read` on an idle client must not stall shutdown. They
        // hold only clones of the service Arc and die with their
        // sockets (or the process).
        thread::spawn(move || {
            if let Some(addr) = serve_conn(stream, &service, &stop) {
                // Shutdown was requested on this connection: poke the
                // accept loop so it notices the flag instead of
                // blocking on the next accept forever.
                let _ = TcpStream::connect(addr);
            }
        });
    }
}

/// Handles one client connection; returns the daemon's local address
/// when this connection requested shutdown (so the caller can poke the
/// accept loop), `None` otherwise.
fn serve_conn(
    stream: TcpStream,
    service: &Mutex<Service>,
    stop: &AtomicBool,
) -> Option<std::net::SocketAddr> {
    let local = stream.local_addr().ok();
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = BufWriter::new(stream);
    loop {
        // Malformed frames answer with an error and keep the
        // connection — one bad request must not kill a client.
        let decoded = match read_frame(&mut reader) {
            Ok(Some(v)) => Request::from_value(&v).map_err(|e| format!("bad request: {e}")),
            // Clean disconnect.
            Ok(None) => return None,
            Err(e) => Err(format!("bad request frame: {e}")),
        };
        let req = match decoded {
            Ok(req) => req,
            Err(message) => {
                let resp = Response::Error { message };
                if write_frame(&mut writer, &resp.to_value()).is_err() || writer.flush().is_err() {
                    return None;
                }
                continue;
            }
        };
        let is_shutdown = matches!(req, Request::Shutdown);
        let resp = {
            let mut svc = service.lock().unwrap_or_else(|p| p.into_inner());
            svc.handle(&req)
        };
        if write_frame(&mut writer, &resp.to_value()).is_err() || writer.flush().is_err() {
            return None;
        }
        if is_shutdown {
            stop.store(true, Ordering::SeqCst);
            return local;
        }
    }
}

/// A persistent client connection to a running daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `"127.0.0.1:7095"`).
    ///
    /// # Errors
    ///
    /// Returns the connect error, if any.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Returns transport errors; protocol-level failures arrive as
    /// [`Response::Error`] values, not `Err`.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &req.to_value())?;
        self.writer.flush()?;
        match read_frame(&mut self.reader)? {
            Some(v) => Response::from_value(&v).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}"))
            }),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-request",
            )),
        }
    }
}

/// One-shot convenience: connect, send, return the response.
///
/// # Errors
///
/// Returns connect/transport errors.
pub fn request(addr: impl ToSocketAddrs, req: &Request) -> io::Result<Response> {
    Client::connect(addr)?.request(req)
}
