//! The transport-agnostic request dispatcher.
//!
//! [`Service::handle`] maps one [`proto::Request`] to one
//! [`proto::Response`]. The CLI calls it directly for in-process
//! dispatch; the TCP daemon calls it behind a mutex, one request at a
//! time — which is also the concurrency argument: requests are strictly
//! serialized, so N interleaved clients observe exactly the answers a
//! serial caller would.
//!
//! Sessions: each named project owns a [`engine::SummaryCache`] (and a
//! check cache, and the solved [`engine::BenchOutput`]s for demand
//! queries), isolated from every other project. Under a configured
//! memory budget the least-recently-used sessions are evicted; their
//! disk-store state survives, so the next request warm-starts instead
//! of cold-starting.
//!
//! Persistence is write-through: after every analyze/check the
//! project's summaries, solution fingerprints, and check fingerprints
//! go to the [`crate::store::Store`]. A restored session seeds the
//! tier-3 CI resume from the stored summaries; the engine recompiles
//! and re-verifies everything, so a corrupt or stale store can cost
//! time, never correctness.

use crate::store::{LoadOutcome, Store, StoredBench, StoredProject};
use alias::fingerprint::{fnv64, stable_base_key, Fnv64, GraphIndex};
use alias::solver::solution_fingerprint;
use engine::check::{diagnostics_json, fp_monotone_violation, render_diagnostics, BenchChecks};
use engine::{BenchOutput, CheckCache, EngineRun, Job, SummaryCache};
use proto::json::Value;
use proto::{
    fp_hex, BenchCheckInfo, BenchFps, JobSpec, ProjectStats, QueryAnswer, QueryKind, Request,
    Response, ServeInfo, SiteInfo, SolverCheck, SolverFp,
};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration for a [`Service`].
#[derive(Default)]
pub struct ServiceOptions {
    /// Disk store directory; `None` disables persistence.
    pub store_dir: Option<std::path::PathBuf>,
    /// Session memory budget in bytes; 0 = unlimited.
    pub mem_budget: usize,
    /// Worker threads per engine run (0 = all cores).
    pub threads: usize,
}

/// One project's in-memory session.
struct Session {
    cache: SummaryCache,
    check_cache: CheckCache,
    /// Last solved outputs by benchmark name, for demand queries.
    benches: HashMap<String, BenchOutput>,
    /// Persisted view of each benchmark, rebuilt on every analyze.
    stored: HashMap<String, StoredBench>,
    last_used: Instant,
    /// Whether this session was seeded from the disk store.
    restored: bool,
    /// Whether `stored` has diverged from the disk store since the last
    /// successful save. A pure-replay request leaves it clear, so warm
    /// requests skip the store write entirely.
    dirty: bool,
    /// Memoized per-solver fingerprints and pair counts, keyed by
    /// benchmark name and guarded by (source_fp, graph_fp). Solutions
    /// are a deterministic function of the source, so a replayed bench
    /// reuses its fingerprints instead of re-walking every solution —
    /// the dominant cost of a warm analyze response.
    fps_memo: HashMap<String, FpsMemo>,
}

/// Cached fingerprint work for one benchmark (see [`Session::fps_memo`]).
struct FpsMemo {
    source_fp: u64,
    graph_fp: u64,
    /// Per analysis: (name, solution fingerprint, pair count).
    solvers: Vec<(String, Option<u64>, Option<u64>)>,
}

/// The persistent analysis service.
pub struct Service {
    engine: engine::Engine,
    store: Option<Store>,
    sessions: HashMap<String, Session>,
    mem_budget: usize,
    started: Instant,
    request_counts: Vec<(String, u64)>,
    evictions: u64,
}

fn err(message: impl Into<String>) -> Response {
    Response::Error {
        message: message.into(),
    }
}

/// Project names double as store file names, so they are restricted to
/// a conservative portable set.
fn valid_project(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

impl Service {
    /// Builds a service; opens (creating if needed) the disk store when
    /// one is configured.
    ///
    /// # Errors
    ///
    /// Returns the store-directory creation error, if any.
    pub fn new(opts: ServiceOptions) -> std::io::Result<Service> {
        let store = match opts.store_dir {
            Some(dir) => Some(Store::open(dir)?),
            None => None,
        };
        Ok(Service {
            engine: engine::Engine::new().threads(opts.threads),
            store,
            sessions: HashMap::new(),
            mem_budget: opts.mem_budget,
            started: Instant::now(),
            request_counts: Vec::new(),
            evictions: 0,
        })
    }

    /// Dispatches one request. Total: every failure becomes
    /// [`Response::Error`], never a panic — the daemon stays up.
    pub fn handle(&mut self, req: &Request) -> Response {
        self.count(req.type_name());
        match req {
            Request::Analyze {
                project,
                jobs,
                fresh,
                want_report,
            } => self.analyze(project, jobs, *fresh, *want_report),
            Request::Check {
                project,
                jobs,
                analysis,
                want_report,
            } => self.check(project, jobs, analysis, *want_report),
            Request::Query {
                project,
                bench,
                analysis,
                query,
            } => self.query(project, bench, analysis, query),
            Request::Stats => self.stats(),
            Request::Evict { project } => self.evict(project.as_deref()),
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    fn count(&mut self, name: &str) {
        match self.request_counts.iter_mut().find(|(k, _)| k == name) {
            Some((_, n)) => *n += 1,
            None => self.request_counts.push((name.to_string(), 1)),
        }
    }

    /// Fetches or creates a project's session. A new session whose
    /// project has compatible disk-store state is seeded with the
    /// stored summaries, so its first analyze resumes instead of
    /// re-solving.
    // The error arm intentionally carries the full typed Response.
    #[allow(clippy::result_large_err)]
    fn ensure_session(&mut self, project: &str) -> Result<(), Response> {
        if !valid_project(project) {
            return Err(err(format!(
                "invalid project name {project:?} (want [A-Za-z0-9._-]{{1,64}}, not dot-led)"
            )));
        }
        if !self.sessions.contains_key(project) {
            let mut session = Session {
                cache: self.engine.cache(),
                check_cache: CheckCache::default(),
                benches: HashMap::new(),
                stored: HashMap::new(),
                last_used: Instant::now(),
                restored: false,
                dirty: false,
                fps_memo: HashMap::new(),
            };
            if let Some(store) = &self.store {
                if let LoadOutcome::Loaded(p) = store.load(project) {
                    if p.ci_spec_key == session.cache.ci_spec_key() {
                        for b in p.benches {
                            session.cache.seed_restored(
                                &b.name,
                                b.source_fp,
                                b.graph_fp,
                                b.summaries.clone(),
                            );
                            session.stored.insert(b.name.clone(), b);
                        }
                        session.restored = true;
                    }
                    // A spec-key mismatch silently cold-starts: the
                    // stored facts were computed under different solver
                    // knobs and are not sound seeds.
                }
                // Rejected/Missing → cold start; the next save
                // overwrites a bad file.
            }
            self.sessions.insert(project.to_string(), session);
        }
        let s = self.sessions.get_mut(project).expect("inserted above");
        s.last_used = Instant::now();
        Ok(())
    }

    fn analyze(
        &mut self,
        project: &str,
        jobs: &[JobSpec],
        fresh: bool,
        want_report: bool,
    ) -> Response {
        let t0 = Instant::now();
        if jobs.is_empty() {
            return err("analyze: empty job list");
        }
        let engine_jobs: Vec<Job> = jobs
            .iter()
            .map(|j| {
                let mut job = Job::new(&j.name, &j.source);
                job.input = j.input.clone();
                job
            })
            .collect();
        if fresh {
            // Cache-bypassing cross-check: solve from scratch without
            // touching (or requiring) the session.
            let run = match self.engine.run(&engine_jobs) {
                Ok(r) => r,
                Err(e) => return err(format!("analyze: {e}")),
            };
            let benches = run.benches.iter().map(|b| bench_fps(b, None)).collect();
            return Response::Analyzed {
                project: project.to_string(),
                benches,
                report_fp: fp_hex(fnv64(run.report.fingerprint().as_bytes())),
                report: want_report
                    .then(|| Value::parse(&run.report.to_json()).ok())
                    .flatten(),
                serve: ServeInfo {
                    latency_us: t0.elapsed().as_micros() as u64,
                    benches_fresh: run.benches.len() as u64,
                    ..ServeInfo::default()
                },
            };
        }
        if let Err(e) = self.ensure_session(project) {
            return e;
        }
        let session = self.sessions.get_mut(project).expect("ensured above");
        let restored = session.restored;
        let engine = &self.engine;
        let mut run = match engine.analyze_incremental_with(&mut session.cache, &engine_jobs) {
            Ok(r) => r,
            Err(e) => return err(format!("analyze: {e}")),
        };
        let mut serve = serve_info(&run, restored);
        serve.latency_us = t0.elapsed().as_micros() as u64;
        run.report.serve = Some(engine::ServeStats {
            latency_us: serve.latency_us,
            benches_replayed: serve.benches_replayed as usize,
            solutions_replayed: serve.solutions_replayed as usize,
            restored,
        });
        // (source_fp, graph_fp) per bench, from the cache when it has
        // the entry (it was just computed there).
        let keys: Vec<(u64, u64)> = run
            .benches
            .iter()
            .map(|b| match session.cache.summaries_of(&b.name) {
                Some((s, g, _)) => (s, g),
                None => (
                    fnv64(b.source.as_bytes()),
                    GraphIndex::build(&b.graph).graph_fp,
                ),
            })
            .collect();
        let benches: Vec<BenchFps> = run
            .benches
            .iter()
            .zip(&keys)
            .map(|(b, &(source_fp, graph_fp))| {
                bench_fps_memo(b, source_fp, graph_fp, &mut session.fps_memo)
            })
            .collect();
        // Refresh the persisted view of every benchmark this request
        // touched, then write the project through to disk — but only if
        // something actually changed. A pure tier-1 replay must not pay
        // for cloning summary maps or rewriting the store file; that
        // write-through cost would otherwise dominate warm latency.
        for ((b, fps), &(source_fp, graph_fp)) in run.benches.iter().zip(&benches).zip(&keys) {
            let solution_fps: Vec<(String, Option<u64>)> = fps
                .solvers
                .iter()
                .map(|s| {
                    (
                        s.analysis.clone(),
                        s.fp.as_deref().and_then(proto::parse_fp_hex),
                    )
                })
                .collect();
            let prev = session.stored.get(&b.name);
            // Checks are keyed by source and input; an edit invalidates
            // the stored check fingerprint.
            let check_fp = prev.and_then(|old| {
                old.check_fp
                    .filter(|_| old.source == b.source && old.input == b.input)
            });
            // Summaries are content-addressed by per-function
            // fingerprint: matching source and graph fingerprints imply
            // matching summaries, so an entry that agrees on every
            // cheap field needs no rebuild.
            let unchanged = prev.is_some_and(|old| {
                old.source_fp == source_fp
                    && old.graph_fp == graph_fp
                    && old.source == b.source
                    && old.input == b.input
                    && old.solution_fps == solution_fps
                    && old.check_fp == check_fp
            });
            if unchanged {
                continue;
            }
            let summaries = session
                .cache
                .summaries_of(&b.name)
                .map(|(_, _, m)| (*m).clone())
                .unwrap_or_default();
            session.stored.insert(
                b.name.clone(),
                StoredBench {
                    name: b.name.clone(),
                    source: b.source.clone(),
                    input: b.input.clone(),
                    source_fp,
                    graph_fp,
                    solution_fps,
                    summaries,
                    check_fp,
                },
            );
            session.dirty = true;
        }
        let report_fp = fp_hex(fnv64(run.report.fingerprint().as_bytes()));
        let report = want_report
            .then(|| Value::parse(&run.report.to_json()).ok())
            .flatten();
        for b in run.benches {
            session.benches.insert(b.name.clone(), b);
        }
        self.persist(project);
        self.enforce_budget(project);
        Response::Analyzed {
            project: project.to_string(),
            benches,
            report_fp,
            report,
            serve,
        }
    }

    fn check(
        &mut self,
        project: &str,
        jobs: &[JobSpec],
        analysis: &str,
        want_report: bool,
    ) -> Response {
        if jobs.is_empty() {
            return err("check: empty job list");
        }
        let engine_jobs: Vec<Job> = jobs
            .iter()
            .map(|j| {
                let mut job = Job::new(&j.name, &j.source);
                job.input = j.input.clone();
                job
            })
            .collect();
        if let Err(e) = self.ensure_session(project) {
            return e;
        }
        let session = self.sessions.get_mut(project).expect("ensured above");
        let engine = &self.engine;
        let mut run = match engine.analyze_incremental_with(&mut session.cache, &engine_jobs) {
            Ok(r) => r,
            Err(e) => return err(format!("check: {e}")),
        };
        let checks = run.run_checks_cached(&mut session.check_cache);
        let benches: Vec<BenchCheckInfo> = run
            .benches
            .iter()
            .zip(&checks)
            .map(|(b, bc)| BenchCheckInfo {
                name: b.name.clone(),
                table: checker::render_table(&bc.rows),
                rendered: render_diagnostics(b, bc, analysis),
                diags: Value::parse(&diagnostics_json(b, bc, analysis))
                    .unwrap_or(Value::Arr(Vec::new())),
                solvers: bc
                    .rows
                    .iter()
                    .map(|r| SolverCheck {
                        analysis: r.solver.clone(),
                        diags: r.counts.by_kind.iter().map(|&d| d as u64).collect(),
                        true_positives: r.counts.true_positives as u64,
                        false_positives: r.counts.false_positives as u64,
                        unreachable: r.counts.unreachable as u64,
                        refuted: r.refuted.is_some(),
                    })
                    .collect(),
            })
            .collect();
        // Per-bench diagnostics fingerprints feed both the response's
        // combined check_fp and the persisted per-bench check_fp.
        let mut combined = Fnv64::new();
        for (b, bc) in run.benches.iter().zip(&checks) {
            let bench_fp = check_fingerprint(b, bc);
            combined.write_str(&b.name);
            combined.write_u64(bench_fp);
            if let Some(stored) = session.stored.get_mut(&b.name) {
                if stored.check_fp != Some(bench_fp) {
                    stored.check_fp = Some(bench_fp);
                    session.dirty = true;
                }
            }
        }
        let refuted: Vec<String> = run
            .benches
            .iter()
            .zip(&checks)
            .filter(|(_, bc)| bc.any_refuted())
            .map(|(b, _)| b.name.clone())
            .collect();
        let monotone_violation = fp_monotone_violation(&checks);
        let report = want_report
            .then(|| Value::parse(&run.report.to_json()).ok())
            .flatten();
        let check_fp = fp_hex(combined.finish());
        for b in run.benches {
            session.benches.insert(b.name.clone(), b);
        }
        self.persist(project);
        self.enforce_budget(project);
        Response::Checked {
            project: project.to_string(),
            benches,
            check_fp,
            monotone_violation,
            refuted,
            report,
        }
    }

    fn query(&mut self, project: &str, bench: &str, analysis: &str, query: &QueryKind) -> Response {
        // A restored session may know the bench only from disk: analyze
        // it on demand from the stored source before answering.
        let needs_analyze = match self.sessions.get(project) {
            Some(s) => !s.benches.contains_key(bench),
            None => true,
        };
        if needs_analyze {
            if let Err(e) = self.ensure_session(project) {
                return e;
            }
            let stored_job = self.sessions[project].stored.get(bench).map(|b| JobSpec {
                name: b.name.clone(),
                source: b.source.clone(),
                input: b.input.clone(),
            });
            match stored_job {
                Some(job) => {
                    if let Response::Error { message } = self.analyze(project, &[job], false, false)
                    {
                        return err(format!("query: demand analyze failed: {message}"));
                    }
                }
                None => {
                    return err(format!(
                        "query: benchmark {bench:?} has not been analyzed in project \
                         {project:?} (send an analyze request first)"
                    ))
                }
            }
        }
        if let Err(e) = self.ensure_session(project) {
            return e;
        }
        let session = self.sessions.get_mut(project).expect("ensured above");
        let b = session.benches.get(bench).expect("analyzed above");
        let Some(sol) = b.solution(analysis) else {
            return err(format!(
                "query: no {analysis:?} solution for {bench:?} (failed solve or unknown analysis)"
            ));
        };
        let sites = b.graph.indirect_mem_ops();
        let file = cfront::SourceFile::new(&b.name, &b.source);
        #[allow(clippy::result_large_err)]
        let site_info = |i: usize| -> Result<SiteInfo, Response> {
            let &(node, is_write) = sites.get(i).ok_or_else(|| {
                err(format!(
                    "query: site index {i} out of range ({} indirect refs in {bench:?})",
                    sites.len()
                ))
            })?;
            let lc = file.line_col(b.graph.node(node).span.start);
            Ok(SiteInfo {
                index: i,
                line: lc.line,
                col: lc.col,
                kind: if is_write { "write" } else { "read" }.to_string(),
            })
        };
        let answer = match *query {
            QueryKind::MayAlias { a, b: bi } => {
                let (sa, sb) = match (site_info(a), site_info(bi)) {
                    (Ok(x), Ok(y)) => (x, y),
                    (Err(e), _) | (_, Err(e)) => return e,
                };
                let bases_a = sol.loc_referent_bases(&b.graph, sites[a].0);
                let bases_b = sol.loc_referent_bases(&b.graph, sites[bi].0);
                // Both sides sorted+deduped by the Solution contract.
                let witnesses: Vec<String> = bases_a
                    .iter()
                    .filter(|x| bases_b.binary_search(x).is_ok())
                    .map(|&x| stable_base_key(&b.graph, x))
                    .collect();
                QueryAnswer::MayAlias {
                    may_alias: !witnesses.is_empty(),
                    witnesses,
                    a: sa,
                    b: sb,
                }
            }
            QueryKind::ReferentsAt { site } => {
                let info = match site_info(site) {
                    Ok(x) => x,
                    Err(e) => return e,
                };
                let node = sites[site].0;
                // Path-granular when the solver has per-point sets,
                // stable base keys for the unification baseline.
                let mut referents: Vec<String> =
                    match (sol.referents_at(&b.graph, node), sol.path_universe()) {
                        (Some(paths), Some(table)) => {
                            paths.iter().map(|&p| table.display(p, &b.graph)).collect()
                        }
                        _ => sol
                            .loc_referent_bases(&b.graph, node)
                            .iter()
                            .map(|&x| stable_base_key(&b.graph, x))
                            .collect(),
                    };
                referents.sort();
                QueryAnswer::Referents {
                    site: info,
                    referents,
                }
            }
        };
        Response::QueryResult {
            bench: bench.to_string(),
            analysis: analysis.to_string(),
            answer,
        }
    }

    fn stats(&mut self) -> Response {
        let mut projects: Vec<ProjectStats> = self
            .sessions
            .iter()
            .map(|(name, s)| ProjectStats {
                name: name.clone(),
                benches: s.cache.len() as u64,
                approx_bytes: s.cache.approx_bytes() as u64,
                idle_ms: s.last_used.elapsed().as_millis() as u64,
            })
            .collect();
        projects.sort_by(|a, b| a.name.cmp(&b.name));
        Response::Stats {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests: self.request_counts.clone(),
            evictions: self.evictions,
            mem_budget: self.mem_budget as u64,
            projects,
        }
    }

    fn evict(&mut self, project: Option<&str>) -> Response {
        match project {
            Some(p) => {
                if self.sessions.remove(p).is_none() {
                    return err(format!("evict: no in-memory session for project {p:?}"));
                }
            }
            None => self.sessions.clear(),
        }
        Response::Ok
    }

    /// Writes one project's state through to the disk store. A no-op
    /// when the session is clean: a replayed request changes nothing,
    /// so the file on disk is already current.
    fn persist(&mut self, project: &str) {
        let Some(store) = &self.store else { return };
        let Some(session) = self.sessions.get(project) else {
            return;
        };
        if !session.dirty {
            return;
        }
        let mut benches: Vec<StoredBench> = session.stored.values().cloned().collect();
        benches.sort_by(|a, b| a.name.cmp(&b.name));
        let state = StoredProject {
            ci_spec_key: session.cache.ci_spec_key().to_string(),
            benches,
        };
        // A failed save degrades to colder restarts, not wrong answers;
        // surface it on stderr and keep serving (the session stays
        // dirty, so the next request retries the write).
        match store.save(project, &state) {
            Ok(()) => {
                if let Some(s) = self.sessions.get_mut(project) {
                    s.dirty = false;
                }
            }
            Err(e) => eprintln!("ruf95 serve: store write failed for {project:?}: {e}"),
        }
    }

    /// Evicts least-recently-used sessions (never `current`) until the
    /// estimated session memory fits the budget. Evicted sessions keep
    /// their disk-store files, so they warm-start on return.
    fn enforce_budget(&mut self, current: &str) {
        if self.mem_budget == 0 {
            return;
        }
        loop {
            let total: usize = self.sessions.values().map(|s| s.cache.approx_bytes()).sum();
            if total <= self.mem_budget {
                return;
            }
            let victim = self
                .sessions
                .iter()
                .filter(|(name, _)| name.as_str() != current)
                .max_by_key(|(_, s)| s.last_used.elapsed())
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.sessions.remove(&name);
                    self.evictions += 1;
                }
                // Only the active session remains; it may exceed the
                // budget on its own, and evicting it would thrash.
                None => return,
            }
        }
    }
}

/// Per-benchmark fingerprints for an analyze response. `graph_fp` comes
/// from the session cache when available (it was just computed there);
/// fresh cross-check runs rebuild the index.
fn bench_fps(b: &BenchOutput, cached_graph_fp: Option<u64>) -> BenchFps {
    let graph_fp = cached_graph_fp.unwrap_or_else(|| GraphIndex::build(&b.graph).graph_fp);
    BenchFps {
        name: b.name.clone(),
        source_fp: fp_hex(fnv64(b.source.as_bytes())),
        graph_fp: fp_hex(graph_fp),
        solvers: b
            .solutions
            .iter()
            .map(|s| SolverFp {
                analysis: s.analysis.clone(),
                fp: s
                    .solution
                    .as_deref()
                    .map(|sol| fp_hex(solution_fingerprint(sol, &b.graph))),
                mode: s.mode.as_ref().map(|m| m.render()),
                pairs: s
                    .solution
                    .as_deref()
                    .and_then(|sol| sol.pairs())
                    .map(|p| p as u64),
            })
            .collect(),
    }
}

/// Like [`bench_fps`], but reuses the session's memoized solution
/// fingerprints and pair counts when (source_fp, graph_fp) match — a
/// replayed solution is byte-identical to the one fingerprinted before,
/// so re-walking it per request would only re-derive the same numbers.
/// Solver modes are always taken fresh from this run (they describe how
/// this particular request was satisfied).
fn bench_fps_memo(
    b: &BenchOutput,
    source_fp: u64,
    graph_fp: u64,
    memo: &mut HashMap<String, FpsMemo>,
) -> BenchFps {
    let hit = memo
        .get(&b.name)
        .is_some_and(|m| m.source_fp == source_fp && m.graph_fp == graph_fp);
    if !hit {
        memo.insert(
            b.name.clone(),
            FpsMemo {
                source_fp,
                graph_fp,
                solvers: b
                    .solutions
                    .iter()
                    .map(|s| {
                        (
                            s.analysis.clone(),
                            s.solution
                                .as_deref()
                                .map(|sol| solution_fingerprint(sol, &b.graph)),
                            s.solution
                                .as_deref()
                                .and_then(|sol| sol.pairs())
                                .map(|p| p as u64),
                        )
                    })
                    .collect(),
            },
        );
    }
    let m = &memo[&b.name];
    BenchFps {
        name: b.name.clone(),
        source_fp: fp_hex(source_fp),
        graph_fp: fp_hex(graph_fp),
        solvers: b
            .solutions
            .iter()
            .map(|s| {
                let cached = m.solvers.iter().find(|(a, _, _)| *a == s.analysis);
                SolverFp {
                    analysis: s.analysis.clone(),
                    fp: cached.and_then(|(_, fp, _)| *fp).map(fp_hex),
                    mode: s.mode.as_ref().map(|m| m.render()),
                    pairs: cached.and_then(|(_, _, p)| *p),
                }
            })
            .collect(),
    }
}

fn serve_info(run: &EngineRun, restored: bool) -> ServeInfo {
    let mut info = ServeInfo {
        restored,
        ..ServeInfo::default()
    };
    if let Some(st) = &run.report.incremental {
        info.benches_replayed = st.benches_replayed as u64;
        info.benches_seeded = st.benches_seeded as u64;
        info.benches_fresh = st.benches_fresh as u64;
        info.solutions_replayed = st.solutions_replayed as u64;
        info.funcs_reused = st.funcs_reused as u64;
        info.funcs_dirty = st.funcs_dirty as u64;
    }
    info
}

/// FNV-64 over one benchmark's diagnostics under every solver — the
/// byte-identity currency for check results across daemon restarts.
pub fn check_fingerprint(b: &BenchOutput, bc: &BenchChecks) -> u64 {
    let mut h = Fnv64::new();
    for row in &bc.rows {
        h.write_str(&row.solver);
        h.write_str(&diagnostics_json(b, bc, &row.solver));
    }
    h.finish()
}
