//! The transport-agnostic request dispatcher.
//!
//! [`Service::handle`] maps one [`proto::Request`] to one
//! [`proto::Response`]. The CLI calls it directly for in-process
//! dispatch; the TCP daemon calls it behind a mutex, one request at a
//! time — which is also the concurrency argument: requests are strictly
//! serialized, so N interleaved clients observe exactly the answers a
//! serial caller would.
//!
//! Sessions: each named project owns a [`engine::SummaryCache`] (and a
//! check cache, and the solved [`engine::BenchOutput`]s for demand
//! queries), isolated from every other project. Under a configured
//! memory budget the least-recently-used sessions are evicted; their
//! disk-store state survives, so the next request warm-starts instead
//! of cold-starting.
//!
//! Persistence is write-through: after every analyze/check the
//! project's summaries, solution fingerprints, and check fingerprints
//! go to the [`crate::store::Store`]. A restored session seeds the
//! tier-3 CI resume from the stored summaries; the engine recompiles
//! and re-verifies everything, so a corrupt or stale store can cost
//! time, never correctness.

use crate::store::{LoadOutcome, Store, StoredBench, StoredProject, StoredSummaries};
use alias::fingerprint::{fnv64, stable_base_key, Fnv64, GraphIndex};
use alias::solver::solution_fingerprint;
use alias::{DemandConfig, DemandSolution};
use engine::check::{diagnostics_json, fp_monotone_violation, render_diagnostics, BenchChecks};
use engine::{BenchOutput, CheckCache, EngineRun, Job, SummaryCache};
use proto::json::Value;
use proto::{
    fp_hex, BenchCheckInfo, BenchFps, JobSpec, ProjectStats, QueryAnswer, QueryKind, Request,
    Response, ServeInfo, SiteInfo, SolverCheck, SolverFp,
};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration for a [`Service`].
#[derive(Default)]
pub struct ServiceOptions {
    /// Disk store directory; `None` disables persistence.
    pub store_dir: Option<std::path::PathBuf>,
    /// Session memory budget in bytes; 0 = unlimited.
    pub mem_budget: usize,
    /// Worker threads per engine run (0 = all cores).
    pub threads: usize,
}

/// One project's in-memory session.
struct Session {
    cache: SummaryCache,
    check_cache: CheckCache,
    /// Last solved outputs by benchmark name, for demand queries.
    benches: HashMap<String, BenchOutput>,
    /// Persisted view of each benchmark, rebuilt on every analyze.
    stored: HashMap<String, StoredBench>,
    last_used: Instant,
    /// Whether this session was seeded from the disk store.
    restored: bool,
    /// Whether `stored` has diverged from the disk store since the last
    /// successful save. A pure-replay request leaves it clear, so warm
    /// requests skip the store write entirely.
    dirty: bool,
    /// Memoized per-solver fingerprints and pair counts, keyed by
    /// benchmark name and guarded by (source_fp, graph_fp). Solutions
    /// are a deterministic function of the source, so a replayed bench
    /// reuses its fingerprints instead of re-walking every solution —
    /// the dominant cost of a warm analyze response.
    fps_memo: HashMap<String, FpsMemo>,
    /// Benchmarks restored from disk whose summaries are still raw:
    /// decoded and seeded into the cache on the first analyze/check
    /// that touches them, not at session creation (a session that only
    /// fields demand queries never pays for decoding at all).
    pending_restore: std::collections::HashSet<String>,
    /// Demand-query state per benchmark: the compiled graph plus the
    /// growing partial solution, for queries that arrive before any
    /// exhaustive analyze.
    demand: HashMap<String, DemandBench>,
    /// Cumulative microseconds spent restoring from the disk store
    /// (project load plus lazy per-bench summary decode).
    restore_us: u64,
    /// Queries answered from a demand-solved region.
    demand_hits: u64,
    /// Queries answered from an exhaustive fallback solution.
    demand_fallbacks: u64,
    /// Demand queries that exhausted a slice or step budget.
    demand_budget_exhausted: u64,
}

/// One benchmark's demand-query state (see [`Session::demand`]).
struct DemandBench {
    /// FNV-64 of `source`; a query resolving to different source text
    /// (edited store entry, different inline job) rebuilds the state.
    source_fp: u64,
    source: String,
    graph: vdg::graph::Graph,
    sol: DemandSolution,
}

/// Cached fingerprint work for one benchmark (see [`Session::fps_memo`]).
struct FpsMemo {
    source_fp: u64,
    graph_fp: u64,
    /// Per analysis: (name, solution fingerprint, pair count).
    solvers: Vec<(String, Option<u64>, Option<u64>)>,
}

/// The persistent analysis service.
pub struct Service {
    engine: engine::Engine,
    store: Option<Store>,
    sessions: HashMap<String, Session>,
    mem_budget: usize,
    started: Instant,
    request_counts: Vec<(String, u64)>,
    evictions: u64,
}

fn err(message: impl Into<String>) -> Response {
    Response::Error {
        message: message.into(),
    }
}

/// Project names double as store file names, so they are restricted to
/// a conservative portable set.
fn valid_project(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

impl Service {
    /// Builds a service; opens (creating if needed) the disk store when
    /// one is configured.
    ///
    /// # Errors
    ///
    /// Returns the store-directory creation error, if any.
    pub fn new(opts: ServiceOptions) -> std::io::Result<Service> {
        let store = match opts.store_dir {
            Some(dir) => Some(Store::open(dir)?),
            None => None,
        };
        Ok(Service {
            engine: engine::Engine::new().threads(opts.threads),
            store,
            sessions: HashMap::new(),
            mem_budget: opts.mem_budget,
            started: Instant::now(),
            request_counts: Vec::new(),
            evictions: 0,
        })
    }

    /// Dispatches one request. Total: every failure becomes
    /// [`Response::Error`], never a panic — the daemon stays up.
    pub fn handle(&mut self, req: &Request) -> Response {
        self.count(req.type_name());
        match req {
            Request::Analyze {
                project,
                jobs,
                fresh,
                want_report,
            } => self.analyze(project, jobs, *fresh, *want_report),
            Request::Check {
                project,
                jobs,
                analysis,
                want_report,
            } => self.check(project, jobs, analysis, *want_report),
            Request::Query {
                project,
                bench,
                analysis,
                query,
                job,
            } => self.query(project, bench, analysis, query, job.as_ref()),
            Request::Stats => self.stats(),
            Request::Evict { project } => self.evict(project.as_deref()),
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    fn count(&mut self, name: &str) {
        match self.request_counts.iter_mut().find(|(k, _)| k == name) {
            Some((_, n)) => *n += 1,
            None => self.request_counts.push((name.to_string(), 1)),
        }
    }

    /// Fetches or creates a project's session. A new session whose
    /// project has compatible disk-store state is seeded with the
    /// stored summaries, so its first analyze resumes instead of
    /// re-solving.
    // The error arm intentionally carries the full typed Response.
    #[allow(clippy::result_large_err)]
    fn ensure_session(&mut self, project: &str) -> Result<(), Response> {
        if !valid_project(project) {
            return Err(err(format!(
                "invalid project name {project:?} (want [A-Za-z0-9._-]{{1,64}}, not dot-led)"
            )));
        }
        if !self.sessions.contains_key(project) {
            let mut session = Session {
                cache: self.engine.cache(),
                check_cache: CheckCache::default(),
                benches: HashMap::new(),
                stored: HashMap::new(),
                last_used: Instant::now(),
                restored: false,
                dirty: false,
                fps_memo: HashMap::new(),
                pending_restore: std::collections::HashSet::new(),
                demand: HashMap::new(),
                restore_us: 0,
                demand_hits: 0,
                demand_fallbacks: 0,
                demand_budget_exhausted: 0,
            };
            if let Some(store) = &self.store {
                let t = Instant::now();
                if let LoadOutcome::Loaded(p) = store.load(project) {
                    if p.spec_key == session.cache.spec_key() {
                        // Summaries stay raw here; the first analyze or
                        // check touching a bench decodes and seeds it
                        // (see seed_pending).
                        for b in p.benches {
                            session.pending_restore.insert(b.name.clone());
                            session.stored.insert(b.name.clone(), b);
                        }
                        session.restored = true;
                    }
                    // A spec-key mismatch silently cold-starts: the
                    // stored facts were computed under different solver
                    // knobs and are not sound seeds.
                }
                // Rejected/Missing → cold start; the next save
                // overwrites a bad file.
                session.restore_us += t.elapsed().as_micros() as u64;
            }
            self.sessions.insert(project.to_string(), session);
        }
        let s = self.sessions.get_mut(project).expect("inserted above");
        s.last_used = Instant::now();
        Ok(())
    }

    /// Decodes and seeds the stored summaries of any of `names` this
    /// session restored from disk but has not yet touched — the lazy
    /// half of the restore that [`Service::ensure_session`] defers.
    fn seed_pending<'n>(session: &mut Session, names: impl Iterator<Item = &'n str>) {
        for name in names {
            if !session.pending_restore.remove(name) {
                continue;
            }
            let Some(b) = session.stored.get_mut(name) else {
                continue;
            };
            let t = Instant::now();
            let summaries = b.summaries.decode_fresh();
            session
                .cache
                .seed_restored(&b.name, b.source_fp, b.graph_fp, summaries);
            session.restore_us += t.elapsed().as_micros() as u64;
        }
    }

    fn analyze(
        &mut self,
        project: &str,
        jobs: &[JobSpec],
        fresh: bool,
        want_report: bool,
    ) -> Response {
        let t0 = Instant::now();
        if jobs.is_empty() {
            return err("analyze: empty job list");
        }
        let engine_jobs: Vec<Job> = jobs
            .iter()
            .map(|j| {
                let mut job = Job::new(&j.name, &j.source);
                job.input = j.input.clone();
                job
            })
            .collect();
        if fresh {
            // Cache-bypassing cross-check: solve from scratch without
            // touching (or requiring) the session.
            let run = match self.engine.run(&engine_jobs) {
                Ok(r) => r,
                Err(e) => return err(format!("analyze: {e}")),
            };
            let benches = run.benches.iter().map(|b| bench_fps(b, None)).collect();
            return Response::Analyzed {
                project: project.to_string(),
                benches,
                report_fp: fp_hex(fnv64(run.report.fingerprint().as_bytes())),
                report: want_report
                    .then(|| Value::parse(&run.report.to_json()).ok())
                    .flatten(),
                serve: ServeInfo {
                    latency_us: t0.elapsed().as_micros() as u64,
                    benches_fresh: run.benches.len() as u64,
                    ..ServeInfo::default()
                },
            };
        }
        if let Err(e) = self.ensure_session(project) {
            return e;
        }
        let session = self.sessions.get_mut(project).expect("ensured above");
        let restored = session.restored;
        Self::seed_pending(session, jobs.iter().map(|j| j.name.as_str()));
        let engine = &self.engine;
        let mut run = match engine.analyze_incremental_with(&mut session.cache, &engine_jobs) {
            Ok(r) => r,
            Err(e) => return err(format!("analyze: {e}")),
        };
        let mut serve = serve_info(&run, restored);
        serve.latency_us = t0.elapsed().as_micros() as u64;
        serve.demand_hits = session.demand_hits;
        serve.demand_fallbacks = session.demand_fallbacks;
        serve.demand_budget_exhausted = session.demand_budget_exhausted;
        serve.restore_us = session.restore_us;
        run.report.serve = Some(engine::ServeStats {
            latency_us: serve.latency_us,
            benches_replayed: serve.benches_replayed as usize,
            solutions_replayed: serve.solutions_replayed as usize,
            restored,
            demand_hits: session.demand_hits,
            demand_fallbacks: session.demand_fallbacks,
            demand_budget_exhausted: session.demand_budget_exhausted,
            restore_us: session.restore_us,
        });
        // (source_fp, graph_fp) per bench, from the cache when it has
        // the entry (it was just computed there).
        let keys: Vec<(u64, u64)> = run
            .benches
            .iter()
            .map(|b| match session.cache.summaries_of(&b.name) {
                Some((s, g, _)) => (s, g),
                None => (
                    fnv64(b.source.as_bytes()),
                    GraphIndex::build(&b.graph).graph_fp,
                ),
            })
            .collect();
        let benches: Vec<BenchFps> = run
            .benches
            .iter()
            .zip(&keys)
            .map(|(b, &(source_fp, graph_fp))| {
                bench_fps_memo(b, source_fp, graph_fp, &mut session.fps_memo)
            })
            .collect();
        // Refresh the persisted view of every benchmark this request
        // touched, then write the project through to disk — but only if
        // something actually changed. A pure tier-1 replay must not pay
        // for cloning summary maps or rewriting the store file; that
        // write-through cost would otherwise dominate warm latency.
        for ((b, fps), &(source_fp, graph_fp)) in run.benches.iter().zip(&benches).zip(&keys) {
            let solution_fps: Vec<(String, Option<u64>)> = fps
                .solvers
                .iter()
                .map(|s| {
                    (
                        s.analysis.clone(),
                        s.fp.as_deref().and_then(proto::parse_fp_hex),
                    )
                })
                .collect();
            let prev = session.stored.get(&b.name);
            // Checks are keyed by source and input; an edit invalidates
            // the stored check fingerprint.
            let check_fp = prev.and_then(|old| {
                old.check_fp
                    .filter(|_| old.source == b.source && old.input == b.input)
            });
            // Summaries are content-addressed by per-function
            // fingerprint: matching source and graph fingerprints imply
            // matching summaries, so an entry that agrees on every
            // cheap field needs no rebuild.
            let unchanged = prev.is_some_and(|old| {
                old.source_fp == source_fp
                    && old.graph_fp == graph_fp
                    && old.source == b.source
                    && old.input == b.input
                    && old.solution_fps == solution_fps
                    && old.check_fp == check_fp
            });
            if unchanged {
                continue;
            }
            let summaries = session
                .cache
                .summaries_of(&b.name)
                .map(|(_, _, m)| m)
                .unwrap_or_default();
            session.stored.insert(
                b.name.clone(),
                StoredBench {
                    name: b.name.clone(),
                    source: b.source.clone(),
                    input: b.input.clone(),
                    source_fp,
                    graph_fp,
                    solution_fps,
                    summaries: StoredSummaries::Ready(summaries),
                    check_fp,
                },
            );
            session.dirty = true;
        }
        let report_fp = fp_hex(fnv64(run.report.fingerprint().as_bytes()));
        let report = want_report
            .then(|| Value::parse(&run.report.to_json()).ok())
            .flatten();
        for b in run.benches {
            // The solved output supersedes any demand-query state (and
            // answers future queries by lookup).
            session.demand.remove(&b.name);
            session.benches.insert(b.name.clone(), b);
        }
        self.persist(project);
        self.enforce_budget(project);
        Response::Analyzed {
            project: project.to_string(),
            benches,
            report_fp,
            report,
            serve,
        }
    }

    fn check(
        &mut self,
        project: &str,
        jobs: &[JobSpec],
        analysis: &str,
        want_report: bool,
    ) -> Response {
        if jobs.is_empty() {
            return err("check: empty job list");
        }
        let engine_jobs: Vec<Job> = jobs
            .iter()
            .map(|j| {
                let mut job = Job::new(&j.name, &j.source);
                job.input = j.input.clone();
                job
            })
            .collect();
        if let Err(e) = self.ensure_session(project) {
            return e;
        }
        let session = self.sessions.get_mut(project).expect("ensured above");
        Self::seed_pending(session, jobs.iter().map(|j| j.name.as_str()));
        let engine = &self.engine;
        let mut run = match engine.analyze_incremental_with(&mut session.cache, &engine_jobs) {
            Ok(r) => r,
            Err(e) => return err(format!("check: {e}")),
        };
        let checks = run.run_checks_cached(&mut session.check_cache);
        let benches: Vec<BenchCheckInfo> = run
            .benches
            .iter()
            .zip(&checks)
            .map(|(b, bc)| BenchCheckInfo {
                name: b.name.clone(),
                table: checker::render_table(&bc.rows),
                rendered: render_diagnostics(b, bc, analysis),
                diags: Value::parse(&diagnostics_json(b, bc, analysis))
                    .unwrap_or(Value::Arr(Vec::new())),
                solvers: bc
                    .rows
                    .iter()
                    .map(|r| SolverCheck {
                        analysis: r.solver.clone(),
                        diags: r.counts.by_kind.iter().map(|&d| d as u64).collect(),
                        true_positives: r.counts.true_positives as u64,
                        false_positives: r.counts.false_positives as u64,
                        unreachable: r.counts.unreachable as u64,
                        refuted: r.refuted.is_some(),
                    })
                    .collect(),
            })
            .collect();
        // Per-bench diagnostics fingerprints feed both the response's
        // combined check_fp and the persisted per-bench check_fp.
        let mut combined = Fnv64::new();
        for (b, bc) in run.benches.iter().zip(&checks) {
            let bench_fp = check_fingerprint(b, bc);
            combined.write_str(&b.name);
            combined.write_u64(bench_fp);
            if let Some(stored) = session.stored.get_mut(&b.name) {
                if stored.check_fp != Some(bench_fp) {
                    stored.check_fp = Some(bench_fp);
                    session.dirty = true;
                }
            }
        }
        let refuted: Vec<String> = run
            .benches
            .iter()
            .zip(&checks)
            .filter(|(_, bc)| bc.any_refuted())
            .map(|(b, _)| b.name.clone())
            .collect();
        let monotone_violation = fp_monotone_violation(&checks);
        let report = want_report
            .then(|| Value::parse(&run.report.to_json()).ok())
            .flatten();
        let check_fp = fp_hex(combined.finish());
        for b in run.benches {
            session.demand.remove(&b.name);
            session.benches.insert(b.name.clone(), b);
        }
        self.persist(project);
        self.enforce_budget(project);
        Response::Checked {
            project: project.to_string(),
            benches,
            check_fp,
            monotone_violation,
            refuted,
            report,
        }
    }

    fn query(
        &mut self,
        project: &str,
        bench: &str,
        analysis: &str,
        query: &QueryKind,
        job: Option<&JobSpec>,
    ) -> Response {
        if let Err(e) = self.ensure_session(project) {
            return e;
        }
        // The hot path: a CI-vocabulary query against a bench with no
        // solved output is answered demand-driven — no exhaustive
        // fixpoint, microsecond first-query latency. (`demand` names
        // the path explicitly; `ci` takes it because the demand answers
        // are exactly the CI answers.)
        let solved = self.sessions[project].benches.contains_key(bench);
        if !solved && matches!(analysis, "ci" | "demand") {
            return self.query_demand(project, bench, analysis, query, job);
        }
        // Exhaustive path: a non-CI analysis needs its solver run, and
        // an already-solved bench answers by plain lookup. A restored
        // session may know the bench only from disk (or from the
        // request's inline job): analyze it before answering.
        if !solved {
            let stored_job = self.sessions[project]
                .stored
                .get(bench)
                .map(|b| JobSpec {
                    name: b.name.clone(),
                    source: b.source.clone(),
                    input: b.input.clone(),
                })
                .or_else(|| job.cloned());
            match stored_job {
                Some(job) => {
                    if let Response::Error { message } = self.analyze(project, &[job], false, false)
                    {
                        return err(format!("query: demand analyze failed: {message}"));
                    }
                }
                None => {
                    return err(format!(
                        "query: benchmark {bench:?} has not been analyzed in project \
                         {project:?} (send an analyze request first)"
                    ))
                }
            }
        }
        if let Err(e) = self.ensure_session(project) {
            return e;
        }
        let session = self.sessions.get_mut(project).expect("ensured above");
        let b = session.benches.get(bench).expect("analyzed above");
        // "demand" is query vocabulary, not a solved spectrum; its
        // exhaustive twin is plain CI.
        let lookup = if analysis == "demand" { "ci" } else { analysis };
        let Some(sol) = b.solution(lookup) else {
            return err(format!(
                "query: no {lookup:?} solution for {bench:?} (failed solve or unknown analysis)"
            ));
        };
        let sites = b.graph.indirect_mem_ops();
        let file = cfront::SourceFile::new(&b.name, &b.source);
        #[allow(clippy::result_large_err)]
        let site_info = |i: usize| -> Result<SiteInfo, Response> {
            let &(node, is_write) = sites.get(i).ok_or_else(|| {
                err(format!(
                    "query: site index {i} out of range ({} indirect refs in {bench:?})",
                    sites.len()
                ))
            })?;
            let lc = file.line_col(b.graph.node(node).span.start);
            Ok(SiteInfo {
                index: i,
                line: lc.line,
                col: lc.col,
                kind: if is_write { "write" } else { "read" }.to_string(),
            })
        };
        let answer = match *query {
            QueryKind::MayAlias { a, b: bi } => {
                let (sa, sb) = match (site_info(a), site_info(bi)) {
                    (Ok(x), Ok(y)) => (x, y),
                    (Err(e), _) | (_, Err(e)) => return e,
                };
                let bases_a = sol.loc_referent_bases(&b.graph, sites[a].0);
                let bases_b = sol.loc_referent_bases(&b.graph, sites[bi].0);
                // Both sides sorted+deduped by the Solution contract.
                let witnesses: Vec<String> = bases_a
                    .iter()
                    .filter(|x| bases_b.binary_search(x).is_ok())
                    .map(|&x| stable_base_key(&b.graph, x))
                    .collect();
                QueryAnswer::MayAlias {
                    may_alias: !witnesses.is_empty(),
                    witnesses,
                    a: sa,
                    b: sb,
                }
            }
            QueryKind::ReferentsAt { site } => {
                let info = match site_info(site) {
                    Ok(x) => x,
                    Err(e) => return e,
                };
                let node = sites[site].0;
                // Path-granular when the solver has per-point sets,
                // stable base keys for the unification baseline.
                let mut referents: Vec<String> =
                    match (sol.referents_at(&b.graph, node), sol.path_universe()) {
                        (Some(paths), Some(table)) => {
                            paths.iter().map(|&p| table.display(p, &b.graph)).collect()
                        }
                        _ => sol
                            .loc_referent_bases(&b.graph, node)
                            .iter()
                            .map(|&x| stable_base_key(&b.graph, x))
                            .collect(),
                    };
                referents.sort();
                QueryAnswer::Referents {
                    site: info,
                    referents,
                }
            }
        };
        Response::QueryResult {
            bench: bench.to_string(),
            analysis: analysis.to_string(),
            answer,
            demand: false,
        }
    }

    /// Answers a query against an unsolved benchmark by demand-driven
    /// search: compile + lower only (no fixpoint), then let the
    /// [`DemandSolution`] activate and solve just the backward slice
    /// the query touches. The source comes from the persisted store
    /// when the bench is known there, else from the request's inline
    /// job. Solved state is memoized per bench, so repeated queries
    /// widen (never recompute) the solved region; a later exhaustive
    /// analyze evicts the entry.
    fn query_demand(
        &mut self,
        project: &str,
        bench: &str,
        analysis: &str,
        query: &QueryKind,
        job: Option<&JobSpec>,
    ) -> Response {
        let session = self.sessions.get_mut(project).expect("ensured above");
        let (source, source_fp) = match session.stored.get(bench) {
            Some(b) => (b.source.clone(), b.source_fp),
            None => match job {
                Some(j) => (j.source.clone(), fnv64(j.source.as_bytes())),
                None => {
                    return err(format!(
                        "query: benchmark {bench:?} has not been analyzed in project \
                         {project:?} (send an analyze request first or include the source)"
                    ))
                }
            },
        };
        // (Re)build the demand bench on first touch or source change.
        let stale = session
            .demand
            .get(bench)
            .is_none_or(|db| db.source_fp != source_fp);
        if stale {
            let prog = match cfront::compile(&source) {
                Ok(p) => p,
                Err(e) => return err(format!("query: compile {bench:?}: {e}")),
            };
            let graph = match vdg::build::lower(&prog, &vdg::build::BuildOptions::default()) {
                Ok(g) => g,
                Err(e) => return err(format!("query: lower {bench:?}: {e}")),
            };
            let sol = DemandSolution::new(
                &graph,
                DemandConfig {
                    ci: alias::SolverSpec::ci().ci_config(),
                    ..Default::default()
                },
            );
            session.demand.insert(
                bench.to_string(),
                DemandBench {
                    source_fp,
                    source,
                    graph,
                    sol,
                },
            );
        }
        let db = session.demand.get(bench).expect("inserted above");
        let sites = db.graph.indirect_mem_ops();
        let file = cfront::SourceFile::new(bench, &db.source);
        #[allow(clippy::result_large_err)]
        let site_info = |i: usize| -> Result<SiteInfo, Response> {
            let &(node, is_write) = sites.get(i).ok_or_else(|| {
                err(format!(
                    "query: site index {i} out of range ({} indirect refs in {bench:?})",
                    sites.len()
                ))
            })?;
            let lc = file.line_col(db.graph.node(node).span.start);
            Ok(SiteInfo {
                index: i,
                line: lc.line,
                col: lc.col,
                kind: if is_write { "write" } else { "read" }.to_string(),
            })
        };
        let before = db.sol.stats();
        let answer = match *query {
            QueryKind::MayAlias { a, b: bi } => {
                let (sa, sb) = match (site_info(a), site_info(bi)) {
                    (Ok(x), Ok(y)) => (x, y),
                    (Err(e), _) | (_, Err(e)) => return e,
                };
                let (may, bases) = db.sol.may_alias(&db.graph, sites[a].0, sites[bi].0);
                let witnesses: Vec<String> = bases
                    .iter()
                    .map(|&x| stable_base_key(&db.graph, x))
                    .collect();
                QueryAnswer::MayAlias {
                    may_alias: may,
                    witnesses,
                    a: sa,
                    b: sb,
                }
            }
            QueryKind::ReferentsAt { site } => {
                let info = match site_info(site) {
                    Ok(x) => x,
                    Err(e) => return e,
                };
                let node = sites[site].0;
                // Already path-granular, display-rendered, and sorted —
                // byte-identical to the exhaustive CI rendering.
                QueryAnswer::Referents {
                    site: info,
                    referents: db.sol.loc_referents_rendered(&db.graph, node),
                }
            }
        };
        let after = db.sol.stats();
        let hit = after.demand_hits > before.demand_hits;
        session.demand_hits += after.demand_hits - before.demand_hits;
        session.demand_fallbacks += after.fallbacks - before.fallbacks;
        session.demand_budget_exhausted += after.budget_exhausted - before.budget_exhausted;
        session.last_used = Instant::now();
        Response::QueryResult {
            bench: bench.to_string(),
            analysis: analysis.to_string(),
            answer,
            demand: hit,
        }
    }

    fn stats(&mut self) -> Response {
        let mut projects: Vec<ProjectStats> = self
            .sessions
            .iter()
            .map(|(name, s)| ProjectStats {
                name: name.clone(),
                benches: s.cache.len() as u64,
                approx_bytes: s.cache.approx_bytes() as u64,
                idle_ms: s.last_used.elapsed().as_millis() as u64,
                demand_hits: s.demand_hits,
                demand_fallbacks: s.demand_fallbacks,
                restore_us: s.restore_us,
            })
            .collect();
        projects.sort_by(|a, b| a.name.cmp(&b.name));
        Response::Stats {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests: self.request_counts.clone(),
            evictions: self.evictions,
            mem_budget: self.mem_budget as u64,
            projects,
        }
    }

    fn evict(&mut self, project: Option<&str>) -> Response {
        match project {
            Some(p) => {
                if self.sessions.remove(p).is_none() {
                    return err(format!("evict: no in-memory session for project {p:?}"));
                }
            }
            None => self.sessions.clear(),
        }
        Response::Ok
    }

    /// Writes one project's state through to the disk store. A no-op
    /// when the session is clean: a replayed request changes nothing,
    /// so the file on disk is already current.
    fn persist(&mut self, project: &str) {
        let Some(store) = &self.store else { return };
        let Some(session) = self.sessions.get(project) else {
            return;
        };
        if !session.dirty {
            return;
        }
        let mut benches: Vec<StoredBench> = session.stored.values().cloned().collect();
        benches.sort_by(|a, b| a.name.cmp(&b.name));
        let state = StoredProject {
            spec_key: session.cache.spec_key().to_string(),
            benches,
        };
        // A failed save degrades to colder restarts, not wrong answers;
        // surface it on stderr and keep serving (the session stays
        // dirty, so the next request retries the write).
        match store.save(project, &state) {
            Ok(()) => {
                if let Some(s) = self.sessions.get_mut(project) {
                    s.dirty = false;
                }
            }
            Err(e) => eprintln!("ruf95 serve: store write failed for {project:?}: {e}"),
        }
    }

    /// Evicts least-recently-used sessions (never `current`) until the
    /// estimated session memory fits the budget. Evicted sessions keep
    /// their disk-store files, so they warm-start on return.
    fn enforce_budget(&mut self, current: &str) {
        if self.mem_budget == 0 {
            return;
        }
        loop {
            let total: usize = self.sessions.values().map(|s| s.cache.approx_bytes()).sum();
            if total <= self.mem_budget {
                return;
            }
            let victim = self
                .sessions
                .iter()
                .filter(|(name, _)| name.as_str() != current)
                .max_by_key(|(_, s)| s.last_used.elapsed())
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.sessions.remove(&name);
                    self.evictions += 1;
                }
                // Only the active session remains; it may exceed the
                // budget on its own, and evicting it would thrash.
                None => return,
            }
        }
    }
}

/// Per-benchmark fingerprints for an analyze response. `graph_fp` comes
/// from the session cache when available (it was just computed there);
/// fresh cross-check runs rebuild the index.
fn bench_fps(b: &BenchOutput, cached_graph_fp: Option<u64>) -> BenchFps {
    let graph_fp = cached_graph_fp.unwrap_or_else(|| GraphIndex::build(&b.graph).graph_fp);
    BenchFps {
        name: b.name.clone(),
        source_fp: fp_hex(fnv64(b.source.as_bytes())),
        graph_fp: fp_hex(graph_fp),
        solvers: b
            .solutions
            .iter()
            .map(|s| SolverFp {
                analysis: s.analysis.clone(),
                fp: s
                    .solution
                    .as_deref()
                    .map(|sol| fp_hex(solution_fingerprint(sol, &b.graph))),
                mode: s.mode.as_ref().map(|m| m.render()),
                pairs: s
                    .solution
                    .as_deref()
                    .and_then(|sol| sol.pairs())
                    .map(|p| p as u64),
            })
            .collect(),
    }
}

/// Like [`bench_fps`], but reuses the session's memoized solution
/// fingerprints and pair counts when (source_fp, graph_fp) match — a
/// replayed solution is byte-identical to the one fingerprinted before,
/// so re-walking it per request would only re-derive the same numbers.
/// Solver modes are always taken fresh from this run (they describe how
/// this particular request was satisfied).
fn bench_fps_memo(
    b: &BenchOutput,
    source_fp: u64,
    graph_fp: u64,
    memo: &mut HashMap<String, FpsMemo>,
) -> BenchFps {
    let hit = memo
        .get(&b.name)
        .is_some_and(|m| m.source_fp == source_fp && m.graph_fp == graph_fp);
    if !hit {
        memo.insert(
            b.name.clone(),
            FpsMemo {
                source_fp,
                graph_fp,
                solvers: b
                    .solutions
                    .iter()
                    .map(|s| {
                        (
                            s.analysis.clone(),
                            s.solution
                                .as_deref()
                                .map(|sol| solution_fingerprint(sol, &b.graph)),
                            s.solution
                                .as_deref()
                                .and_then(|sol| sol.pairs())
                                .map(|p| p as u64),
                        )
                    })
                    .collect(),
            },
        );
    }
    let m = &memo[&b.name];
    BenchFps {
        name: b.name.clone(),
        source_fp: fp_hex(source_fp),
        graph_fp: fp_hex(graph_fp),
        solvers: b
            .solutions
            .iter()
            .map(|s| {
                let cached = m.solvers.iter().find(|(a, _, _)| *a == s.analysis);
                SolverFp {
                    analysis: s.analysis.clone(),
                    fp: cached.and_then(|(_, fp, _)| *fp).map(fp_hex),
                    mode: s.mode.as_ref().map(|m| m.render()),
                    pairs: cached.and_then(|(_, _, p)| *p),
                }
            })
            .collect(),
    }
}

fn serve_info(run: &EngineRun, restored: bool) -> ServeInfo {
    let mut info = ServeInfo {
        restored,
        ..ServeInfo::default()
    };
    if let Some(st) = &run.report.incremental {
        info.benches_replayed = st.benches_replayed as u64;
        info.benches_seeded = st.benches_seeded as u64;
        info.benches_fresh = st.benches_fresh as u64;
        info.solutions_replayed = st.solutions_replayed as u64;
        info.funcs_reused = st.funcs_reused as u64;
        info.funcs_dirty = st.funcs_dirty as u64;
    }
    info
}

/// FNV-64 over one benchmark's diagnostics under every solver — the
/// byte-identity currency for check results across daemon restarts.
pub fn check_fingerprint(b: &BenchOutput, bc: &BenchChecks) -> u64 {
    let mut h = Fnv64::new();
    for row in &bc.rows {
        h.write_str(&row.solver);
        h.write_str(&diagnostics_json(b, bc, &row.solver));
    }
    h.finish()
}
