//! Persistent analysis serving for the Ruf'95 reproduction.
//!
//! PR 4 made re-analysis incremental inside one process; this crate
//! makes the process long-lived. Three layers:
//!
//! - [`store`]: a versioned, checksummed on-disk cache of per-project
//!   summaries and fingerprints. Corruption in any form degrades to a
//!   cold start — the store seeds work, it never substitutes for it.
//! - [`service`]: the transport-agnostic dispatcher mapping
//!   [`proto::Request`] to [`proto::Response`], with per-project
//!   session isolation, write-through persistence, and LRU eviction
//!   under a memory budget.
//! - [`daemon`]: the JSON-over-TCP transport (`ruf95 serve`) and the
//!   matching [`daemon::Client`].
//!
//! The restart-replay guarantee: analyze, kill the daemon, restart it
//! against the same store, analyze again — every solution fingerprint,
//! report fingerprint, and diagnostic byte is identical. The harness
//! in `tests/serve.rs` drives this across a 100-step edit chain.

pub mod bench;
pub mod daemon;
pub mod service;
pub mod store;

pub use daemon::{request, Client, DaemonHandle};
pub use service::{Service, ServiceOptions};
pub use store::{LoadOutcome, Store, StoredBench, StoredProject};
