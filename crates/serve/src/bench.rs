//! The `BENCH_pr6.json` generator: quantifies what the daemon buys.
//!
//! Three latency regimes for the full benchmark suite, plus socket
//! query throughput:
//!
//! - **cold**: a fresh in-process `Engine::run` — parse, lower, solve
//!   everything under every solver. The pre-daemon baseline.
//! - **warm**: re-analyzing an unchanged suite against a primed
//!   session — tier-1 source-hash replay, no solving.
//! - **warm_restore**: the first analyze of a brand-new service whose
//!   project was persisted to disk — recompile plus seeded tier-3 CI
//!   resume with an empty dirty cone.
//!
//! The PR 6 acceptance criterion is `warm ≥ 3× faster than cold`.

use crate::daemon;
use crate::service::{Service, ServiceOptions};
use proto::{JobSpec, QueryKind, Request, Response};
use std::time::Instant;

/// One timed regime.
#[derive(Debug, Clone)]
pub struct Regime {
    pub name: &'static str,
    pub micros: u64,
}

/// The full measurement set rendered into `BENCH_pr6.json`.
#[derive(Debug, Clone)]
pub struct ServeBench {
    pub benches: usize,
    pub regimes: Vec<Regime>,
    pub warm_speedup: f64,
    pub query_requests: u64,
    pub query_secs: f64,
    pub query_rps: f64,
}

fn suite_jobs() -> Vec<JobSpec> {
    suite::benchmarks()
        .iter()
        .map(|b| JobSpec {
            name: b.name.to_string(),
            source: b.source.to_string(),
            input: b.input.to_vec(),
        })
        .collect()
}

fn expect_analyzed(resp: Response, what: &str) -> Result<(), String> {
    match resp {
        Response::Analyzed { .. } => Ok(()),
        Response::Error { message } => Err(format!("{what}: {message}")),
        other => Err(format!("{what}: unexpected response {other:?}")),
    }
}

/// Runs the measurement and returns it. `store_dir` hosts the restart
/// leg; `query_iters` bounds the socket throughput loop.
///
/// # Errors
///
/// Returns a description of the first failing request.
pub fn run(store_dir: &std::path::Path, query_iters: u64) -> Result<ServeBench, String> {
    let jobs = suite_jobs();
    let opts = || ServiceOptions {
        store_dir: Some(store_dir.to_path_buf()),
        mem_budget: 0,
        threads: 0,
    };

    // Cold: fresh in-process solve, no cache anywhere.
    let mut svc = Service::new(opts()).map_err(|e| format!("store: {e}"))?;
    let t = Instant::now();
    expect_analyzed(
        svc.handle(&Request::Analyze {
            project: "bench".into(),
            jobs: jobs.clone(),
            fresh: true,
            want_report: false,
        }),
        "cold analyze",
    )?;
    let cold = t.elapsed().as_micros() as u64;

    // Prime the session (and the disk store), then measure warm replay.
    expect_analyzed(
        svc.handle(&Request::Analyze {
            project: "bench".into(),
            jobs: jobs.clone(),
            fresh: false,
            want_report: false,
        }),
        "priming analyze",
    )?;
    let t = Instant::now();
    expect_analyzed(
        svc.handle(&Request::Analyze {
            project: "bench".into(),
            jobs: jobs.clone(),
            fresh: false,
            want_report: false,
        }),
        "warm analyze",
    )?;
    let warm = t.elapsed().as_micros() as u64;
    drop(svc);

    // Warm restore: a new service process-equivalent, seeded from disk.
    let mut svc = Service::new(opts()).map_err(|e| format!("store: {e}"))?;
    let t = Instant::now();
    expect_analyzed(
        svc.handle(&Request::Analyze {
            project: "bench".into(),
            jobs: jobs.clone(),
            fresh: false,
            want_report: false,
        }),
        "restore analyze",
    )?;
    let warm_restore = t.elapsed().as_micros() as u64;

    // Query throughput over a real socket, against the primed daemon.
    let handle = daemon::spawn(svc, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let mut client = daemon::Client::connect(handle.addr()).map_err(|e| format!("connect: {e}"))?;
    let bench_name = jobs[0].name.clone();
    let t = Instant::now();
    for i in 0..query_iters {
        let resp = client
            .request(&Request::Query {
                project: "bench".into(),
                bench: bench_name.clone(),
                analysis: "ci".into(),
                query: QueryKind::ReferentsAt {
                    site: (i % 2) as usize,
                },
            })
            .map_err(|e| format!("query: {e}"))?;
        if let Response::Error { message } = resp {
            return Err(format!("query: {message}"));
        }
    }
    let query_secs = t.elapsed().as_secs_f64();
    let _ = client.request(&Request::Shutdown);
    handle.join();

    let warm_speedup = cold as f64 / (warm.max(1)) as f64;
    Ok(ServeBench {
        benches: jobs.len(),
        regimes: vec![
            Regime {
                name: "cold_us",
                micros: cold,
            },
            Regime {
                name: "warm_us",
                micros: warm,
            },
            Regime {
                name: "warm_restore_us",
                micros: warm_restore,
            },
        ],
        warm_speedup,
        query_requests: query_iters,
        query_secs,
        query_rps: if query_secs > 0.0 {
            query_iters as f64 / query_secs
        } else {
            0.0
        },
    })
}

impl ServeBench {
    /// Renders the `BENCH_pr6.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"pr6_serve\",\n");
        s.push_str(&format!("  \"suite_benches\": {},\n", self.benches));
        for r in &self.regimes {
            s.push_str(&format!("  \"{}\": {},\n", r.name, r.micros));
        }
        s.push_str(&format!(
            "  \"warm_speedup_vs_cold\": {:.2},\n",
            self.warm_speedup
        ));
        s.push_str(&format!(
            "  \"query_requests\": {},\n  \"query_wall_s\": {:.4},\n  \"query_rps\": {:.1}\n",
            self.query_requests, self.query_secs, self.query_rps
        ));
        s.push_str("}\n");
        s
    }
}
