//! The `BENCH_pr6.json` generator: quantifies what the daemon buys.
//!
//! Three latency regimes for the full benchmark suite, plus socket
//! query throughput:
//!
//! - **cold**: a fresh in-process `Engine::run` — parse, lower, solve
//!   everything under every solver. The pre-daemon baseline.
//! - **warm**: re-analyzing an unchanged suite against a primed
//!   session — tier-1 source-hash replay, no solving.
//! - **warm_restore**: the first analyze of a brand-new service whose
//!   project was persisted to disk — recompile plus seeded tier-3 CI
//!   resume with an empty dirty cone.
//!
//! The PR 6 acceptance criterion is `warm ≥ 3× faster than cold`.

use crate::daemon;
use crate::service::{Service, ServiceOptions};
use proto::{JobSpec, QueryKind, Request, Response};
use std::time::Instant;

/// One timed regime.
#[derive(Debug, Clone)]
pub struct Regime {
    pub name: &'static str,
    pub micros: u64,
}

/// The full measurement set rendered into `BENCH_pr6.json`.
#[derive(Debug, Clone)]
pub struct ServeBench {
    pub benches: usize,
    pub regimes: Vec<Regime>,
    pub warm_speedup: f64,
    pub query_requests: u64,
    pub query_secs: f64,
    pub query_rps: f64,
}

fn suite_jobs() -> Vec<JobSpec> {
    suite::benchmarks()
        .iter()
        .map(|b| JobSpec {
            name: b.name.to_string(),
            source: b.source.to_string(),
            input: b.input.to_vec(),
        })
        .collect()
}

fn expect_analyzed(resp: Response, what: &str) -> Result<(), String> {
    match resp {
        Response::Analyzed { .. } => Ok(()),
        Response::Error { message } => Err(format!("{what}: {message}")),
        other => Err(format!("{what}: unexpected response {other:?}")),
    }
}

/// Runs the measurement and returns it. `store_dir` hosts the restart
/// leg; `query_iters` bounds the socket throughput loop.
///
/// # Errors
///
/// Returns a description of the first failing request.
pub fn run(store_dir: &std::path::Path, query_iters: u64) -> Result<ServeBench, String> {
    let jobs = suite_jobs();
    let opts = || ServiceOptions {
        store_dir: Some(store_dir.to_path_buf()),
        mem_budget: 0,
        threads: 0,
    };

    // Cold: fresh in-process solve, no cache anywhere.
    let mut svc = Service::new(opts()).map_err(|e| format!("store: {e}"))?;
    let t = Instant::now();
    expect_analyzed(
        svc.handle(&Request::Analyze {
            project: "bench".into(),
            jobs: jobs.clone(),
            fresh: true,
            want_report: false,
        }),
        "cold analyze",
    )?;
    let cold = t.elapsed().as_micros() as u64;

    // Prime the session (and the disk store), then measure warm replay.
    expect_analyzed(
        svc.handle(&Request::Analyze {
            project: "bench".into(),
            jobs: jobs.clone(),
            fresh: false,
            want_report: false,
        }),
        "priming analyze",
    )?;
    let t = Instant::now();
    expect_analyzed(
        svc.handle(&Request::Analyze {
            project: "bench".into(),
            jobs: jobs.clone(),
            fresh: false,
            want_report: false,
        }),
        "warm analyze",
    )?;
    let warm = t.elapsed().as_micros() as u64;
    drop(svc);

    // Warm restore: a new service process-equivalent, seeded from disk.
    let mut svc = Service::new(opts()).map_err(|e| format!("store: {e}"))?;
    let t = Instant::now();
    expect_analyzed(
        svc.handle(&Request::Analyze {
            project: "bench".into(),
            jobs: jobs.clone(),
            fresh: false,
            want_report: false,
        }),
        "restore analyze",
    )?;
    let warm_restore = t.elapsed().as_micros() as u64;

    // Query throughput over a real socket, against the primed daemon.
    let handle = daemon::spawn(svc, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let mut client = daemon::Client::connect(handle.addr()).map_err(|e| format!("connect: {e}"))?;
    let bench_name = jobs[0].name.clone();
    let t = Instant::now();
    for i in 0..query_iters {
        let resp = client
            .request(&Request::Query {
                project: "bench".into(),
                bench: bench_name.clone(),
                analysis: "ci".into(),
                query: QueryKind::ReferentsAt {
                    site: (i % 2) as usize,
                },
                job: None,
            })
            .map_err(|e| format!("query: {e}"))?;
        if let Response::Error { message } = resp {
            return Err(format!("query: {message}"));
        }
    }
    let query_secs = t.elapsed().as_secs_f64();
    let _ = client.request(&Request::Shutdown);
    handle.join();

    let warm_speedup = cold as f64 / (warm.max(1)) as f64;
    Ok(ServeBench {
        benches: jobs.len(),
        regimes: vec![
            Regime {
                name: "cold_us",
                micros: cold,
            },
            Regime {
                name: "warm_us",
                micros: warm,
            },
            Regime {
                name: "warm_restore_us",
                micros: warm_restore,
            },
        ],
        warm_speedup,
        query_requests: query_iters,
        query_secs,
        query_rps: if query_secs > 0.0 {
            query_iters as f64 / query_secs
        } else {
            0.0
        },
    })
}

// ---------------------------------------------------------------------
// PR 7: demand-driven query benchmark (`serve-bench --queries`).
// ---------------------------------------------------------------------

/// The `BENCH_pr7.json` measurement set: what demand-driven queries buy
/// over exhaustive-solve-then-lookup on the serve hot path.
#[derive(Debug, Clone)]
pub struct QueryBench {
    /// Suite benchmarks measured.
    pub benches: usize,
    /// Total cold first-query latency across the suite, demand path:
    /// fresh service, source inline with the query, no prior analyze.
    pub demand_cold_us: u64,
    /// Total cold first-query latency across the suite, exhaustive
    /// path: fresh service, full analyze, then the same query.
    pub exhaustive_cold_us: u64,
    /// `exhaustive_cold_us / demand_cold_us`.
    pub cold_speedup: f64,
    /// Steady-state socket throughput: requests sent / wall seconds.
    pub query_requests: u64,
    pub query_secs: f64,
    pub query_rps: f64,
    /// Fraction of demand-path queries answered inside the budget
    /// (demand hits over hits + fallbacks, from the service counters).
    pub in_budget_fraction: f64,
    /// Demand-then-materialized solution fingerprints equal a fresh
    /// exhaustive CI solve on every suite benchmark.
    pub fingerprint_match: bool,
}

fn expect_query(resp: Response, what: &str) -> Result<(), String> {
    match resp {
        Response::QueryResult { .. } => Ok(()),
        Response::Error { message } => Err(format!("{what}: {message}")),
        other => Err(format!("{what}: unexpected response {other:?}")),
    }
}

/// Runs the demand-query measurement. Entirely in-memory: the store
/// plays no role in first-query latency.
///
/// # Errors
///
/// Returns a description of the first failing request.
pub fn run_queries(query_iters: u64) -> Result<QueryBench, String> {
    // The paper suite plus the scaling sweep: the bundled programs are
    // small enough that compile+lower dominates both paths, so the
    // scaled chain/diamond programs — where the whole-program solve is
    // the real cost — carry the cold-first-query comparison.
    let mut jobs = suite_jobs();
    jobs.extend(
        suite::scaling::standard_suite(1995)
            .into_iter()
            .map(|p| JobSpec {
                name: p.name,
                source: p.source,
                input: Vec::new(),
            }),
    );
    // Every job must have a queryable site 0; some small generated
    // diamonds come out with no indirect memory op at all.
    jobs.retain(|j| {
        cfront::compile(&j.source)
            .ok()
            .and_then(|p| vdg::build::lower(&p, &vdg::build::BuildOptions::default()).ok())
            .is_some_and(|g| !g.indirect_mem_ops().is_empty())
    });
    let opts = || ServiceOptions {
        store_dir: None,
        mem_budget: 0,
        threads: 0,
    };
    let query_for = |job: &JobSpec, with_source: bool| Request::Query {
        project: "qbench".into(),
        bench: job.name.clone(),
        analysis: "ci".into(),
        query: QueryKind::ReferentsAt { site: 0 },
        job: with_source.then(|| job.clone()),
    };

    // Cold first query, demand path: one fresh service per benchmark,
    // the source rides along with the query, nothing is pre-solved.
    let mut demand_cold = 0u64;
    for job in &jobs {
        let mut svc = Service::new(opts()).map_err(|e| format!("store: {e}"))?;
        let t = Instant::now();
        expect_query(svc.handle(&query_for(job, true)), "demand query")?;
        demand_cold += t.elapsed().as_micros() as u64;
    }

    // Cold first query, exhaustive path: analyze everything first,
    // then look the answer up. This is what every query cost pre-PR7.
    let mut exhaustive_cold = 0u64;
    for job in &jobs {
        let mut svc = Service::new(opts()).map_err(|e| format!("store: {e}"))?;
        let t = Instant::now();
        // `fresh: false` on an empty in-memory service is still a full
        // cold solve; `fresh: true` would bypass the session and leave
        // nothing for the lookup to find.
        expect_analyzed(
            svc.handle(&Request::Analyze {
                project: "qbench".into(),
                jobs: vec![job.clone()],
                fresh: false,
                want_report: false,
            }),
            "exhaustive analyze",
        )?;
        expect_query(svc.handle(&query_for(job, false)), "exhaustive query")?;
        exhaustive_cold += t.elapsed().as_micros() as u64;
    }

    // Steady state: demand queries over a real socket, cycling through
    // the suite, against one long-lived daemon.
    let svc = Service::new(opts()).map_err(|e| format!("store: {e}"))?;
    let handle = daemon::spawn(svc, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let mut client = daemon::Client::connect(handle.addr()).map_err(|e| format!("connect: {e}"))?;
    let t = Instant::now();
    for i in 0..query_iters {
        let job = &jobs[(i as usize) % jobs.len()];
        let resp = client
            .request(&query_for(job, true))
            .map_err(|e| format!("query: {e}"))?;
        expect_query(resp, "steady-state query")?;
    }
    let query_secs = t.elapsed().as_secs_f64();
    // The service's own counters say how many of those stayed within
    // the demand budget versus falling back to an exhaustive solve.
    let in_budget_fraction = match client.request(&Request::Stats) {
        Ok(Response::Stats { projects, .. }) => {
            let hits: u64 = projects.iter().map(|p| p.demand_hits).sum();
            let falls: u64 = projects.iter().map(|p| p.demand_fallbacks).sum();
            if hits + falls == 0 {
                0.0
            } else {
                hits as f64 / (hits + falls) as f64
            }
        }
        _ => 0.0,
    };
    let _ = client.request(&Request::Shutdown);
    handle.join();

    // Cross-check: demand-then-materialize lands on the identical
    // solution fingerprint as a fresh exhaustive CI solve, suite-wide.
    let mut fingerprint_match = true;
    for job in &jobs {
        let prog = cfront::compile(&job.source).map_err(|e| format!("{}: {e}", job.name))?;
        let graph = vdg::build::lower(&prog, &vdg::build::BuildOptions::default())
            .map_err(|e| format!("{}: {e}", job.name))?;
        let fresh = alias::analyze_ci(&graph, &alias::CiConfig::default());
        let mut st = alias::DemandState::new(&graph, alias::DemandConfig::default());
        if let Some(&(node, _)) = graph.indirect_mem_ops().first() {
            let _ = st.loc_referents_rendered(&graph, node);
        }
        let mat = st.materialize(&graph);
        if alias::solver::solution_fingerprint(&fresh, &graph)
            != alias::solver::solution_fingerprint(&mat, &graph)
        {
            fingerprint_match = false;
        }
    }

    Ok(QueryBench {
        benches: jobs.len(),
        demand_cold_us: demand_cold,
        exhaustive_cold_us: exhaustive_cold,
        cold_speedup: exhaustive_cold as f64 / (demand_cold.max(1)) as f64,
        query_requests: query_iters,
        query_secs,
        query_rps: if query_secs > 0.0 {
            query_iters as f64 / query_secs
        } else {
            0.0
        },
        in_budget_fraction,
        fingerprint_match,
    })
}

// ---------------------------------------------------------------------
// PR 8: per-solver summary-seeded resume benchmark
// (`serve-bench --summaries`).
// ---------------------------------------------------------------------

/// Warm-edit statistics for one solver.
#[derive(Debug, Clone)]
pub struct SolverEditStats {
    /// Solver name (`weihl` … `cs`).
    pub analysis: String,
    /// Edits measured.
    pub edits: usize,
    /// Median `fresh wall / warm wall` across edits of the full-sweep
    /// re-analysis: one program edited, the rest replayed from their
    /// summaries — the corpus-edit scenario the serve layer exists for.
    pub median_speedup: f64,
    /// Total fresh re-analysis wall across edits, microseconds.
    pub fresh_us: u64,
    /// Total warm (summary-seeded) re-analysis wall across edits.
    pub warm_us: u64,
    /// Edits where any benchmark's warm solution fingerprint diverged
    /// from the fresh solve's. Must be zero: the resume is a pure
    /// optimization.
    pub mismatches: usize,
}

/// The `BENCH_pr8.json` measurement set: what compositional bottom-up
/// summaries buy each solver after an edit, plus the intra-solve
/// thread scaling of the wave-parallel summary extraction.
#[derive(Debug, Clone)]
pub struct SummariesBench {
    /// Scaled programs driven (solve-dominated chain/diamond sweep).
    pub programs: usize,
    /// Per-solver warm-edit statistics, spectrum order.
    pub solvers: Vec<SolverEditStats>,
    /// Sum of per-solver fingerprint mismatches. CI asserts zero.
    pub fingerprint_mismatches: usize,
    /// Serial (`threads = 1`) summary-extraction wall over the largest
    /// program, all five vocabularies, microseconds.
    pub compose_serial_us: u64,
    /// Same extraction under auto parallelism.
    pub compose_parallel_us: u64,
    /// `compose_serial_us / compose_parallel_us` (≈ available
    /// parallel speedup of the SCC wave schedule; ~1.0 on one core).
    pub compose_scaling: f64,
}

/// Runs the per-solver warm-edit measurement. For each solver: prime a
/// single-solver engine's cache on the full scaling sweep (untimed,
/// once per trial via `absorb`), apply a seeded edit to *one* program,
/// then re-analyze the whole sweep warm (edited program resumes from
/// its summaries, the rest replay) versus fresh — comparing every
/// benchmark's solution fingerprint on every trial.
///
/// # Errors
///
/// Returns a description of the first failing solve.
pub fn run_summaries(edits_per_program: usize) -> Result<SummariesBench, String> {
    use engine::{Engine, Job};
    use suite::edit::apply_random_edit;

    // The solve-dominated scaling sweep: on the small paper programs
    // the frontend dwarfs every solver and warm-edit gains vanish into
    // noise; the chain/diamond programs are where summaries matter.
    let programs = suite::scaling::standard_suite(1995);
    let jobs: Vec<Job> = programs
        .iter()
        .map(|p| Job::new(&p.name, &p.source))
        .collect();
    let trials = edits_per_program.max(1) * jobs.len();
    let mut solvers = Vec::new();
    let mut total_mismatches = 0usize;
    for spec in alias::SolverSpec::all() {
        let engine = Engine::new().threads(1).specs(std::slice::from_ref(&spec));
        let baseline = engine
            .run(&jobs)
            .map_err(|e| format!("{}: baseline: {e}", spec.name()))?;
        let mut speedups: Vec<f64> = Vec::new();
        let mut fresh_total = 0u64;
        let mut warm_total = 0u64;
        let mut mismatches = 0usize;
        let mut seed = 0u64;
        while speedups.len() < trials && seed < trials as u64 * 16 {
            let bi = speedups.len() % jobs.len();
            seed += 1;
            let Some(step) = apply_random_edit(&jobs[bi].source, seed) else {
                continue;
            };
            let mut edited = jobs.clone();
            edited[bi].source = step.source.clone();
            // Prime the cache outside the timer: absorbing the baseline
            // is the one-time cost of entering incremental mode, paid
            // once per edit chain, not once per edit.
            let mut cache = engine.cache();
            cache.absorb(&baseline);
            let t = Instant::now();
            let warm = engine
                .analyze_incremental_with(&mut cache, &edited)
                .map_err(|e| format!("{}: warm: {e}", spec.name()))?;
            let w_us = t.elapsed().as_micros() as u64;
            let t = Instant::now();
            let fresh = engine
                .run(&edited)
                .map_err(|e| format!("{}: fresh: {e}", spec.name()))?;
            let f_us = t.elapsed().as_micros() as u64;
            fresh_total += f_us;
            warm_total += w_us;
            speedups.push(f_us.max(1) as f64 / w_us.max(1) as f64);
            for (wb, fb) in warm.benches.iter().zip(&fresh.benches) {
                let fp = |b: &engine::BenchOutput| {
                    b.solution(spec.name())
                        .map(|s| alias::solver::solution_fingerprint(s, &b.graph))
                };
                if fp(wb) != fp(fb) || fp(fb).is_none() {
                    mismatches += 1;
                }
            }
        }
        speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = if speedups.is_empty() {
            0.0
        } else {
            speedups[speedups.len() / 2]
        };
        total_mismatches += mismatches;
        solvers.push(SolverEditStats {
            analysis: spec.name().to_string(),
            edits: speedups.len(),
            median_speedup: median,
            fresh_us: fresh_total,
            warm_us: warm_total,
            mismatches,
        });
    }

    // Intra-solve thread scaling of the wave-parallel summary
    // extraction: all five vocabularies over the largest program.
    let big = programs
        .iter()
        .max_by_key(|p| p.source.len())
        .expect("nonempty sweep");
    let run = engine::Engine::new()
        .threads(1)
        .run(&[engine::Job::new(&big.name, &big.source)])
        .map_err(|e| format!("{}: compose: {e}", big.name))?;
    let b = &run.benches[0];
    let index = alias::fingerprint::GraphIndex::build(&b.graph);
    let time_compose = |threads: usize| -> u64 {
        let t = Instant::now();
        for s in &b.solutions {
            if let Some(sol) = s.solution.as_deref() {
                let _ = engine::compose::summarize(&b.graph, &index, sol, Some(&b.ci), threads);
            }
        }
        t.elapsed().as_micros() as u64
    };
    let compose_serial_us = time_compose(1).max(1);
    let compose_parallel_us = time_compose(0).max(1);

    Ok(SummariesBench {
        programs: programs.len(),
        solvers,
        fingerprint_mismatches: total_mismatches,
        compose_serial_us,
        compose_parallel_us,
        compose_scaling: compose_serial_us as f64 / compose_parallel_us as f64,
    })
}

impl SummariesBench {
    /// Renders the `BENCH_pr8.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"pr8_summaries\",\n");
        s.push_str(&format!("  \"programs\": {},\n", self.programs));
        s.push_str("  \"solvers\": [\n");
        for (i, sv) in self.solvers.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"analysis\": \"{}\", \"edits\": {}, \
                 \"median_warm_edit_speedup\": {:.2}, \"fresh_wall_us\": {}, \
                 \"warm_wall_us\": {}, \"fingerprint_mismatches\": {}}}{}\n",
                sv.analysis,
                sv.edits,
                sv.median_speedup,
                sv.fresh_us,
                sv.warm_us,
                sv.mismatches,
                if i + 1 < self.solvers.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"fingerprint_mismatches\": {},\n",
            self.fingerprint_mismatches
        ));
        s.push_str(&format!(
            "  \"compose_serial_us\": {},\n  \"compose_parallel_us\": {},\n  \
             \"compose_thread_scaling\": {:.2}\n",
            self.compose_serial_us, self.compose_parallel_us, self.compose_scaling
        ));
        s.push_str("}\n");
        s
    }
}

impl QueryBench {
    /// Renders the `BENCH_pr7.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"pr7_demand_queries\",\n");
        s.push_str(&format!("  \"suite_benches\": {},\n", self.benches));
        s.push_str(&format!(
            "  \"demand_cold_first_query_us\": {},\n",
            self.demand_cold_us
        ));
        s.push_str(&format!(
            "  \"exhaustive_cold_first_query_us\": {},\n",
            self.exhaustive_cold_us
        ));
        s.push_str(&format!(
            "  \"cold_first_query_speedup\": {:.2},\n",
            self.cold_speedup
        ));
        s.push_str(&format!(
            "  \"query_requests\": {},\n  \"query_wall_s\": {:.4},\n  \"query_rps\": {:.1},\n",
            self.query_requests, self.query_secs, self.query_rps
        ));
        s.push_str(&format!(
            "  \"in_budget_fraction\": {:.4},\n",
            self.in_budget_fraction
        ));
        s.push_str(&format!(
            "  \"fingerprint_match\": {}\n",
            self.fingerprint_match
        ));
        s.push_str("}\n");
        s
    }
}

impl ServeBench {
    /// Renders the `BENCH_pr6.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"pr6_serve\",\n");
        s.push_str(&format!("  \"suite_benches\": {},\n", self.benches));
        for r in &self.regimes {
            s.push_str(&format!("  \"{}\": {},\n", r.name, r.micros));
        }
        s.push_str(&format!(
            "  \"warm_speedup_vs_cold\": {:.2},\n",
            self.warm_speedup
        ));
        s.push_str(&format!(
            "  \"query_requests\": {},\n  \"query_wall_s\": {:.4},\n  \"query_rps\": {:.1}\n",
            self.query_requests, self.query_secs, self.query_rps
        ));
        s.push_str("}\n");
        s
    }
}
