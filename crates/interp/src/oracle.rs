//! The soundness oracle: checks that every concrete dereference observed
//! by the interpreter is covered by a points-to solution.
//!
//! For each `lookup`/`update` node with a source site, the abstract
//! location actually touched at runtime must appear among the referents
//! the analysis predicts at the node's location input. The paper verified
//! this property by hand; here it is automated and run over the whole
//! benchmark suite and over randomly generated programs.

use crate::exec::Trace;
use crate::memory::{AbsLoc, AbsStep, Origin};
use alias::path::{AccessOp, PathId, PathTable};
use alias::solver::Solution;
use alias::stats::PointsToSolution;
use cfront::ast::{ExprId, Program};
use std::collections::{HashMap, HashSet};
use vdg::graph::{BaseId, Graph, NodeId, VFuncId};

/// One uncovered runtime access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The memory operation whose prediction missed.
    pub node: NodeId,
    /// Whether the access was a write.
    pub is_write: bool,
    /// Rendered runtime location.
    pub runtime: String,
    /// Rendered predicted referents at the node.
    pub predicted: Vec<String>,
}

/// Checks a solution against an execution trace.
///
/// Returns all violations (empty = the solution is sound for this run).
pub fn check_solution(
    prog: &Program,
    graph: &Graph,
    sol: &dyn PointsToSolution,
    trace: &Trace,
) -> Vec<Violation> {
    let mut paths = sol.path_table().clone();
    let mut site_bases: HashMap<ExprId, BaseId> = HashMap::new();
    for b in graph.base_ids() {
        if let Some(e) = graph.base(b).site_expr {
            site_bases.insert(e, b);
        }
    }
    let mut violations = Vec::new();
    for (node, is_write) in graph.all_mem_ops() {
        let Some(site) = graph.node(node).site else {
            continue;
        };
        let recorded = if is_write {
            trace.writes.get(&site)
        } else {
            trace.reads.get(&site)
        };
        let Some(recorded) = recorded else { continue };
        let loc_out = graph.input_src(node, 0);
        // Collapse synthetic heap clones (k=1 heap naming) back to their
        // allocation sites: the runtime abstraction is site-granular.
        let referents: HashSet<PathId> = sol
            .pairs_at(loc_out)
            .iter()
            .map(|p| p.referent)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|r| paths.collapse_synthetic(r))
            .collect();
        for abs in recorded {
            let covered = match abs_to_path(&mut paths, graph, prog, abs, &site_bases) {
                Some(pid) => {
                    referents.contains(&pid) || {
                        // Under the Cooper scheme a runtime instance may be
                        // predicted via the "older instances" base.
                        match paths.cooper_older_of(pid) {
                            Some(older) => {
                                let rebased = paths.rebase(pid, older);
                                referents.contains(&rebased)
                            }
                            None => false,
                        }
                    }
                }
                None => false,
            };
            if !covered {
                let mut predicted: Vec<String> =
                    referents.iter().map(|&p| paths.display(p, graph)).collect();
                predicted.sort();
                violations.push(Violation {
                    node,
                    is_write,
                    runtime: render_abs(prog, abs),
                    predicted,
                });
            }
        }
    }
    violations
}

/// Checks any [`alias::Solution`] against an execution trace, through
/// the uniform trait query surface instead of concrete result types.
///
/// Pair-based solutions (CI, CS, Weihl, k=1) expose their path table
/// and per-point referents ([`alias::Solution::path_universe`],
/// [`alias::Solution::referents_at`]) and are checked at path
/// granularity, exactly like [`check_solution`]. Solutions without
/// per-point pair sets (Steensgaard) are checked at base granularity:
/// the base-location of every runtime access must appear among
/// [`alias::Solution::loc_referent_bases`].
pub fn check_solution_dyn(
    prog: &Program,
    graph: &Graph,
    sol: &dyn Solution,
    trace: &Trace,
) -> Vec<Violation> {
    let mut site_bases: HashMap<ExprId, BaseId> = HashMap::new();
    for b in graph.base_ids() {
        if let Some(e) = graph.base(b).site_expr {
            site_bases.insert(e, b);
        }
    }
    // Path-granular table when the solution has one; a fresh per-graph
    // table otherwise, used only to render bases in violation reports.
    let mut paths = match sol.path_universe() {
        Some(t) => t.clone(),
        None => PathTable::for_graph(graph),
    };
    let mut violations = Vec::new();
    for (node, is_write) in graph.all_mem_ops() {
        let Some(site) = graph.node(node).site else {
            continue;
        };
        let recorded = if is_write {
            trace.writes.get(&site)
        } else {
            trace.reads.get(&site)
        };
        let Some(recorded) = recorded else { continue };
        match sol.referents_at(graph, node) {
            Some(refs) => {
                let referents: HashSet<PathId> = refs
                    .into_iter()
                    .map(|r| paths.collapse_synthetic(r))
                    .collect();
                for abs in recorded {
                    let covered = match abs_to_path(&mut paths, graph, prog, abs, &site_bases) {
                        Some(pid) => {
                            referents.contains(&pid)
                                || match paths.cooper_older_of(pid) {
                                    Some(older) => {
                                        let rebased = paths.rebase(pid, older);
                                        referents.contains(&rebased)
                                    }
                                    None => false,
                                }
                        }
                        None => false,
                    };
                    if !covered {
                        let mut predicted: Vec<String> =
                            referents.iter().map(|&p| paths.display(p, graph)).collect();
                        predicted.sort();
                        violations.push(Violation {
                            node,
                            is_write,
                            runtime: render_abs(prog, abs),
                            predicted,
                        });
                    }
                }
            }
            None => {
                // Base-granular fallback: sorted and deduplicated by the
                // `loc_referent_bases` contract.
                let bases = sol.loc_referent_bases(graph, node);
                for abs in recorded {
                    let covered = abs_base(graph, abs, &site_bases)
                        .map(|b| bases.binary_search(&b).is_ok())
                        .unwrap_or(false);
                    if !covered {
                        let predicted: Vec<String> = bases
                            .iter()
                            .map(|&b| {
                                let root = paths.base_root(b);
                                paths.display(root, graph)
                            })
                            .collect();
                        violations.push(Violation {
                            node,
                            is_write,
                            runtime: render_abs(prog, abs),
                            predicted,
                        });
                    }
                }
            }
        }
    }
    violations
}

/// Maps an abstract runtime location to its base-location only,
/// ignoring field/element structure.
fn abs_base(graph: &Graph, abs: &AbsLoc, site_bases: &HashMap<ExprId, BaseId>) -> Option<BaseId> {
    match abs.origin {
        Origin::Global(g) => Some(graph.global_base(g)),
        Origin::Local { func, slot } => graph.local_base(VFuncId(func), slot),
        Origin::Heap(e) | Origin::Str(e) => site_bases.get(&e).copied(),
    }
}

/// Maps an abstract runtime location into the solution's path table.
/// Returns `None` when no corresponding base or field exists (which is
/// itself a violation: the analysis never modeled that storage).
fn abs_to_path(
    paths: &mut PathTable,
    graph: &Graph,
    prog: &Program,
    abs: &AbsLoc,
    site_bases: &HashMap<ExprId, BaseId>,
) -> Option<PathId> {
    let (base, is_heap) = match abs.origin {
        Origin::Global(g) => (graph.global_base(g), false),
        Origin::Local { func, slot } => (graph.local_base(VFuncId(func), slot)?, false),
        Origin::Heap(e) => (*site_bases.get(&e)?, true),
        Origin::Str(e) => (*site_bases.get(&e)?, false),
    };
    let mut p = paths.base_root(base);
    // Heap objects are unshaped buffers: the leading element step is the
    // pointer arithmetic the analysis folds into the base itself.
    let steps: &[AbsStep] = if is_heap && matches!(abs.steps.first(), Some(AbsStep::Elem)) {
        &abs.steps[1..]
    } else {
        &abs.steps
    };
    for step in steps {
        match *step {
            AbsStep::Field { rec, idx } => {
                let name = &prog.types.record(rec).fields[idx as usize].name;
                let fid = graph.field_id(name)?;
                p = paths.child(p, AccessOp::Field(fid));
            }
            AbsStep::Elem => {
                p = paths.child(p, AccessOp::Index);
            }
        }
    }
    Some(p)
}

fn render_abs(prog: &Program, abs: &AbsLoc) -> String {
    let mut s = match abs.origin {
        Origin::Global(g) => prog.globals[g as usize].name.clone(),
        Origin::Local { func, slot } => format!(
            "{}::{}",
            prog.funcs[func as usize].name, prog.funcs[func as usize].vars[slot as usize].name
        ),
        Origin::Heap(e) => format!("heap@expr{}", e.0),
        Origin::Str(e) => format!("str@expr{}", e.0),
    };
    for step in &abs.steps {
        match *step {
            AbsStep::Field { rec, idx } => {
                s.push('.');
                s.push_str(&prog.types.record(rec).fields[idx as usize].name);
            }
            AbsStep::Elem => s.push_str("[*]"),
        }
    }
    s
}
