//! # interp — a concrete mini-C interpreter and soundness oracle
//!
//! Executes checked mini-C programs deterministically while tracing every
//! memory access, then checks that the `alias` crate's points-to
//! solutions cover every runtime dereference target
//! ([`oracle::check_solution`]). This automates the soundness argument
//! the paper makes informally and backs the property tests over randomly
//! generated programs.
//!
//! ```
//! use interp::exec::{run, Config};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = cfront::compile(
//!     "int main(void) { int a; int *p; p = &a; *p = 41; return a + 1; }",
//! )?;
//! let out = run(&prog, &Config::default())?;
//! assert_eq!(out.exit, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod memory;
pub mod oracle;

pub use exec::{
    explore_races, run, run_traced, Config, FaultInfo, FaultKind, Outcome, RaceObs, RunError,
    RunRecord, Trace,
};
pub use oracle::{check_solution, check_solution_dyn, Violation};

#[cfg(test)]
mod tests {
    use super::*;
    use alias::SolverSpec;
    use vdg::build::{lower, BuildOptions};

    fn exec(src: &str) -> Outcome {
        let p = cfront::compile(src).expect("compiles");
        run(&p, &Config::default()).expect("runs")
    }

    fn exec_with_input(src: &str, input: &str) -> Outcome {
        let p = cfront::compile(src).expect("compiles");
        run(
            &p,
            &Config {
                input: input.as_bytes().to_vec(),
                ..Config::default()
            },
        )
        .expect("runs")
    }

    /// Runs the program and checks both CI and CS solutions against the
    /// trace; panics on any violation.
    fn exec_checked(src: &str) -> Outcome {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let ci = SolverSpec::ci().solve_ci(&g);
        let cs = SolverSpec::cs()
            .solve(&g, Some(&ci))
            .expect("cs budget")
            .into_cs()
            .expect("cs result");
        let out = run(&p, &Config::default()).expect("runs");
        let v_ci = check_solution(&p, &g, &ci, &out.trace);
        assert!(v_ci.is_empty(), "CI violations: {v_ci:#?}");
        let v_cs = check_solution(&p, &g, &cs, &out.trace);
        assert!(v_cs.is_empty(), "CS violations: {v_cs:#?}");
        out
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let out = exec(
            "int main(void) { int i; int s; s = 0; \
             for (i = 1; i <= 10; i++) { if (i % 2 == 0) continue; s += i; } \
             return s; }",
        );
        assert_eq!(out.exit, 25);
    }

    #[test]
    fn switch_and_loops() {
        let out = exec(
            "int classify(int c) { switch (c) { case 0: return 100; \
             case 1: case 2: return 200; default: return 300; } }\n\
             int main(void) { return classify(0) + classify(1) + classify(2) + classify(7); }",
        );
        assert_eq!(out.exit, 100 + 200 + 200 + 300);
    }

    #[test]
    fn pointers_and_out_params() {
        let out = exec_checked(
            "void swap(int *a, int *b) { int t; t = *a; *a = *b; *b = t; }\n\
             int main(void) { int x; int y; x = 3; y = 4; swap(&x, &y); \
             return x * 10 + y; }",
        );
        assert_eq!(out.exit, 43);
    }

    #[test]
    fn linked_list_program() {
        let out = exec_checked(
            "struct node { int v; struct node *next; };\n\
             struct node *cons(int v, struct node *t) {\n\
               struct node *n; n = (struct node*)malloc(sizeof(struct node));\n\
               n->v = v; n->next = t; return n; }\n\
             int sum(struct node *l) { int s; s = 0;\n\
               while (l != NULL) { s += l->v; l = l->next; } return s; }\n\
             int main(void) { return sum(cons(1, cons(2, cons(3, NULL)))); }",
        );
        assert_eq!(out.exit, 6);
    }

    #[test]
    fn arrays_and_pointer_arithmetic() {
        let out = exec_checked(
            "int sum(int *p, int n) { int s; int i; s = 0; \
             for (i = 0; i < n; i++) s += p[i]; return s; }\n\
             int main(void) { int a[5]; int i; \
             for (i = 0; i < 5; i++) a[i] = i + 1; \
             return sum(a, 5) + sum(a + 2, 2) + *(a + 4); }",
        );
        assert_eq!(out.exit, 15 + 7 + 5);
    }

    #[test]
    fn strings_and_output() {
        let out = exec(
            "int main(void) { char buf[32]; \
             strcpy(buf, \"hello\"); strcat(buf, \" world\"); \
             printf(\"%s! %d\\n\", buf, strlen(buf)); \
             return strcmp(buf, \"hello world\"); }",
        );
        assert_eq!(out.exit, 0);
        assert_eq!(out.stdout, "hello world! 11\n");
    }

    #[test]
    fn function_pointers() {
        let out = exec_checked(
            "int add(int a, int b) { return a + b; }\n\
             int mul(int a, int b) { return a * b; }\n\
             int apply(int (*op)(int, int), int x, int y) { return op(x, y); }\n\
             int main(void) { int (*f)(int, int); f = add; \
             return apply(f, 2, 3) + apply(mul, 2, 3); }",
        );
        assert_eq!(out.exit, 11);
    }

    #[test]
    fn struct_copies() {
        let out = exec_checked(
            "struct pt { int x; int y; };\n\
             int main(void) { struct pt a; struct pt b; \
             a.x = 1; a.y = 2; b = a; b.x = 10; \
             return a.x + b.x + b.y; }",
        );
        assert_eq!(out.exit, 13);
    }

    #[test]
    fn unions_share_storage_at_runtime() {
        let out = exec(
            "union u { int a; int b; };\n\
             int main(void) { union u v; v.a = 7; return v.b; }",
        );
        assert_eq!(out.exit, 7);
    }

    #[test]
    fn getchar_reads_configured_input() {
        let out = exec_with_input(
            "int main(void) { int c; int n; n = 0; \
             while ((c = getchar()) != -1) { n = n * 10 + (c - '0'); } \
             return n; }",
            "123",
        );
        assert_eq!(out.exit, 123);
    }

    #[test]
    fn recursion() {
        let out = exec_checked(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
             int main(void) { return fib(10); }",
        );
        assert_eq!(out.exit, 55);
    }

    #[test]
    fn heap_buffers_and_memset() {
        let out = exec_checked(
            "int main(void) { int *buf; int i; int s; \
             buf = (int*)malloc(10 * sizeof(int)); \
             for (i = 0; i < 10; i++) buf[i] = i; \
             s = 0; for (i = 0; i < 10; i++) s += buf[i]; \
             free(buf); return s; }",
        );
        assert_eq!(out.exit, 45);
    }

    #[test]
    fn exit_builtin_stops_program() {
        let out = exec("int main(void) { exit(9); return 1; }");
        assert_eq!(out.exit, 9);
    }

    #[test]
    fn null_deref_is_dynamic_error() {
        let p = cfront::compile("int main(void) { int *p; p = NULL; return *p; }").unwrap();
        let err = run(&p, &Config::default()).unwrap_err();
        assert!(matches!(err, RunError::Dynamic(_)));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let p = cfront::compile("int main(void) { for (;;) {} return 0; }").unwrap();
        let err = run(
            &p,
            &Config {
                max_steps: 10_000,
                ..Config::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, RunError::StepLimit);
    }

    #[test]
    fn trace_records_abstract_locations() {
        let p =
            cfront::compile("int g; int main(void) { int *p; p = &g; *p = 5; return g; }").unwrap();
        let out = run(&p, &Config::default()).unwrap();
        // Some write must target the abstraction of g.
        let hit =
            out.trace.writes.values().flatten().any(|a| {
                matches!(a.origin, crate::memory::Origin::Global(0)) && a.steps.is_empty()
            });
        assert!(hit);
    }

    #[test]
    fn oracle_catches_an_unsound_solution() {
        // An empty "solution" must be flagged when the program writes
        // through a pointer.
        use alias::stats::PointsToSolution;
        struct EmptySol(alias::PathTable);
        impl PointsToSolution for EmptySol {
            fn pairs_at(&self, _: vdg::graph::OutputId) -> &[alias::Pair] {
                &[]
            }
            fn path_table(&self) -> &alias::PathTable {
                &self.0
            }
        }
        let p =
            cfront::compile("int g; int main(void) { int *p; p = &g; *p = 5; return g; }").unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let out = run(&p, &Config::default()).unwrap();
        let sol = EmptySol(alias::PathTable::for_graph(&g));
        let violations = check_solution(&p, &g, &sol, &out.trace);
        assert!(!violations.is_empty());
    }

    #[test]
    fn memcpy_copies_structs() {
        let out = exec_checked(
            "struct s { int a; int *p; };\n\
             int g;\n\
             int main(void) { struct s x; struct s y; \
             x.a = 5; x.p = &g; g = 7; \
             memcpy(&y, &x, sizeof(struct s)); \
             return y.a + *(y.p); }",
        );
        assert_eq!(out.exit, 12);
    }

    #[test]
    fn strdup_and_strchr() {
        let out = exec(
            "int main(void) { char *s; char *t; \
             s = strdup(\"abcdef\"); t = strchr(s, 'c'); \
             if (t == NULL) return 99; return t - s; }",
        );
        assert_eq!(out.exit, 2);
    }

    #[test]
    fn sprintf_formats_into_buffer() {
        let out = exec(
            "int main(void) { char buf[64]; \
             sprintf(buf, \"%d-%s\", 42, \"x\"); \
             return strlen(buf); }",
        );
        assert_eq!(out.exit, 4);
    }

    #[test]
    fn deterministic_rand() {
        let a = exec("int main(void) { srand(7); return rand() % 100; }");
        let b = exec("int main(void) { srand(7); return rand() % 100; }");
        assert_eq!(a.exit, b.exit);
    }

    #[test]
    fn global_initializers_run() {
        let out = exec_checked(
            "int x; int *gp = &x; int table[3] = {10, 20, 30};\n\
             int main(void) { *gp = table[1]; return x; }",
        );
        assert_eq!(out.exit, 20);
    }

    #[test]
    fn do_while_and_compound_assignment() {
        let out = exec(
            "int main(void) { int n; int s; n = 5; s = 1;              do { s *= 2; n -= 1; } while (n > 0); return s; }",
        );
        assert_eq!(out.exit, 32);
    }

    #[test]
    fn two_dimensional_arrays() {
        let out = exec_checked(
            "int grid[3][4];
             int main(void) { int i; int j; int s; s = 0;
               for (i = 0; i < 3; i++) { for (j = 0; j < 4; j++) {                  grid[i][j] = i * 4 + j; } }
               for (i = 0; i < 3; i++) { s += grid[i][i]; }
               return s; }",
        );
        assert_eq!(out.exit, 5 + 10);
    }

    #[test]
    fn pointer_into_struct_field() {
        let out = exec_checked(
            "struct s { int a; int b; };
             int main(void) { struct s v; int *p; v.a = 1; v.b = 2;              p = &v.b; *p = 9; return v.a + v.b; }",
        );
        assert_eq!(out.exit, 10);
    }

    #[test]
    fn array_of_structs_with_pointers() {
        let out = exec_checked(
            "struct cell { int v; int *link; };
             struct cell cells[3];
             int shared;
             int main(void) { int i; int s; shared = 7; s = 0;
               for (i = 0; i < 3; i++) { cells[i].v = i; cells[i].link = &shared; }
               for (i = 0; i < 3; i++) { s += cells[i].v + *(cells[i].link); }
               return s; }",
        );
        assert_eq!(out.exit, 1 + 2 + 21);
    }

    #[test]
    fn division_by_zero_is_dynamic_error() {
        let p = cfront::compile("int main(void) { int a; a = 0; return 5 / a; }").unwrap();
        assert!(matches!(
            run(&p, &Config::default()),
            Err(RunError::Dynamic(_))
        ));
    }

    #[test]
    fn pointer_difference_and_relational() {
        let out = exec(
            "int main(void) { int a[8]; int *p; int *q;              p = &a[1]; q = &a[6];              if (p >= q) { return 99; }              return q - p; }",
        );
        assert_eq!(out.exit, 5);
    }

    #[test]
    fn cross_object_pointer_difference_is_error() {
        let p = cfront::compile(
            "int a[2]; int b[2];
             int main(void) { int *p; int *q; p = a; q = b; return q - p; }",
        )
        .unwrap();
        assert!(matches!(
            run(&p, &Config::default()),
            Err(RunError::Dynamic(_))
        ));
    }

    #[test]
    fn negative_index_is_error() {
        let p =
            cfront::compile("int a[4]; int main(void) { int i; i = -1; return a[i]; }").unwrap();
        assert!(matches!(
            run(&p, &Config::default()),
            Err(RunError::Dynamic(_))
        ));
    }

    #[test]
    fn deep_recursion_is_bounded() {
        let p = cfront::compile(
            "int down(int n) { if (n == 0) return 0; return down(n - 1); }
             int main(void) { return down(100000); }",
        )
        .unwrap();
        assert!(matches!(
            run(&p, &Config::default()),
            Err(RunError::Dynamic(_))
        ));
    }

    #[test]
    fn float_arithmetic() {
        let out = exec(
            "int main(void) { double x; double y; x = 1.5; y = 2.25;              return (int)((x + y) * 4.0); }",
        );
        assert_eq!(out.exit, 15);
    }

    #[test]
    fn printf_number_formats() {
        let out = exec(
            "int main(void) { printf(\"%d %x %o %c|\", 255, 255, 8, 'A'); \
             printf(\"%%|%s\", \"end\"); return 0; }",
        );
        assert_eq!(out.stdout, "255 ff 10 A|%|end");
    }

    #[test]
    fn enum_constants_run() {
        let out = exec(
            "enum sizes { SMALL = 1, LARGE = 10 };
             int main(void) { int total[LARGE]; int i;
               for (i = 0; i < LARGE; i++) { total[i] = SMALL; }
               return total[3] + LARGE; }",
        );
        assert_eq!(out.exit, 11);
    }

    #[test]
    fn ternary_and_comma() {
        let out = exec(
            "int main(void) { int a; int b; a = 5; \
             b = (a > 3 ? 10 : 20); a = (b += 1, b * 2); return a; }",
        );
        assert_eq!(out.exit, 22);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use exec::FaultKind;

    fn traced(src: &str) -> RunRecord {
        let p = cfront::compile(src).expect("compiles");
        run_traced(&p, &Config::default())
    }

    fn exec(src: &str) -> Outcome {
        let p = cfront::compile(src).expect("compiles");
        run(&p, &Config::default()).expect("runs")
    }

    #[test]
    fn free_then_exit_is_clean() {
        let rec = traced(
            "int main(void) { int *p; p = (int*)malloc(sizeof(int)); \
             *p = 7; free(p); return 0; }",
        );
        assert_eq!(rec.exit, Some(0));
        assert!(rec.fault.is_none());
        assert_eq!(rec.trace.frees.len(), 1, "one executed free site");
    }

    #[test]
    fn free_null_is_noop() {
        let rec = traced("int main(void) { int *p; p = NULL; free(p); return 0; }");
        assert_eq!(rec.exit, Some(0));
        assert!(rec.fault.is_none());
        assert!(rec.trace.frees.is_empty());
    }

    #[test]
    fn use_after_free_faults() {
        let rec = traced(
            "int main(void) { int *p; p = (int*)malloc(sizeof(int)); \
             *p = 7; free(p); return *p; }",
        );
        assert_eq!(rec.exit, None);
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::UseAfterFree);
        // The trace survives the fault: the pre-fault write is present.
        assert!(!rec.trace.writes.is_empty());
    }

    #[test]
    fn write_after_free_faults() {
        let rec = traced(
            "int main(void) { int *p; p = (int*)malloc(sizeof(int)); \
             free(p); *p = 7; return 0; }",
        );
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::UseAfterFree);
    }

    #[test]
    fn double_free_faults() {
        let rec = traced(
            "int main(void) { int *p; int *q; p = (int*)malloc(sizeof(int)); \
             q = p; free(p); free(q); return 0; }",
        );
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::DoubleFree);
        // Both free sites executed and were recorded before the fault.
        assert_eq!(rec.trace.frees.len(), 2);
    }

    #[test]
    fn free_of_local_is_invalid() {
        let rec = traced("int main(void) { int x; free(&x); return 0; }");
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::InvalidFree);
    }

    #[test]
    fn null_deref_classified() {
        let rec = traced("int main(void) { int *p; p = NULL; return *p; }");
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::NullDeref);
    }

    #[test]
    fn uninit_deref_classified() {
        let rec = traced("int main(void) { int *p; return *p; }");
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::UninitDeref);
    }

    #[test]
    fn returned_local_pointer_recorded_as_escape() {
        let rec = traced(
            "int *leak(void) { int x; x = 1; return &x; }\n\
             int main(void) { int *p; p = leak(); return 0; }",
        );
        assert_eq!(rec.exit, Some(0));
        assert_eq!(rec.trace.local_escapes.len(), 1);
    }

    #[test]
    fn stored_local_pointer_recorded_as_escape() {
        let rec = traced(
            "int *g;\n\
             void stash(void) { int x; x = 1; g = &x; }\n\
             int main(void) { stash(); return 0; }",
        );
        assert_eq!(rec.exit, Some(0));
        assert_eq!(rec.trace.local_escapes.len(), 1);
    }

    #[test]
    fn local_to_local_store_is_not_an_escape() {
        let rec = traced("int main(void) { int x; int *p; x = 1; p = &x; return *p; }");
        assert_eq!(rec.exit, Some(1));
        assert!(rec.trace.local_escapes.is_empty());
    }

    #[test]
    fn plain_run_still_reports_dynamic_error() {
        let p = cfront::compile(
            "int main(void) { int *p; p = (int*)malloc(sizeof(int)); \
             free(p); return *p; }",
        )
        .unwrap();
        let err = run(&p, &Config::default()).unwrap_err();
        assert!(matches!(err, RunError::Dynamic(ref m) if m.contains("use after free")));
    }

    // ----- threads ---------------------------------------------------------

    #[test]
    fn spawn_join_runs_child_to_completion() {
        let out = exec(
            "int g;\n\
             void worker(void) { g = 41; }\n\
             int main(void) { g = 1; spawn worker(); join; return g + 1; }",
        );
        assert_eq!(out.exit, 42);
    }

    #[test]
    fn spawned_children_receive_arguments() {
        let out = exec(
            "int a; int b;\n\
             void put(int *dst, int v) { *dst = v; }\n\
             int main(void) { spawn put(&a, 30); spawn put(&b, 12); join; \
             return a + b; }",
        );
        assert_eq!(out.exit, 42);
    }

    #[test]
    fn join_without_spawn_is_a_no_op() {
        let out = exec("int main(void) { join; return 7; }");
        assert_eq!(out.exit, 7);
    }

    #[test]
    fn spawn_loop_reuses_slots_after_join() {
        let out = exec(
            "int g;\n\
             void bump(void) { g = g + 1; }\n\
             int main(void) { int i; g = 0; \
             for (i = 0; i < 20; i = i + 1) { spawn bump(); join; } \
             return g; }",
        );
        assert_eq!(out.exit, 20);
    }

    #[test]
    fn too_many_live_threads_is_a_dynamic_error() {
        let p = cfront::compile(
            "void idle(void) { }\n\
             int main(void) { int i; \
             for (i = 0; i < 9; i = i + 1) { spawn idle(); } join; return 0; }",
        )
        .unwrap();
        let err = run(&p, &Config::default()).unwrap_err();
        assert!(matches!(err, RunError::Dynamic(ref m) if m.contains("too many live threads")));
    }

    #[test]
    fn child_dynamic_error_stops_the_program() {
        let p = cfront::compile(
            "void boom(void) { int *p; p = NULL; *p = 1; }\n\
             int main(void) { spawn boom(); join; return 0; }",
        )
        .unwrap();
        let err = run(&p, &Config::default()).unwrap_err();
        assert!(matches!(err, RunError::Dynamic(ref m) if m.contains("null pointer")));
    }

    #[test]
    fn child_exit_sets_the_program_exit_code() {
        let out = exec(
            "void quit(void) { exit(5); }\n\
             int main(void) { spawn quit(); join; return 0; }",
        );
        assert_eq!(out.exit, 5);
    }

    #[test]
    fn threaded_runs_are_deterministic_per_seed() {
        let p = cfront::compile(
            "int g;\n\
             void a(void) { int i; for (i = 0; i < 50; i = i + 1) { g = g * 3 + 1; } }\n\
             void b(void) { int i; for (i = 0; i < 50; i = i + 1) { g = g * 5 + 2; } }\n\
             int main(void) { g = 1; spawn a(); spawn b(); join; return g % 97; }",
        )
        .unwrap();
        for seed in [0u64, 1, 0xDEAD] {
            let cfg = Config {
                sched_seed: seed,
                ..Config::default()
            };
            let x = run(&p, &cfg).expect("runs");
            let y = run(&p, &cfg).expect("runs");
            assert_eq!(x.exit, y.exit, "seed {seed} nondeterministic");
            assert_eq!(x.steps, y.steps, "seed {seed} step drift");
        }
    }

    #[test]
    fn unsynchronized_global_write_is_a_race() {
        let rec = traced(
            "int g;\n\
             void w(void) { g = 2; }\n\
             int main(void) { spawn w(); g = 1; join; return g; }",
        );
        assert!(
            !rec.trace.races.is_empty(),
            "conflicting writes should race"
        );
    }

    #[test]
    fn joined_child_write_then_main_read_is_not_a_race() {
        let rec = traced(
            "int g;\n\
             void w(void) { g = 2; }\n\
             int main(void) { spawn w(); join; return g; }",
        );
        assert_eq!(rec.exit, Some(2));
        assert!(rec.trace.races.is_empty(), "join orders the accesses");
    }

    #[test]
    fn disjoint_locations_do_not_race() {
        let rec = traced(
            "int a; int b;\n\
             void w(void) { a = 1; }\n\
             int main(void) { spawn w(); b = 2; join; return a + b; }",
        );
        assert_eq!(rec.exit, Some(3));
        assert!(rec.trace.races.is_empty());
    }

    #[test]
    fn explore_races_finds_read_write_race_under_some_schedule() {
        let p = cfront::compile(
            "int g;\n\
             void w(void) { g = 2; }\n\
             int main(void) { int x; spawn w(); x = g; join; return x; }",
        )
        .unwrap();
        let obs = explore_races(&p, &Config::default(), 8);
        assert_eq!(obs.schedules, 8);
        assert!(!obs.pairs.is_empty(), "read/write race should be observed");
    }

    #[test]
    fn explore_races_on_sequential_program_runs_once_and_sees_nothing() {
        let p = cfront::compile("int main(void) { return 0; }").unwrap();
        let obs = explore_races(&p, &Config::default(), 8);
        assert_eq!(obs.schedules, 1);
        assert!(obs.pairs.is_empty());
    }

    #[test]
    fn sequential_behavior_is_identical_with_thread_support() {
        // A representative sequential program must produce the same
        // outcome and step count regardless of the scheduler seed (the
        // thread hooks must be fully inert without `spawn`).
        let p = cfront::compile(
            "int main(void) { int i; int s; s = 0; \
             for (i = 0; i < 100; i = i + 1) { s = s + i; } return s % 251; }",
        )
        .unwrap();
        let base = run(&p, &Config::default()).expect("runs");
        let seeded = run(
            &p,
            &Config {
                sched_seed: 99,
                ..Config::default()
            },
        )
        .expect("runs");
        assert_eq!(base.exit, seeded.exit);
        assert_eq!(base.steps, seeded.steps);
    }
}
