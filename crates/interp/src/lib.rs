//! # interp — a concrete mini-C interpreter and soundness oracle
//!
//! Executes checked mini-C programs deterministically while tracing every
//! memory access, then checks that the `alias` crate's points-to
//! solutions cover every runtime dereference target
//! ([`oracle::check_solution`]). This automates the soundness argument
//! the paper makes informally and backs the property tests over randomly
//! generated programs.
//!
//! ```
//! use interp::exec::{run, Config};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = cfront::compile(
//!     "int main(void) { int a; int *p; p = &a; *p = 41; return a + 1; }",
//! )?;
//! let out = run(&prog, &Config::default())?;
//! assert_eq!(out.exit, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod memory;
pub mod oracle;

pub use exec::{
    run, run_traced, Config, FaultInfo, FaultKind, Outcome, RunError, RunRecord, Trace,
};
pub use oracle::{check_solution, check_solution_dyn, Violation};

#[cfg(test)]
mod tests {
    use super::*;
    use alias::SolverSpec;
    use vdg::build::{lower, BuildOptions};

    fn exec(src: &str) -> Outcome {
        let p = cfront::compile(src).expect("compiles");
        run(&p, &Config::default()).expect("runs")
    }

    fn exec_with_input(src: &str, input: &str) -> Outcome {
        let p = cfront::compile(src).expect("compiles");
        run(
            &p,
            &Config {
                input: input.as_bytes().to_vec(),
                ..Config::default()
            },
        )
        .expect("runs")
    }

    /// Runs the program and checks both CI and CS solutions against the
    /// trace; panics on any violation.
    fn exec_checked(src: &str) -> Outcome {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let ci = SolverSpec::ci().solve_ci(&g);
        let cs = SolverSpec::cs()
            .solve(&g, Some(&ci))
            .expect("cs budget")
            .into_cs()
            .expect("cs result");
        let out = run(&p, &Config::default()).expect("runs");
        let v_ci = check_solution(&p, &g, &ci, &out.trace);
        assert!(v_ci.is_empty(), "CI violations: {v_ci:#?}");
        let v_cs = check_solution(&p, &g, &cs, &out.trace);
        assert!(v_cs.is_empty(), "CS violations: {v_cs:#?}");
        out
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let out = exec(
            "int main(void) { int i; int s; s = 0; \
             for (i = 1; i <= 10; i++) { if (i % 2 == 0) continue; s += i; } \
             return s; }",
        );
        assert_eq!(out.exit, 25);
    }

    #[test]
    fn switch_and_loops() {
        let out = exec(
            "int classify(int c) { switch (c) { case 0: return 100; \
             case 1: case 2: return 200; default: return 300; } }\n\
             int main(void) { return classify(0) + classify(1) + classify(2) + classify(7); }",
        );
        assert_eq!(out.exit, 100 + 200 + 200 + 300);
    }

    #[test]
    fn pointers_and_out_params() {
        let out = exec_checked(
            "void swap(int *a, int *b) { int t; t = *a; *a = *b; *b = t; }\n\
             int main(void) { int x; int y; x = 3; y = 4; swap(&x, &y); \
             return x * 10 + y; }",
        );
        assert_eq!(out.exit, 43);
    }

    #[test]
    fn linked_list_program() {
        let out = exec_checked(
            "struct node { int v; struct node *next; };\n\
             struct node *cons(int v, struct node *t) {\n\
               struct node *n; n = (struct node*)malloc(sizeof(struct node));\n\
               n->v = v; n->next = t; return n; }\n\
             int sum(struct node *l) { int s; s = 0;\n\
               while (l != NULL) { s += l->v; l = l->next; } return s; }\n\
             int main(void) { return sum(cons(1, cons(2, cons(3, NULL)))); }",
        );
        assert_eq!(out.exit, 6);
    }

    #[test]
    fn arrays_and_pointer_arithmetic() {
        let out = exec_checked(
            "int sum(int *p, int n) { int s; int i; s = 0; \
             for (i = 0; i < n; i++) s += p[i]; return s; }\n\
             int main(void) { int a[5]; int i; \
             for (i = 0; i < 5; i++) a[i] = i + 1; \
             return sum(a, 5) + sum(a + 2, 2) + *(a + 4); }",
        );
        assert_eq!(out.exit, 15 + 7 + 5);
    }

    #[test]
    fn strings_and_output() {
        let out = exec(
            "int main(void) { char buf[32]; \
             strcpy(buf, \"hello\"); strcat(buf, \" world\"); \
             printf(\"%s! %d\\n\", buf, strlen(buf)); \
             return strcmp(buf, \"hello world\"); }",
        );
        assert_eq!(out.exit, 0);
        assert_eq!(out.stdout, "hello world! 11\n");
    }

    #[test]
    fn function_pointers() {
        let out = exec_checked(
            "int add(int a, int b) { return a + b; }\n\
             int mul(int a, int b) { return a * b; }\n\
             int apply(int (*op)(int, int), int x, int y) { return op(x, y); }\n\
             int main(void) { int (*f)(int, int); f = add; \
             return apply(f, 2, 3) + apply(mul, 2, 3); }",
        );
        assert_eq!(out.exit, 11);
    }

    #[test]
    fn struct_copies() {
        let out = exec_checked(
            "struct pt { int x; int y; };\n\
             int main(void) { struct pt a; struct pt b; \
             a.x = 1; a.y = 2; b = a; b.x = 10; \
             return a.x + b.x + b.y; }",
        );
        assert_eq!(out.exit, 13);
    }

    #[test]
    fn unions_share_storage_at_runtime() {
        let out = exec(
            "union u { int a; int b; };\n\
             int main(void) { union u v; v.a = 7; return v.b; }",
        );
        assert_eq!(out.exit, 7);
    }

    #[test]
    fn getchar_reads_configured_input() {
        let out = exec_with_input(
            "int main(void) { int c; int n; n = 0; \
             while ((c = getchar()) != -1) { n = n * 10 + (c - '0'); } \
             return n; }",
            "123",
        );
        assert_eq!(out.exit, 123);
    }

    #[test]
    fn recursion() {
        let out = exec_checked(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
             int main(void) { return fib(10); }",
        );
        assert_eq!(out.exit, 55);
    }

    #[test]
    fn heap_buffers_and_memset() {
        let out = exec_checked(
            "int main(void) { int *buf; int i; int s; \
             buf = (int*)malloc(10 * sizeof(int)); \
             for (i = 0; i < 10; i++) buf[i] = i; \
             s = 0; for (i = 0; i < 10; i++) s += buf[i]; \
             free(buf); return s; }",
        );
        assert_eq!(out.exit, 45);
    }

    #[test]
    fn exit_builtin_stops_program() {
        let out = exec("int main(void) { exit(9); return 1; }");
        assert_eq!(out.exit, 9);
    }

    #[test]
    fn null_deref_is_dynamic_error() {
        let p = cfront::compile("int main(void) { int *p; p = NULL; return *p; }").unwrap();
        let err = run(&p, &Config::default()).unwrap_err();
        assert!(matches!(err, RunError::Dynamic(_)));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let p = cfront::compile("int main(void) { for (;;) {} return 0; }").unwrap();
        let err = run(
            &p,
            &Config {
                max_steps: 10_000,
                ..Config::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, RunError::StepLimit);
    }

    #[test]
    fn trace_records_abstract_locations() {
        let p =
            cfront::compile("int g; int main(void) { int *p; p = &g; *p = 5; return g; }").unwrap();
        let out = run(&p, &Config::default()).unwrap();
        // Some write must target the abstraction of g.
        let hit =
            out.trace.writes.values().flatten().any(|a| {
                matches!(a.origin, crate::memory::Origin::Global(0)) && a.steps.is_empty()
            });
        assert!(hit);
    }

    #[test]
    fn oracle_catches_an_unsound_solution() {
        // An empty "solution" must be flagged when the program writes
        // through a pointer.
        use alias::stats::PointsToSolution;
        struct EmptySol(alias::PathTable);
        impl PointsToSolution for EmptySol {
            fn pairs_at(&self, _: vdg::graph::OutputId) -> &[alias::Pair] {
                &[]
            }
            fn path_table(&self) -> &alias::PathTable {
                &self.0
            }
        }
        let p =
            cfront::compile("int g; int main(void) { int *p; p = &g; *p = 5; return g; }").unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let out = run(&p, &Config::default()).unwrap();
        let sol = EmptySol(alias::PathTable::for_graph(&g));
        let violations = check_solution(&p, &g, &sol, &out.trace);
        assert!(!violations.is_empty());
    }

    #[test]
    fn memcpy_copies_structs() {
        let out = exec_checked(
            "struct s { int a; int *p; };\n\
             int g;\n\
             int main(void) { struct s x; struct s y; \
             x.a = 5; x.p = &g; g = 7; \
             memcpy(&y, &x, sizeof(struct s)); \
             return y.a + *(y.p); }",
        );
        assert_eq!(out.exit, 12);
    }

    #[test]
    fn strdup_and_strchr() {
        let out = exec(
            "int main(void) { char *s; char *t; \
             s = strdup(\"abcdef\"); t = strchr(s, 'c'); \
             if (t == NULL) return 99; return t - s; }",
        );
        assert_eq!(out.exit, 2);
    }

    #[test]
    fn sprintf_formats_into_buffer() {
        let out = exec(
            "int main(void) { char buf[64]; \
             sprintf(buf, \"%d-%s\", 42, \"x\"); \
             return strlen(buf); }",
        );
        assert_eq!(out.exit, 4);
    }

    #[test]
    fn deterministic_rand() {
        let a = exec("int main(void) { srand(7); return rand() % 100; }");
        let b = exec("int main(void) { srand(7); return rand() % 100; }");
        assert_eq!(a.exit, b.exit);
    }

    #[test]
    fn global_initializers_run() {
        let out = exec_checked(
            "int x; int *gp = &x; int table[3] = {10, 20, 30};\n\
             int main(void) { *gp = table[1]; return x; }",
        );
        assert_eq!(out.exit, 20);
    }

    #[test]
    fn do_while_and_compound_assignment() {
        let out = exec(
            "int main(void) { int n; int s; n = 5; s = 1;              do { s *= 2; n -= 1; } while (n > 0); return s; }",
        );
        assert_eq!(out.exit, 32);
    }

    #[test]
    fn two_dimensional_arrays() {
        let out = exec_checked(
            "int grid[3][4];
             int main(void) { int i; int j; int s; s = 0;
               for (i = 0; i < 3; i++) { for (j = 0; j < 4; j++) {                  grid[i][j] = i * 4 + j; } }
               for (i = 0; i < 3; i++) { s += grid[i][i]; }
               return s; }",
        );
        assert_eq!(out.exit, 5 + 10);
    }

    #[test]
    fn pointer_into_struct_field() {
        let out = exec_checked(
            "struct s { int a; int b; };
             int main(void) { struct s v; int *p; v.a = 1; v.b = 2;              p = &v.b; *p = 9; return v.a + v.b; }",
        );
        assert_eq!(out.exit, 10);
    }

    #[test]
    fn array_of_structs_with_pointers() {
        let out = exec_checked(
            "struct cell { int v; int *link; };
             struct cell cells[3];
             int shared;
             int main(void) { int i; int s; shared = 7; s = 0;
               for (i = 0; i < 3; i++) { cells[i].v = i; cells[i].link = &shared; }
               for (i = 0; i < 3; i++) { s += cells[i].v + *(cells[i].link); }
               return s; }",
        );
        assert_eq!(out.exit, 1 + 2 + 21);
    }

    #[test]
    fn division_by_zero_is_dynamic_error() {
        let p = cfront::compile("int main(void) { int a; a = 0; return 5 / a; }").unwrap();
        assert!(matches!(
            run(&p, &Config::default()),
            Err(RunError::Dynamic(_))
        ));
    }

    #[test]
    fn pointer_difference_and_relational() {
        let out = exec(
            "int main(void) { int a[8]; int *p; int *q;              p = &a[1]; q = &a[6];              if (p >= q) { return 99; }              return q - p; }",
        );
        assert_eq!(out.exit, 5);
    }

    #[test]
    fn cross_object_pointer_difference_is_error() {
        let p = cfront::compile(
            "int a[2]; int b[2];
             int main(void) { int *p; int *q; p = a; q = b; return q - p; }",
        )
        .unwrap();
        assert!(matches!(
            run(&p, &Config::default()),
            Err(RunError::Dynamic(_))
        ));
    }

    #[test]
    fn negative_index_is_error() {
        let p =
            cfront::compile("int a[4]; int main(void) { int i; i = -1; return a[i]; }").unwrap();
        assert!(matches!(
            run(&p, &Config::default()),
            Err(RunError::Dynamic(_))
        ));
    }

    #[test]
    fn deep_recursion_is_bounded() {
        let p = cfront::compile(
            "int down(int n) { if (n == 0) return 0; return down(n - 1); }
             int main(void) { return down(100000); }",
        )
        .unwrap();
        assert!(matches!(
            run(&p, &Config::default()),
            Err(RunError::Dynamic(_))
        ));
    }

    #[test]
    fn float_arithmetic() {
        let out = exec(
            "int main(void) { double x; double y; x = 1.5; y = 2.25;              return (int)((x + y) * 4.0); }",
        );
        assert_eq!(out.exit, 15);
    }

    #[test]
    fn printf_number_formats() {
        let out = exec(
            "int main(void) { printf(\"%d %x %o %c|\", 255, 255, 8, 'A'); \
             printf(\"%%|%s\", \"end\"); return 0; }",
        );
        assert_eq!(out.stdout, "255 ff 10 A|%|end");
    }

    #[test]
    fn enum_constants_run() {
        let out = exec(
            "enum sizes { SMALL = 1, LARGE = 10 };
             int main(void) { int total[LARGE]; int i;
               for (i = 0; i < LARGE; i++) { total[i] = SMALL; }
               return total[3] + LARGE; }",
        );
        assert_eq!(out.exit, 11);
    }

    #[test]
    fn ternary_and_comma() {
        let out = exec(
            "int main(void) { int a; int b; a = 5; \
             b = (a > 3 ? 10 : 20); a = (b += 1, b * 2); return a; }",
        );
        assert_eq!(out.exit, 22);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use exec::FaultKind;

    fn traced(src: &str) -> RunRecord {
        let p = cfront::compile(src).expect("compiles");
        run_traced(&p, &Config::default())
    }

    #[test]
    fn free_then_exit_is_clean() {
        let rec = traced(
            "int main(void) { int *p; p = (int*)malloc(sizeof(int)); \
             *p = 7; free(p); return 0; }",
        );
        assert_eq!(rec.exit, Some(0));
        assert!(rec.fault.is_none());
        assert_eq!(rec.trace.frees.len(), 1, "one executed free site");
    }

    #[test]
    fn free_null_is_noop() {
        let rec = traced("int main(void) { int *p; p = NULL; free(p); return 0; }");
        assert_eq!(rec.exit, Some(0));
        assert!(rec.fault.is_none());
        assert!(rec.trace.frees.is_empty());
    }

    #[test]
    fn use_after_free_faults() {
        let rec = traced(
            "int main(void) { int *p; p = (int*)malloc(sizeof(int)); \
             *p = 7; free(p); return *p; }",
        );
        assert_eq!(rec.exit, None);
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::UseAfterFree);
        // The trace survives the fault: the pre-fault write is present.
        assert!(!rec.trace.writes.is_empty());
    }

    #[test]
    fn write_after_free_faults() {
        let rec = traced(
            "int main(void) { int *p; p = (int*)malloc(sizeof(int)); \
             free(p); *p = 7; return 0; }",
        );
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::UseAfterFree);
    }

    #[test]
    fn double_free_faults() {
        let rec = traced(
            "int main(void) { int *p; int *q; p = (int*)malloc(sizeof(int)); \
             q = p; free(p); free(q); return 0; }",
        );
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::DoubleFree);
        // Both free sites executed and were recorded before the fault.
        assert_eq!(rec.trace.frees.len(), 2);
    }

    #[test]
    fn free_of_local_is_invalid() {
        let rec = traced("int main(void) { int x; free(&x); return 0; }");
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::InvalidFree);
    }

    #[test]
    fn null_deref_classified() {
        let rec = traced("int main(void) { int *p; p = NULL; return *p; }");
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::NullDeref);
    }

    #[test]
    fn uninit_deref_classified() {
        let rec = traced("int main(void) { int *p; return *p; }");
        let f = rec.fault.expect("classified fault");
        assert_eq!(f.kind, FaultKind::UninitDeref);
    }

    #[test]
    fn returned_local_pointer_recorded_as_escape() {
        let rec = traced(
            "int *leak(void) { int x; x = 1; return &x; }\n\
             int main(void) { int *p; p = leak(); return 0; }",
        );
        assert_eq!(rec.exit, Some(0));
        assert_eq!(rec.trace.local_escapes.len(), 1);
    }

    #[test]
    fn stored_local_pointer_recorded_as_escape() {
        let rec = traced(
            "int *g;\n\
             void stash(void) { int x; x = 1; g = &x; }\n\
             int main(void) { stash(); return 0; }",
        );
        assert_eq!(rec.exit, Some(0));
        assert_eq!(rec.trace.local_escapes.len(), 1);
    }

    #[test]
    fn local_to_local_store_is_not_an_escape() {
        let rec = traced("int main(void) { int x; int *p; x = 1; p = &x; return *p; }");
        assert_eq!(rec.exit, Some(1));
        assert!(rec.trace.local_escapes.is_empty());
    }

    #[test]
    fn plain_run_still_reports_dynamic_error() {
        let p = cfront::compile(
            "int main(void) { int *p; p = (int*)malloc(sizeof(int)); \
             free(p); return *p; }",
        )
        .unwrap();
        let err = run(&p, &Config::default()).unwrap_err();
        assert!(matches!(err, RunError::Dynamic(ref m) if m.contains("use after free")));
    }
}
