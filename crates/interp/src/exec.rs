//! A concrete interpreter for checked mini-C programs.
//!
//! Besides producing output and an exit code, the interpreter traces the
//! concrete location touched by every memory read and write, keyed by the
//! AST expression performing the access. The `oracle` module compares
//! those traces against the points-to analyses: every runtime dereference
//! target must be covered by the analysis' prediction at the matching VDG
//! node — an automated version of the soundness the paper argues
//! informally.

use crate::memory::{AbsLoc, CStep, Loc, Memory, Origin, Value};
use cfront::ast::*;
use cfront::types::{TypeKind, TypeTable};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::{Condvar, Mutex};

/// Interpreter limits and inputs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum evaluation steps before aborting.
    pub max_steps: u64,
    /// Bytes served to `getchar()`.
    pub input: Vec<u8>,
    /// Thread-interleaving seed for programs that `spawn`: 0 selects the
    /// deterministic round-robin schedule, any other value drives seeded
    /// preemption (random quanta and successor choice). Sequential
    /// programs ignore it entirely.
    pub sched_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_steps: 10_000_000,
            input: Vec::new(),
            sched_seed: 0,
        }
    }
}

/// Where the interpreter stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A dynamic error (null deref, division by zero, bad pointer math).
    Dynamic(String),
    /// The step budget ran out (probable infinite loop).
    StepLimit,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Dynamic(m) => write!(f, "runtime error: {m}"),
            RunError::StepLimit => write!(f, "interpreter step limit exceeded"),
        }
    }
}

impl std::error::Error for RunError {}

/// The class of memory-safety fault an abnormal run tripped on. The
/// checker harness matches these against static diagnostics to label
/// them true or false positives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An access through a pointer into a deallocated heap object.
    UseAfterFree,
    /// `free` of an already-freed heap object.
    DoubleFree,
    /// `free` of something that is not a live heap allocation.
    InvalidFree,
    /// Dereference of a null pointer.
    NullDeref,
    /// Dereference of an uninitialized pointer.
    UninitDeref,
}

/// A classified runtime fault with the expression that tripped it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInfo {
    /// What went wrong.
    pub kind: FaultKind,
    /// The AST expression performing the faulting access or `free`.
    pub site: ExprId,
    /// Human-readable description (mirrors the [`RunError::Dynamic`] text).
    pub message: String,
}

/// Memory accesses observed at runtime, abstracted and keyed by the AST
/// expression that performed them.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Abstract locations read, per reading expression.
    pub reads: HashMap<ExprId, HashSet<AbsLoc>>,
    /// Abstract locations written, per writing expression.
    pub writes: HashMap<ExprId, HashSet<AbsLoc>>,
    /// Abstract locations deallocated, per `free(...)` call expression.
    /// Recorded before the double-free check, so the key set is exactly
    /// the executed free sites.
    pub frees: HashMap<ExprId, HashSet<AbsLoc>>,
    /// Expressions observed making a pointer to a current-frame local
    /// escape: `return` value expressions whose value points into the
    /// returning frame, and writes that store such a pointer outside
    /// the frame.
    pub local_escapes: HashSet<ExprId>,
    /// Write sites whose stored value was later read (order-aware
    /// runtime def/use evidence; the dead-store labeler's ground truth).
    pub observed_writes: HashSet<ExprId>,
    /// Read sites that observed a location no traced write had defined
    /// yet — runtime evidence for the uninitialized-read checker.
    pub uninit_reads: HashSet<ExprId>,
    /// Value expressions of executed `return` statements, whether or not
    /// the value escaped (reachability evidence for return-site
    /// diagnostics).
    pub returns: HashSet<ExprId>,
    /// Data races observed under this run's thread schedule: normalized
    /// `(min, max)` pairs of access-site expressions that touched the
    /// same concrete location from concurrent threads, at least one of
    /// them writing. Always empty for sequential programs.
    pub races: BTreeSet<(ExprId, ExprId)>,
}

/// Result of a complete run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// `main`'s return value (or the `exit()` argument).
    pub exit: i64,
    /// Captured `printf`/`puts`/`putchar` output.
    pub stdout: String,
    /// Evaluation steps consumed.
    pub steps: u64,
    /// The memory-access trace for the soundness oracle.
    pub trace: Trace,
}

/// Runs `main()` of a checked program.
///
/// # Errors
///
/// Returns [`RunError`] for dynamic errors or step-budget exhaustion.
pub fn run(prog: &Program, cfg: &Config) -> Result<Outcome, RunError> {
    let (mut w, r) = run_raw(prog, cfg);
    match r {
        Ok(exit) | Err(StopSig::Exit(exit)) => Ok(Outcome {
            exit,
            stdout: std::mem::take(&mut w.out),
            steps: w.steps,
            trace: std::mem::take(&mut w.trace),
        }),
        Err(StopSig::Error(m)) => Err(RunError::Dynamic(m)),
        Err(StopSig::StepLimit) => Err(RunError::StepLimit),
    }
}

/// Result of a run that keeps the trace (and any classified fault) even
/// when the program stops on a dynamic error — what the checker harness
/// needs to label diagnostics against the runtime ground truth.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// `main`'s return value, if the program terminated normally.
    pub exit: Option<i64>,
    /// Captured `printf`/`puts`/`putchar` output.
    pub stdout: String,
    /// Evaluation steps consumed.
    pub steps: u64,
    /// How the run stopped abnormally, if it did.
    pub error: Option<RunError>,
    /// The first classified memory-safety fault, if any.
    pub fault: Option<FaultInfo>,
    /// The memory-access trace up to the stop point.
    pub trace: Trace,
}

/// Runs `main()` like [`run`] but never discards the trace: a faulting
/// program yields everything it touched before the fault plus the fault
/// classification itself.
pub fn run_traced(prog: &Program, cfg: &Config) -> RunRecord {
    let (mut w, r) = run_raw(prog, cfg);
    let (exit, error) = match r {
        Ok(exit) | Err(StopSig::Exit(exit)) => (Some(exit), None),
        Err(StopSig::Error(m)) => (None, Some(RunError::Dynamic(m))),
        Err(StopSig::StepLimit) => (None, Some(RunError::StepLimit)),
    };
    RunRecord {
        exit,
        stdout: std::mem::take(&mut w.out),
        steps: w.steps,
        error,
        fault: w.fault.take(),
        trace: std::mem::take(&mut w.trace),
    }
}

/// Union of race observations across several bounded interleavings.
#[derive(Debug, Clone, Default)]
pub struct RaceObs {
    /// Normalized `(min, max)` racing site pairs observed under any
    /// explored schedule.
    pub pairs: BTreeSet<(ExprId, ExprId)>,
    /// Access and free sites that executed under at least one schedule
    /// (reachability evidence for diagnostic labeling).
    pub executed: BTreeSet<ExprId>,
    /// How many schedules ran.
    pub schedules: usize,
}

/// Runs `prog` under up to `schedules` distinct thread interleavings —
/// the deterministic round-robin schedule first, then seeded preemption
/// — and unions the observed data races and executed sites. Sequential
/// programs get a single run.
pub fn explore_races(prog: &Program, cfg: &Config, schedules: usize) -> RaceObs {
    let n = if prog.uses_threads() {
        schedules.max(1)
    } else {
        1
    };
    let mut obs = RaceObs::default();
    for k in 0..n {
        let mut c = cfg.clone();
        c.sched_seed = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let rec = run_traced(prog, &c);
        obs.pairs.extend(rec.trace.races.iter().copied());
        obs.executed.extend(rec.trace.reads.keys().copied());
        obs.executed.extend(rec.trace.writes.keys().copied());
        obs.executed.extend(rec.trace.frees.keys().copied());
        obs.schedules += 1;
    }
    obs
}

enum Stop {
    Error(String),
    Exit(i64),
    StepLimit,
}

impl From<String> for Stop {
    fn from(m: String) -> Stop {
        Stop::Error(m)
    }
}

/// A cloneable program-wide stop reason, set once in the shared
/// [`World`] by whichever thread stops first and propagated to every
/// other thread at its next scheduling point.
#[derive(Debug, Clone)]
enum StopSig {
    Error(String),
    Exit(i64),
    StepLimit,
}

impl From<Stop> for StopSig {
    fn from(s: Stop) -> StopSig {
        match s {
            Stop::Error(m) => StopSig::Error(m),
            Stop::Exit(v) => StopSig::Exit(v),
            Stop::StepLimit => StopSig::StepLimit,
        }
    }
}

impl From<StopSig> for Stop {
    fn from(s: StopSig) -> Stop {
        match s {
            StopSig::Error(m) => Stop::Error(m),
            StopSig::Exit(v) => Stop::Exit(v),
            StopSig::StepLimit => Stop::StepLimit,
        }
    }
}

type R<T> = Result<T, Stop>;

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

struct Frame {
    locals: Vec<u32>,
}

/// How many child threads can be live at once. Spawning a ninth before a
/// `join` reaps the pool is a dynamic error.
const MAX_CHILDREN: usize = 8;

/// Steps between voluntary preemptions under the round-robin schedule.
const RR_QUANTUM: u64 = 7;

/// One child-thread slot of the scheduler.
#[derive(Debug, Clone, Copy, Default)]
struct SlotState {
    live: bool,
    finished: bool,
    /// Index into [`World::instances`] of the occupying spawn instance.
    inst: u32,
}

/// A spawn instance's interval on the logical spawn/join clock.
#[derive(Debug, Clone, Copy)]
struct Inst {
    spawn_seq: u64,
    join_seq: Option<u64>,
}

/// One recorded access for race detection.
#[derive(Debug, Clone, Copy)]
struct Access {
    inst: u32,
    /// Logical clock value ([`World::seq`]) at access time.
    at: u64,
    site: ExprId,
}

/// Access history of one concrete location.
#[derive(Debug, Clone, Default)]
struct LocAccesses {
    last_write: Option<Access>,
    reads: Vec<Access>,
}

/// All interpreter state shared between threads. Exactly one thread owns
/// the `World` at a time (lockstep execution): it runs until it yields,
/// then hands the whole value to the next thread through the [`Baton`].
/// Sequential programs keep it in their single [`Exec`] with zero
/// synchronization.
struct World {
    mem: Memory,
    globals: Vec<u32>,
    trace: Trace,
    out: String,
    steps: u64,
    input_pos: usize,
    rng: u64,
    fault: Option<FaultInfo>,
    /// Last traced write site per abstract location, for runtime
    /// def/use ([`Trace::observed_writes`] / [`Trace::uninit_reads`]).
    last_writer: HashMap<AbsLoc, ExprId>,
    /// Whether the program can spawn at all; `false` keeps every
    /// threading hook inert.
    threaded: bool,
    /// First stop reason program-wide; later threads observe it at their
    /// next tick and unwind.
    stop: Option<StopSig>,
    sched_seed: u64,
    /// Xorshift state for seeded preemption.
    srng: u64,
    /// Steps left before the current thread must offer a yield.
    quantum_left: u64,
    /// Main is parked at a `join` barrier.
    main_blocked: bool,
    slots: Vec<SlotState>,
    /// Logical clock, bumped at each spawn and join barrier.
    seq: u64,
    /// Spawn instances; index 0 is main.
    instances: Vec<Inst>,
    /// Per-concrete-location access history for race detection.
    access: HashMap<Loc, LocAccesses>,
}

impl Default for World {
    fn default() -> Self {
        World {
            mem: Memory::new(),
            globals: Vec::new(),
            trace: Trace::default(),
            out: String::new(),
            steps: 0,
            input_pos: 0,
            rng: 0x2545F4914F6CDD1D,
            fault: None,
            last_writer: HashMap::new(),
            threaded: false,
            stop: None,
            sched_seed: 0,
            srng: 1,
            quantum_left: RR_QUANTUM,
            main_blocked: false,
            slots: Vec::new(),
            seq: 0,
            instances: Vec::new(),
            access: HashMap::new(),
        }
    }
}

impl World {
    fn new(cfg: &Config, threaded: bool) -> Self {
        World {
            threaded,
            sched_seed: cfg.sched_seed,
            srng: cfg.sched_seed | 1,
            slots: vec![SlotState::default(); MAX_CHILDREN],
            instances: vec![Inst {
                spawn_seq: 0,
                join_seq: None,
            }],
            ..World::default()
        }
    }

    fn next_srng(&mut self) -> u64 {
        let mut x = self.srng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.srng = x;
        x
    }

    /// Picks the thread to run next among main (unless blocked) and the
    /// unfinished live children, resetting the quantum: round-robin with
    /// a fixed quantum for seed 0, seeded choice and quantum otherwise.
    /// Falls back to main when nothing is runnable (the `join` barrier
    /// and stop-propagation cases).
    fn pick_next(&mut self, me: usize, exclude_me: bool) -> usize {
        let mut cands: Vec<usize> = Vec::with_capacity(MAX_CHILDREN + 1);
        if !self.main_blocked {
            cands.push(0);
        }
        for (i, s) in self.slots.iter().enumerate() {
            if s.live && !s.finished {
                cands.push(i + 1);
            }
        }
        if exclude_me {
            cands.retain(|&c| c != me);
        }
        if cands.is_empty() {
            return 0;
        }
        if self.sched_seed == 0 {
            self.quantum_left = RR_QUANTUM;
            *cands.iter().find(|&&c| c > me).unwrap_or(&cands[0])
        } else {
            let r = self.next_srng();
            self.quantum_left = 1 + (r >> 17) % 12;
            cands[(r % cands.len() as u64) as usize]
        }
    }
}

/// A queued child-thread body: `func(args)` running as spawn instance
/// `inst`.
struct Task {
    func: u32,
    args: Vec<Value>,
    inst: u32,
}

#[derive(Default)]
struct BatonState {
    /// The world, present while parked or in transit between threads.
    world: Option<World>,
    /// Which thread should take it next.
    current: usize,
    shutdown: bool,
    /// Pending task per child thread id (index 0 unused).
    tasks: Vec<Option<Task>>,
}

/// The lockstep hand-off point: a mailbox holding the [`World`] while no
/// thread runs, plus task dispatch and shutdown for the worker pool.
struct Baton {
    state: Mutex<BatonState>,
    cv: Condvar,
}

impl Baton {
    fn new(children: usize) -> Self {
        Baton {
            state: Mutex::new(BatonState {
                tasks: (0..=children).map(|_| None).collect(),
                ..BatonState::default()
            }),
            cv: Condvar::new(),
        }
    }

    fn pass(&self, w: World, next: usize) {
        let mut st = self.state.lock().unwrap();
        st.world = Some(w);
        st.current = next;
        self.cv.notify_all();
    }

    /// Blocks until the world is handed to `me`; `None` on shutdown.
    fn take(&self, me: usize) -> Option<World> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutdown {
                return None;
            }
            if st.current == me && st.world.is_some() {
                return st.world.take();
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn deposit(&self, thread: usize, t: Task) {
        let mut st = self.state.lock().unwrap();
        st.tasks[thread] = Some(t);
        self.cv.notify_all();
    }

    /// Blocks until a task is queued for `me`; `None` on shutdown.
    fn wait_task(&self, me: usize) -> Option<Task> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutdown {
                return None;
            }
            if let Some(t) = st.tasks[me].take() {
                return Some(t);
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn shutdown_all(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        self.cv.notify_all();
    }
}

fn fold(r: R<i64>) -> Result<i64, StopSig> {
    match r {
        Ok(v) | Err(Stop::Exit(v)) => Ok(v),
        Err(Stop::Error(m)) => Err(StopSig::Error(m)),
        Err(Stop::StepLimit) => Err(StopSig::StepLimit),
    }
}

/// Stack size for interpreter threads. Each interpreted frame consumes
/// several host frames (large ones in unoptimized builds), so the
/// 128-frame depth limit needs far more room than a default test-thread
/// stack; the reservation is virtual and committed lazily.
const INTERP_STACK: usize = 16 * 1024 * 1024;

/// Runs the program to completion and returns the final [`World`] plus
/// the folded outcome. The interpreter always runs on a dedicated
/// thread with a known-large stack; threaded programs additionally get
/// a scoped worker pool driven through the [`Baton`].
fn run_raw(prog: &Program, cfg: &Config) -> (World, Result<i64, StopSig>) {
    let threaded = prog.uses_threads();
    let world = World::new(cfg, threaded);
    let baton = Baton::new(MAX_CHILDREN);
    std::thread::scope(|s| {
        if threaded {
            for i in 1..=MAX_CHILDREN {
                let b = &baton;
                std::thread::Builder::new()
                    .stack_size(INTERP_STACK)
                    .spawn_scoped(s, move || worker_loop(prog, cfg, b, i))
                    .expect("spawn interpreter worker");
            }
        }
        let bref = &baton;
        let main = std::thread::Builder::new()
            .stack_size(INTERP_STACK)
            .spawn_scoped(s, move || {
                let mut x = Exec {
                    prog,
                    cfg,
                    me: 0,
                    instance: 0,
                    baton: if threaded { Some(bref) } else { None },
                    holds: true,
                    w: world,
                    frames: Vec::new(),
                };
                let r = x.run_program();
                let sig = fold(r);
                // Lockstep hand-off means main owns the world again once
                // it unwinds. Record why the program stopped, then
                // release the still-parked workers so the scope closes.
                match &sig {
                    Ok(v) => {
                        x.w.stop.get_or_insert(StopSig::Exit(*v));
                    }
                    Err(e) => {
                        x.w.stop.get_or_insert(e.clone());
                    }
                }
                bref.shutdown_all();
                (std::mem::take(&mut x.w), sig)
            })
            .expect("spawn interpreter main thread");
        main.join().expect("interpreter main thread panicked")
    })
}

/// Body of one pooled worker thread: wait for a task, wait for the
/// baton, interpret the spawned call, then mark the slot finished and
/// pass the world on. Exits on shutdown.
fn worker_loop(prog: &Program, cfg: &Config, baton: &Baton, me: usize) {
    while let Some(task) = baton.wait_task(me) {
        let mut x = Exec {
            prog,
            cfg,
            me,
            instance: task.inst,
            baton: Some(baton),
            holds: false,
            w: World::default(),
            frames: Vec::new(),
        };
        if x.take_world().is_err() {
            return;
        }
        let r = x.call_user(task.func, task.args);
        if !x.holds {
            // Unwound through a failed take (shutdown mid-wait): there
            // is no world to hand back.
            return;
        }
        if let Err(stop) = r {
            let sig = StopSig::from(stop);
            x.w.stop.get_or_insert(sig);
        }
        x.w.slots[me - 1].finished = true;
        let next = x.w.pick_next(me, true);
        x.pass_to(next);
    }
}

struct Exec<'p> {
    prog: &'p Program,
    cfg: &'p Config,
    /// Thread id: 0 is main, `i + 1` runs child slot `i`.
    me: usize,
    /// Spawn-instance id for race ordering (0 = main).
    instance: u32,
    /// Hand-off point; `None` for sequential runs.
    baton: Option<&'p Baton>,
    /// Whether this thread currently owns `w` (the execution token).
    /// While parked, `w` is a dummy default value.
    holds: bool,
    w: World,
    frames: Vec<Frame>,
}

impl<'p> Exec<'p> {
    /// Records the first memory-safety fault and returns the matching
    /// dynamic-error stop.
    fn fault(&mut self, kind: FaultKind, site: ExprId, msg: &str) -> Stop {
        if self.w.fault.is_none() {
            self.w.fault = Some(FaultInfo {
                kind,
                site,
                message: msg.to_string(),
            });
        }
        Stop::Error(msg.to_string())
    }

    fn types(&self) -> &TypeTable {
        &self.prog.types
    }

    fn tick(&mut self) -> R<()> {
        self.w.steps += 1;
        if self.w.steps > self.cfg.max_steps {
            if self.w.threaded {
                self.w.stop.get_or_insert(StopSig::StepLimit);
            }
            return Err(Stop::StepLimit);
        }
        if self.w.threaded {
            if let Some(s) = &self.w.stop {
                return Err(s.clone().into());
            }
            if self.w.quantum_left == 0 {
                self.yield_baton()?;
            } else {
                self.w.quantum_left -= 1;
            }
        }
        Ok(())
    }

    // ----- thread scheduling ----------------------------------------------

    /// Hands the world to `next` and parks until it comes back.
    fn pass_to(&mut self, next: usize) {
        let w = std::mem::take(&mut self.w);
        self.holds = false;
        self.baton.expect("threaded run").pass(w, next);
    }

    fn take_world(&mut self) -> R<()> {
        match self.baton.expect("threaded run").take(self.me) {
            Some(w) => {
                self.w = w;
                self.holds = true;
                Ok(())
            }
            None => Err(Stop::Error("interpreter shut down".into())),
        }
    }

    /// Quantum expiry: offer the world to the scheduler's next pick and
    /// wait for our turn again.
    fn yield_baton(&mut self) -> R<()> {
        let next = self.w.pick_next(self.me, false);
        if next != self.me {
            self.pass_to(next);
            self.take_world()?;
        }
        if let Some(s) = &self.w.stop {
            return Err(s.clone().into());
        }
        Ok(())
    }

    /// `spawn f(args)`: evaluate callee and arguments in the parent,
    /// claim a free slot, open a new spawn instance on the logical
    /// clock, and queue the task for that slot's worker.
    fn exec_spawn(&mut self, call: ExprId) -> R<()> {
        let ExprKind::Call { callee, args } = self.prog.exprs.get(call).kind.clone() else {
            return Err(Stop::Error("spawn of a non-call expression".into()));
        };
        let Value::Func(f) = self.eval(callee)? else {
            return Err(Stop::Error("spawned callee is not a function".into()));
        };
        let mut argv = Vec::with_capacity(args.len());
        for &a in &args {
            argv.push(self.eval(a)?);
        }
        let Some(baton) = self.baton else {
            return Err(Stop::Error("spawn without a thread pool".into()));
        };
        let Some(slot) = self.w.slots.iter().position(|s| !s.live) else {
            return Err(Stop::Error(format!(
                "too many live threads (limit {MAX_CHILDREN})"
            )));
        };
        self.w.seq += 1;
        let inst = self.w.instances.len() as u32;
        self.w.instances.push(Inst {
            spawn_seq: self.w.seq,
            join_seq: None,
        });
        self.w.slots[slot] = SlotState {
            live: true,
            finished: false,
            inst,
        };
        baton.deposit(
            slot + 1,
            Task {
                func: f,
                args: argv,
                inst,
            },
        );
        Ok(())
    }

    /// `join`: barrier until every live child finishes, then reap them
    /// all at one new point on the logical clock.
    fn exec_join(&mut self) -> R<()> {
        if !self.w.threaded {
            return Ok(());
        }
        loop {
            if let Some(s) = &self.w.stop {
                return Err(s.clone().into());
            }
            if !self.w.slots.iter().any(|s| s.live) {
                return Ok(());
            }
            if self.w.slots.iter().all(|s| !s.live || s.finished) {
                self.w.seq += 1;
                let j = self.w.seq;
                let World {
                    slots, instances, ..
                } = &mut self.w;
                for s in slots.iter_mut() {
                    if s.live {
                        instances[s.inst as usize].join_seq = Some(j);
                        s.live = false;
                        s.finished = false;
                    }
                }
                return Ok(());
            }
            self.w.main_blocked = true;
            let next = self.w.pick_next(self.me, true);
            self.pass_to(next);
            self.take_world()?;
            self.w.main_blocked = false;
        }
    }

    /// Flags conflicting cross-thread accesses to the same concrete
    /// location. An earlier access happens-before the current one iff it
    /// came from the same instance, from main before this instance was
    /// spawned, or from an instance joined before our spawn (or — when
    /// we are main — joined by now). Unordered conflicting pairs with at
    /// least one write land in [`Trace::races`].
    fn note_access(&mut self, site: ExprId, loc: &Loc, is_write: bool) {
        if !self.w.threaded || self.w.instances.len() == 1 {
            return;
        }
        let me = self.instance;
        let now = self.w.seq;
        let insts = &self.w.instances;
        let ordered = |x: &Access| {
            if x.inst == me {
                return true;
            }
            let mine = insts[me as usize];
            if x.inst == 0 && x.at < mine.spawn_seq {
                return true;
            }
            match insts[x.inst as usize].join_seq {
                Some(j) => j <= mine.spawn_seq || (me == 0 && j <= now),
                None => false,
            }
        };
        let entry = self.w.access.entry(loc.clone()).or_default();
        let mut pairs: Vec<(ExprId, ExprId)> = Vec::new();
        if let Some(xw) = &entry.last_write {
            if !ordered(xw) {
                pairs.push((xw.site.min(site), xw.site.max(site)));
            }
        }
        if is_write {
            for r in &entry.reads {
                if !ordered(r) {
                    pairs.push((r.site.min(site), r.site.max(site)));
                }
            }
            entry.last_write = Some(Access {
                inst: me,
                at: now,
                site,
            });
            entry.reads.clear();
        } else if let Some(r) = entry
            .reads
            .iter_mut()
            .find(|r| r.inst == me && r.site == site)
        {
            r.at = now;
        } else {
            entry.reads.push(Access {
                inst: me,
                at: now,
                site,
            });
        }
        self.w.trace.races.extend(pairs);
    }

    fn run_program(&mut self) -> R<i64> {
        // Globals.
        for (i, g) in self.prog.globals.iter().enumerate() {
            let v = Memory::value_of_type(self.types(), g.ty);
            let o = self.w.mem.alloc(v, Origin::Global(i as u32));
            self.w.globals.push(o);
        }
        // A pseudo-frame so global initializers can evaluate.
        self.frames.push(Frame { locals: Vec::new() });
        for gi in 0..self.prog.globals.len() {
            let g = &self.prog.globals[gi];
            if let Some(init) = g.init {
                let loc = Loc::of(self.w.globals[gi]);
                self.run_initializer(&loc, g.ty, init)?;
            }
        }
        self.frames.pop();

        let main = self
            .prog
            .func_by_name("main")
            .ok_or_else(|| Stop::Error("no main function".into()))?;
        let v = self.call_user(main.0, Vec::new())?;
        v.as_int().map_err(Stop::Error)
    }

    // ----- calls ---------------------------------------------------------

    fn call_user(&mut self, f: u32, args: Vec<Value>) -> R<Value> {
        self.tick()?;
        // Each interpreted frame consumes several host frames; the limit
        // keeps well within a test thread's 2 MiB stack.
        if self.frames.len() > 128 {
            return Err(Stop::Error("call stack too deep".into()));
        }
        let decl = &self.prog.funcs[f as usize];
        let mut locals = Vec::with_capacity(decl.vars.len());
        for (vi, v) in decl.vars.iter().enumerate() {
            let init = Memory::value_of_type(self.types(), v.ty);
            let o = self.w.mem.alloc(
                init,
                Origin::Local {
                    func: f,
                    slot: vi as u32,
                },
            );
            locals.push(o);
        }
        for (i, a) in args.into_iter().enumerate().take(decl.n_params) {
            let loc = Loc::of(locals[i]);
            self.w
                .mem
                .write(&loc, a, &self.prog.types)
                .map_err(Stop::Error)?;
        }
        self.frames.push(Frame { locals });
        let body = decl.body.as_ref().expect("called function has a body");
        let flow = self.exec_block(body)?;
        self.frames.pop();
        Ok(match flow {
            Flow::Return(v) => v,
            _ => Value::Uninit,
        })
    }

    fn frame(&self) -> &Frame {
        self.frames.last().expect("active frame")
    }

    // ----- tracing helpers --------------------------------------------------

    fn record_read(&mut self, e: ExprId, loc: &Loc) {
        let a = self.w.mem.abstract_loc(loc, &self.prog.types);
        match self.w.last_writer.get(&a) {
            Some(&w) => {
                self.w.trace.observed_writes.insert(w);
            }
            None => {
                self.w.trace.uninit_reads.insert(e);
            }
        }
        self.w.trace.reads.entry(e).or_default().insert(a);
        self.note_access(e, loc, false);
    }

    fn record_write(&mut self, e: ExprId, loc: &Loc) {
        let a = self.w.mem.abstract_loc(loc, &self.prog.types);
        self.w.last_writer.insert(a.clone(), e);
        self.w.trace.writes.entry(e).or_default().insert(a);
        self.note_access(e, loc, true);
    }

    fn read_at(&mut self, e: ExprId, loc: &Loc) -> R<Value> {
        self.record_read(e, loc);
        match self.w.mem.read(loc, &self.prog.types) {
            Ok(v) => Ok(v),
            Err(m) => Err(self.classify_mem_error(e, m)),
        }
    }

    fn write_at(&mut self, e: ExprId, loc: &Loc, v: Value) -> R<()> {
        self.record_write(e, loc);
        // A pointer to a current-frame local stored outside that frame is
        // escape evidence for the dangling-local checker.
        if !self.frame().locals.contains(&loc.obj) && self.points_into_frame(&v) {
            self.w.trace.local_escapes.insert(e);
        }
        match self.w.mem.write(loc, v, &self.prog.types) {
            Ok(()) => Ok(()),
            Err(m) => Err(self.classify_mem_error(e, m)),
        }
    }

    /// Promotes a memory-layer error message to a classified fault when
    /// it names one of the checker-facing kinds.
    fn classify_mem_error(&mut self, e: ExprId, m: String) -> Stop {
        if m.contains("use after free") {
            self.fault(FaultKind::UseAfterFree, e, &m)
        } else {
            Stop::Error(m)
        }
    }

    /// Whether `v` (transitively) holds a pointer into the current frame's
    /// locals.
    fn points_into_frame(&self, v: &Value) -> bool {
        match v {
            Value::Ptr(l) => self
                .frames
                .last()
                .is_some_and(|f| f.locals.contains(&l.obj)),
            Value::Record(_, fields) => fields.iter().any(|f| self.points_into_frame(f)),
            Value::Array(elems) => elems.iter().any(|e| self.points_into_frame(e)),
            Value::Union(_, inner) => self.points_into_frame(inner),
            _ => false,
        }
    }

    // ----- statements ---------------------------------------------------------

    fn exec_block(&mut self, b: &Block) -> R<Flow> {
        for s in &b.stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> R<Flow> {
        self.tick()?;
        match s {
            Stmt::Expr(e) => {
                self.eval(*e)?;
                Ok(Flow::Normal)
            }
            Stmt::Local { ty, init, slot, .. } => {
                let slot = slot.expect("sema assigned slot");
                let obj = self.frame().locals[slot.0 as usize];
                // Re-entering a block re-initializes the object shape
                // (loops redeclare block-scoped locals).
                let fresh = Memory::value_of_type(self.types(), *ty);
                self.w
                    .mem
                    .write(&Loc::of(obj), fresh, &self.prog.types)
                    .map_err(Stop::Error)?;
                if let Some(init) = init {
                    let loc = Loc::of(obj);
                    self.run_initializer(&loc, *ty, *init)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if self.eval(*cond)?.truthy() {
                    self.exec_block(then_blk)
                } else if let Some(e) = else_blk {
                    self.exec_block(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(*cond)?.truthy() {
                    self.tick()?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    self.tick()?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if !self.eval(*cond)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    if let Flow::Return(v) = self.exec_stmt(i)? {
                        return Ok(Flow::Return(v));
                    }
                }
                loop {
                    self.tick()?;
                    if let Some(c) = cond {
                        if !self.eval(*c)?.truthy() {
                            break;
                        }
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(st) = step {
                        self.eval(*st)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                ..
            } => {
                let v = self.eval(*scrutinee)?.as_int().map_err(Stop::Error)?;
                for c in cases {
                    if c.values.contains(&v) {
                        return match self.exec_block(&c.body)? {
                            Flow::Break => Ok(Flow::Normal),
                            other => Ok(other),
                        };
                    }
                }
                if let Some(d) = default {
                    return match self.exec_block(d)? {
                        Flow::Break => Ok(Flow::Normal),
                        other => Ok(other),
                    };
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(v) => {
                        let val = self.eval(*v)?;
                        self.w.trace.returns.insert(*v);
                        // Returning a pointer to one of this frame's
                        // locals is escape evidence for the
                        // dangling-local checker.
                        if self.points_into_frame(&val) {
                            self.w.trace.local_escapes.insert(*v);
                        }
                        val
                    }
                    None => Value::Uninit,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Block(b) => self.exec_block(b),
            Stmt::Spawn { call, .. } => {
                self.exec_spawn(*call)?;
                Ok(Flow::Normal)
            }
            Stmt::Join(_) => {
                self.exec_join()?;
                Ok(Flow::Normal)
            }
        }
    }

    fn run_initializer(&mut self, loc: &Loc, ty: cfront::types::TypeId, init: ExprId) -> R<()> {
        let kind = self.prog.exprs.get(init).kind.clone();
        match kind {
            ExprKind::InitList(items) => match self.types().kind(ty).clone() {
                TypeKind::Array(elem, _) => {
                    for (i, item) in items.into_iter().enumerate() {
                        let el = loc.push(CStep::Elem(i as u32));
                        self.run_initializer(&el, elem, item)?;
                    }
                    Ok(())
                }
                TypeKind::Record(r) => {
                    let fields: Vec<_> =
                        self.types().record(r).fields.iter().map(|f| f.ty).collect();
                    for (i, (item, fty)) in items.into_iter().zip(fields).enumerate() {
                        let fl = loc.push(CStep::Field {
                            rec: r,
                            idx: i as u32,
                        });
                        self.run_initializer(&fl, fty, item)?;
                    }
                    Ok(())
                }
                _ => Err(Stop::Error("init list on scalar".into())),
            },
            ExprKind::StrLit(s) if self.types().is_array(ty) => {
                // `char buf[N] = "text"`.
                for (i, b) in s.bytes().chain(std::iter::once(0)).enumerate() {
                    let el = loc.push(CStep::Elem(i as u32));
                    self.w
                        .mem
                        .write(&el, Value::Int(b as i64), &self.prog.types)
                        .map_err(Stop::Error)?;
                }
                Ok(())
            }
            _ => {
                let v = self.eval(init)?;
                self.write_at(init, loc, v)
            }
        }
    }

    // ----- lvalues ----------------------------------------------------------

    fn as_ptr_at(&mut self, e: ExprId, v: Value) -> R<Loc> {
        match v {
            Value::Ptr(l) => Ok(l),
            Value::Null => Err(self.fault(FaultKind::NullDeref, e, "null pointer dereference")),
            Value::Uninit => Err(self.fault(
                FaultKind::UninitDeref,
                e,
                "dereference of uninitialized pointer",
            )),
            other => Err(Stop::Error(format!("dereference of non-pointer {other:?}"))),
        }
    }

    fn eval_lvalue(&mut self, e: ExprId) -> R<Loc> {
        let kind = self.prog.exprs.get(e).kind.clone();
        match kind {
            ExprKind::Ident { target, .. } => match target.expect("resolved") {
                IdentTarget::Local(slot) => Ok(Loc::of(self.frame().locals[slot.0 as usize])),
                IdentTarget::Global(g) => Ok(Loc::of(self.w.globals[g.0 as usize])),
                _ => Err(Stop::Error("function is not an object lvalue".into())),
            },
            ExprKind::Unary {
                op: UnOp::Deref,
                arg,
            } => {
                let v = self.eval(arg)?;
                self.as_ptr_at(e, v)
            }
            ExprKind::Member {
                base,
                arrow,
                record,
                field_index,
                ..
            } => {
                let rec = record.expect("resolved");
                let idx = field_index.expect("resolved") as u32;
                let base_loc = if arrow {
                    let v = self.eval(base)?;
                    self.as_ptr_at(e, v)?
                } else {
                    self.eval_lvalue(base)?
                };
                Ok(base_loc.push(CStep::Field { rec, idx }))
            }
            ExprKind::Index { base, index } => {
                let i = self.eval(index)?.as_int().map_err(Stop::Error)?;
                let bt = self.prog.exprs.ty(base);
                if self.types().is_array(bt) {
                    if i < 0 {
                        return Err(Stop::Error("negative array index".into()));
                    }
                    let bl = self.eval_lvalue(base)?;
                    Ok(bl.push(CStep::Elem(i as u32)))
                } else {
                    let v = self.eval(base)?;
                    let l = self.as_ptr_at(e, v)?;
                    l.add(i).map_err(Stop::Error)
                }
            }
            ExprKind::StrLit(s) => {
                let o = self.w.mem.str_object(e, &s);
                Ok(Loc::of(o))
            }
            _ => Err(Stop::Error("expression is not an lvalue".into())),
        }
    }

    /// Whether `e` is an lvalue expression after sema.
    fn is_lvalue(&self, e: ExprId) -> bool {
        match &self.prog.exprs.get(e).kind {
            ExprKind::Ident { target, .. } => !matches!(
                target,
                Some(IdentTarget::Func(_)) | Some(IdentTarget::Builtin(_))
            ),
            ExprKind::Unary {
                op: UnOp::Deref, ..
            } => true,
            ExprKind::Member { base, arrow, .. } => *arrow || self.is_lvalue(*base),
            ExprKind::Index { .. } => true,
            ExprKind::StrLit(_) => true,
            _ => false,
        }
    }

    // ----- expressions ---------------------------------------------------------

    fn eval(&mut self, e: ExprId) -> R<Value> {
        self.tick()?;
        let kind = self.prog.exprs.get(e).kind.clone();
        match kind {
            ExprKind::IntLit(v) => Ok(Value::Int(v)),
            ExprKind::FloatLit(v) => Ok(Value::Float(v)),
            ExprKind::SizeofType(t) => Ok(Value::Int(self.types().size_of(t) as i64)),
            ExprKind::SizeofExpr(arg) => {
                let t = self.prog.exprs.ty(arg);
                Ok(Value::Int(self.types().size_of(t) as i64))
            }
            ExprKind::Null => Ok(Value::Null),
            ExprKind::StrLit(ref s) => {
                let o = self.w.mem.str_object(e, s);
                Ok(Value::Ptr(Loc::of(o).push(CStep::Elem(0))))
            }
            ExprKind::Ident { target, .. } => match target.expect("resolved") {
                IdentTarget::Func(f) => Ok(Value::Func(f.0)),
                IdentTarget::Builtin(_) => Err(Stop::Error("builtin used as a value".into())),
                _ => self.read_lvalue_rvalue(e),
            },
            ExprKind::Unary { op, arg } => match op {
                UnOp::Deref => {
                    if self.types().is_func(self.prog.exprs.ty(e)) {
                        return self.eval(arg);
                    }
                    let v = self.eval(arg)?;
                    let loc = self.as_ptr_at(e, v)?;
                    if self.types().is_array(self.prog.exprs.ty(e)) {
                        return Ok(Value::Ptr(loc.push(CStep::Elem(0))));
                    }
                    self.read_at(e, &loc)
                }
                UnOp::Addr => {
                    if self.types().is_func(self.prog.exprs.ty(arg)) {
                        return self.eval(arg);
                    }
                    let loc = self.eval_lvalue(arg)?;
                    Ok(Value::Ptr(loc))
                }
                UnOp::Neg => match self.eval(arg)? {
                    Value::Float(f) => Ok(Value::Float(-f)),
                    v => Ok(Value::Int(v.as_int().map_err(Stop::Error)?.wrapping_neg())),
                },
                UnOp::Not => Ok(Value::Int(i64::from(!self.eval(arg)?.truthy()))),
                UnOp::BitNot => Ok(Value::Int(!self.eval(arg)?.as_int().map_err(Stop::Error)?)),
            },
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(op, lhs, rhs),
            ExprKind::Assign { op, lhs, rhs } => {
                match op {
                    None => {
                        // Address before value, matching the VDG builder's
                        // store-threading order.
                        let loc = self.eval_lvalue(lhs)?;
                        let v = self.eval(rhs)?;
                        self.write_at(lhs, &loc, v.clone())?;
                        Ok(v)
                    }
                    Some(op) => {
                        let loc = self.eval_lvalue(lhs)?;
                        let old = self.read_at(lhs, &loc)?;
                        let rv = self.eval(rhs)?;
                        let new = self.apply_binop(op, old, rv)?;
                        self.write_at(lhs, &loc, new.clone())?;
                        Ok(new)
                    }
                }
            }
            ExprKind::IncDec { pre, inc, arg } => {
                let loc = self.eval_lvalue(arg)?;
                let old = self.read_at(arg, &loc)?;
                let delta = if inc { 1 } else { -1 };
                let new = match &old {
                    Value::Ptr(l) => Value::Ptr(l.add(delta).map_err(Stop::Error)?),
                    Value::Float(f) => Value::Float(f + delta as f64),
                    v => Value::Int(v.as_int().map_err(Stop::Error)?.wrapping_add(delta)),
                };
                self.write_at(arg, &loc, new.clone())?;
                Ok(if pre { new } else { old })
            }
            ExprKind::Call { callee, args } => self.eval_call(e, callee, &args),
            ExprKind::Member {
                base,
                record,
                field_index,
                ..
            } => {
                if self.is_lvalue(e) {
                    self.read_lvalue_rvalue(e)
                } else {
                    // Field of a struct rvalue (e.g. returned by value).
                    let v = self.eval(base)?;
                    let rec = record.expect("resolved");
                    let idx = field_index.expect("resolved");
                    match v {
                        Value::Record(r, fields) if r == rec => {
                            Ok(fields.get(idx).cloned().unwrap_or(Value::Uninit))
                        }
                        Value::Union(_, inner) => Ok(*inner),
                        other => Err(Stop::Error(format!(
                            "member access on non-struct value {other:?}"
                        ))),
                    }
                }
            }
            ExprKind::Index { .. } => self.read_lvalue_rvalue(e),
            ExprKind::Cast { ty, arg } => {
                let v = self.eval(arg)?;
                match self.types().kind(ty).clone() {
                    TypeKind::Ptr(_) => Ok(v),
                    TypeKind::Float => Ok(Value::Float(v.as_float().map_err(Stop::Error)?)),
                    TypeKind::Int | TypeKind::Char => {
                        Ok(Value::Int(v.as_int().map_err(Stop::Error)?))
                    }
                    TypeKind::Void => Ok(Value::Int(0)),
                    _ => Ok(v),
                }
            }
            ExprKind::Cond {
                cond,
                then_e,
                else_e,
            } => {
                if self.eval(cond)?.truthy() {
                    self.eval(then_e)
                } else {
                    self.eval(else_e)
                }
            }
            ExprKind::InitList(_) => Err(Stop::Error("init list outside declaration".into())),
            ExprKind::Comma { lhs, rhs } => {
                self.eval(lhs)?;
                self.eval(rhs)
            }
        }
    }

    /// Reads an lvalue expression as an rvalue, decaying arrays.
    fn read_lvalue_rvalue(&mut self, e: ExprId) -> R<Value> {
        let ty = self.prog.exprs.ty(e);
        if self.types().is_array(ty) {
            let loc = self.eval_lvalue(e)?;
            return Ok(Value::Ptr(loc.push(CStep::Elem(0))));
        }
        let loc = self.eval_lvalue(e)?;
        self.read_at(e, &loc)
    }

    fn eval_binary(&mut self, op: BinOp, lhs: ExprId, rhs: ExprId) -> R<Value> {
        // Short-circuit forms first.
        match op {
            BinOp::And => {
                if !self.eval(lhs)?.truthy() {
                    return Ok(Value::Int(0));
                }
                return Ok(Value::Int(i64::from(self.eval(rhs)?.truthy())));
            }
            BinOp::Or => {
                if self.eval(lhs)?.truthy() {
                    return Ok(Value::Int(1));
                }
                return Ok(Value::Int(i64::from(self.eval(rhs)?.truthy())));
            }
            _ => {}
        }
        let a = self.eval(lhs)?;
        let b = self.eval(rhs)?;
        self.apply_binop(op, a, b)
    }

    fn apply_binop(&mut self, op: BinOp, a: Value, b: Value) -> R<Value> {
        use BinOp::*;
        // Pointer arithmetic and comparisons.
        match (&a, &b, op) {
            (Value::Ptr(l), _, Add) => {
                let i = b.as_int().map_err(Stop::Error)?;
                return Ok(Value::Ptr(l.add(i).map_err(Stop::Error)?));
            }
            (_, Value::Ptr(l), Add) => {
                let i = a.as_int().map_err(Stop::Error)?;
                return Ok(Value::Ptr(l.add(i).map_err(Stop::Error)?));
            }
            (Value::Ptr(l), _, Sub) if !matches!(b, Value::Ptr(_) | Value::Null) => {
                let i = b.as_int().map_err(Stop::Error)?;
                return Ok(Value::Ptr(l.add(-i).map_err(Stop::Error)?));
            }
            (Value::Ptr(x), Value::Ptr(y), Sub) => {
                return self.ptr_diff(x, y).map(Value::Int);
            }
            (
                Value::Ptr(_) | Value::Null | Value::Func(_),
                Value::Ptr(_) | Value::Null | Value::Func(_),
                Eq,
            ) => {
                return Ok(Value::Int(i64::from(a == b)));
            }
            (
                Value::Ptr(_) | Value::Null | Value::Func(_),
                Value::Ptr(_) | Value::Null | Value::Func(_),
                Ne,
            ) => {
                return Ok(Value::Int(i64::from(a != b)));
            }
            (Value::Ptr(x), Value::Ptr(y), Lt | Gt | Le | Ge) => {
                let d = self.ptr_diff(x, y)?;
                let r = match op {
                    Lt => d < 0,
                    Gt => d > 0,
                    Le => d <= 0,
                    _ => d >= 0,
                };
                return Ok(Value::Int(i64::from(r)));
            }
            _ => {}
        }
        // Floating point.
        if matches!(a, Value::Float(_)) || matches!(b, Value::Float(_)) {
            let x = a.as_float().map_err(Stop::Error)?;
            let y = b.as_float().map_err(Stop::Error)?;
            return Ok(match op {
                Add => Value::Float(x + y),
                Sub => Value::Float(x - y),
                Mul => Value::Float(x * y),
                Div => {
                    if y == 0.0 {
                        return Err(Stop::Error("division by zero".into()));
                    }
                    Value::Float(x / y)
                }
                Lt => Value::Int(i64::from(x < y)),
                Gt => Value::Int(i64::from(x > y)),
                Le => Value::Int(i64::from(x <= y)),
                Ge => Value::Int(i64::from(x >= y)),
                Eq => Value::Int(i64::from(x == y)),
                Ne => Value::Int(i64::from(x != y)),
                _ => return Err(Stop::Error("invalid float operation".into())),
            });
        }
        // Integers.
        let x = a.as_int().map_err(Stop::Error)?;
        let y = b.as_int().map_err(Stop::Error)?;
        Ok(Value::Int(match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(Stop::Error("division by zero".into()));
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return Err(Stop::Error("remainder by zero".into()));
                }
                x.wrapping_rem(y)
            }
            Lt => i64::from(x < y),
            Gt => i64::from(x > y),
            Le => i64::from(x <= y),
            Ge => i64::from(x >= y),
            Eq => i64::from(x == y),
            Ne => i64::from(x != y),
            BitAnd => x & y,
            BitOr => x | y,
            BitXor => x ^ y,
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            And | Or => unreachable!("short-circuited"),
        }))
    }

    fn ptr_diff(&self, x: &Loc, y: &Loc) -> R<i64> {
        if x.obj != y.obj {
            return Err(Stop::Error("pointer difference across objects".into()));
        }
        let (xi, yi) = match (x.path.last(), y.path.last()) {
            (Some(CStep::Elem(a)), Some(CStep::Elem(b)))
                if x.path[..x.path.len() - 1] == y.path[..y.path.len() - 1] =>
            {
                (*a as i64, *b as i64)
            }
            _ if x.path == y.path => (0, 0),
            _ => return Err(Stop::Error("incomparable pointers".into())),
        };
        Ok(xi - yi)
    }

    // ----- calls & builtins ------------------------------------------------------

    fn eval_call(&mut self, e: ExprId, callee: ExprId, args: &[ExprId]) -> R<Value> {
        // Builtins (peeling &/* like the lowering does).
        let mut c = callee;
        while let ExprKind::Unary {
            op: UnOp::Deref | UnOp::Addr,
            arg,
        } = &self.prog.exprs.get(c).kind
        {
            c = *arg;
        }
        if let ExprKind::Ident {
            target: Some(IdentTarget::Builtin(b)),
            ..
        } = self.prog.exprs.get(c).kind
        {
            return self.eval_builtin(e, b, args);
        }
        let fv = self.eval(callee)?;
        let Value::Func(f) = fv else {
            return Err(Stop::Error("called value is not a function".into()));
        };
        let mut argv = Vec::with_capacity(args.len());
        for &a in args {
            argv.push(self.eval(a)?);
        }
        self.call_user(f, argv)
    }

    fn getchar(&mut self) -> i64 {
        match self.cfg.input.get(self.w.input_pos) {
            Some(&b) => {
                self.w.input_pos += 1;
                b as i64
            }
            None => -1,
        }
    }

    fn read_byte(&mut self, loc: &Loc) -> R<i64> {
        self.w
            .mem
            .read(loc, &self.prog.types)
            .map_err(Stop::Error)?
            .as_int()
            .map_err(Stop::Error)
    }

    fn c_string(&mut self, mut loc: Loc) -> R<String> {
        let mut s = String::new();
        loop {
            let b = self.read_byte(&loc)?;
            if b == 0 {
                return Ok(s);
            }
            s.push(b as u8 as char);
            loc = loc.add(1).map_err(Stop::Error)?;
            if s.len() > 1_000_000 {
                return Err(Stop::Error("unterminated string".into()));
            }
        }
    }

    fn write_c_string(&mut self, mut loc: Loc, s: &str) -> R<()> {
        for b in s.bytes().chain(std::iter::once(0)) {
            self.w
                .mem
                .write(&loc, Value::Int(b as i64), &self.prog.types)
                .map_err(Stop::Error)?;
            loc = loc.add(1).map_err(Stop::Error)?;
        }
        Ok(())
    }

    fn format(&mut self, fmt: &str, args: &[Value]) -> R<String> {
        let mut out = String::new();
        let mut ai = 0;
        let mut chars = fmt.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            // Skip flags/width/length; find the conversion letter.
            let mut conv = None;
            for c2 in chars.by_ref() {
                if c2.is_ascii_alphabetic() || c2 == '%' {
                    conv = Some(match c2 {
                        'l' | 'h' => continue,
                        other => other,
                    });
                    break;
                }
            }
            let Some(conv) = conv else { break };
            if conv == '%' {
                out.push('%');
                continue;
            }
            let arg = args.get(ai).cloned().unwrap_or(Value::Int(0));
            ai += 1;
            match conv {
                'd' | 'i' | 'u' => out.push_str(&arg.as_int().map_err(Stop::Error)?.to_string()),
                'x' => out.push_str(&format!("{:x}", arg.as_int().map_err(Stop::Error)?)),
                'o' => out.push_str(&format!("{:o}", arg.as_int().map_err(Stop::Error)?)),
                'c' => out.push(arg.as_int().map_err(Stop::Error)? as u8 as char),
                'f' | 'g' | 'e' => {
                    out.push_str(&format!("{:.6}", arg.as_float().map_err(Stop::Error)?))
                }
                's' => match arg {
                    Value::Ptr(l) => out.push_str(&self.c_string(l)?),
                    Value::Null => out.push_str("(null)"),
                    other => return Err(Stop::Error(format!("%s with non-pointer {other:?}"))),
                },
                'p' => out.push_str("0xptr"),
                other => return Err(Stop::Error(format!("unsupported format %{other}"))),
            }
        }
        Ok(out)
    }

    fn eval_builtin(&mut self, e: ExprId, b: Builtin, args: &[ExprId]) -> R<Value> {
        let mut argv = Vec::with_capacity(args.len());
        for &a in args {
            argv.push(self.eval(a)?);
        }
        use Builtin::*;
        match b {
            Malloc | Calloc => {
                let o = self.w.mem.alloc(Value::Uninit, Origin::Heap(e));
                Ok(Value::Ptr(Loc::of(o).push(CStep::Elem(0))))
            }
            Realloc => {
                let o = self.w.mem.alloc(Value::Uninit, Origin::Heap(e));
                if let Value::Ptr(src) = &argv[0] {
                    let root = Loc::of(src.obj);
                    let v = self
                        .w
                        .mem
                        .read(&root, &self.prog.types)
                        .map_err(Stop::Error)?;
                    self.w
                        .mem
                        .write(&Loc::of(o), v, &self.prog.types)
                        .map_err(Stop::Error)?;
                }
                Ok(Value::Ptr(Loc::of(o).push(CStep::Elem(0))))
            }
            Strdup => {
                let Value::Ptr(src) = argv[0].clone() else {
                    return Err(Stop::Error("strdup of non-pointer".into()));
                };
                let s = self.c_string(src)?;
                let o = self.w.mem.alloc(Value::Uninit, Origin::Heap(e));
                let dst = Loc::of(o).push(CStep::Elem(0));
                self.write_c_string(dst.clone(), &s)?;
                Ok(Value::Ptr(dst))
            }
            Free => match argv[0].clone() {
                // `free(NULL)` is a no-op, as in C.
                Value::Null => Ok(Value::Int(0)),
                Value::Ptr(l) => {
                    if !matches!(self.w.mem.origin(l.obj), Origin::Heap(_)) {
                        return Err(self.fault(
                            FaultKind::InvalidFree,
                            e,
                            "free of a non-heap pointer",
                        ));
                    }
                    // Record the free site first so the trace keys are
                    // exactly the executed frees, faulting or not.
                    let a = self.w.mem.abstract_loc(&Loc::of(l.obj), self.types());
                    self.w.trace.frees.entry(e).or_default().insert(a);
                    if !self.w.mem.free(l.obj) {
                        return Err(self.fault(
                            FaultKind::DoubleFree,
                            e,
                            "double free of heap object",
                        ));
                    }
                    Ok(Value::Int(0))
                }
                _ => Err(self.fault(FaultKind::InvalidFree, e, "free of a non-pointer")),
            },
            Strcpy | Strncpy => {
                let (Value::Ptr(d), Value::Ptr(s)) = (argv[0].clone(), argv[1].clone()) else {
                    return Err(Stop::Error("strcpy needs pointers".into()));
                };
                let mut text = self.c_string(s)?;
                if b == Strncpy {
                    let n = argv[2].as_int().map_err(Stop::Error)? as usize;
                    text.truncate(n);
                }
                self.write_c_string(d.clone(), &text)?;
                Ok(Value::Ptr(d))
            }
            Strcat => {
                let (Value::Ptr(d), Value::Ptr(s)) = (argv[0].clone(), argv[1].clone()) else {
                    return Err(Stop::Error("strcat needs pointers".into()));
                };
                let head = self.c_string(d.clone())?;
                let tail = self.c_string(s)?;
                self.write_c_string(d.clone(), &format!("{head}{tail}"))?;
                Ok(Value::Ptr(d))
            }
            Strcmp | Strncmp => {
                let (Value::Ptr(x), Value::Ptr(y)) = (argv[0].clone(), argv[1].clone()) else {
                    return Err(Stop::Error("strcmp needs pointers".into()));
                };
                let mut a = self.c_string(x)?;
                let mut bs = self.c_string(y)?;
                if b == Strncmp {
                    let n = argv[2].as_int().map_err(Stop::Error)? as usize;
                    a.truncate(n);
                    bs.truncate(n);
                }
                Ok(Value::Int(match a.cmp(&bs) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            Strlen => {
                let Value::Ptr(p) = argv[0].clone() else {
                    return Err(Stop::Error("strlen of non-pointer".into()));
                };
                Ok(Value::Int(self.c_string(p)?.len() as i64))
            }
            Strchr => {
                let Value::Ptr(p) = argv[0].clone() else {
                    return Err(Stop::Error("strchr of non-pointer".into()));
                };
                let target = argv[1].as_int().map_err(Stop::Error)? as u8 as char;
                let s = self.c_string(p.clone())?;
                match s.find(target) {
                    Some(i) => Ok(Value::Ptr(p.add(i as i64).map_err(Stop::Error)?)),
                    None => Ok(Value::Null),
                }
            }
            Memcpy | Memmove => {
                let (Value::Ptr(d), Value::Ptr(s)) = (argv[0].clone(), argv[1].clone()) else {
                    return Err(Stop::Error("memcpy needs pointers".into()));
                };
                // Copy the pointed-to region: whole sub-objects in this
                // model (callers use `sizeof` of that object).
                let dc = Self::container(&d);
                let sc = Self::container(&s);
                let v = self
                    .w
                    .mem
                    .read(&sc, &self.prog.types)
                    .map_err(Stop::Error)?;
                self.w
                    .mem
                    .write(&dc, v, &self.prog.types)
                    .map_err(Stop::Error)?;
                Ok(argv[0].clone())
            }
            Memset => {
                let Value::Ptr(d) = argv[0].clone() else {
                    return Err(Stop::Error("memset of non-pointer".into()));
                };
                let fill = argv[1].clone();
                let dc = Self::container(&d);
                let slot = self
                    .w
                    .mem
                    .slot_mut(&dc, &self.prog.types)
                    .map_err(Stop::Error)?;
                fill_with(slot, &fill);
                Ok(argv[0].clone())
            }
            Printf => {
                let Value::Ptr(f) = argv[0].clone() else {
                    return Err(Stop::Error("printf needs a format string".into()));
                };
                let fmt = self.c_string(f)?;
                let s = self.format(&fmt, &argv[1..])?;
                let n = s.len() as i64;
                self.w.out.push_str(&s);
                Ok(Value::Int(n))
            }
            Sprintf => {
                let (Value::Ptr(d), Value::Ptr(f)) = (argv[0].clone(), argv[1].clone()) else {
                    return Err(Stop::Error("sprintf needs pointers".into()));
                };
                let fmt = self.c_string(f)?;
                let s = self.format(&fmt, &argv[2..])?;
                self.write_c_string(d, &s)?;
                Ok(Value::Int(s.len() as i64))
            }
            Puts => {
                let Value::Ptr(p) = argv[0].clone() else {
                    return Err(Stop::Error("puts of non-pointer".into()));
                };
                let s = self.c_string(p)?;
                self.w.out.push_str(&s);
                self.w.out.push('\n');
                Ok(Value::Int(0))
            }
            Putchar => {
                let c = argv[0].as_int().map_err(Stop::Error)?;
                self.w.out.push(c as u8 as char);
                Ok(Value::Int(c))
            }
            Getchar => Ok(Value::Int(self.getchar())),
            Atoi => {
                let Value::Ptr(p) = argv[0].clone() else {
                    return Err(Stop::Error("atoi of non-pointer".into()));
                };
                let s = self.c_string(p)?;
                let t = s.trim();
                let end = t
                    .char_indices()
                    .take_while(|(i, c)| {
                        c.is_ascii_digit() || (*i == 0 && (*c == '-' || *c == '+'))
                    })
                    .map(|(i, c)| i + c.len_utf8())
                    .last()
                    .unwrap_or(0);
                Ok(Value::Int(t[..end].parse().unwrap_or(0)))
            }
            Exit => Err(Stop::Exit(argv[0].as_int().map_err(Stop::Error)?)),
            Abs => Ok(Value::Int(argv[0].as_int().map_err(Stop::Error)?.abs())),
            Rand => {
                self.w.rng = self
                    .w
                    .rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Ok(Value::Int(((self.w.rng >> 33) & 0x7fff_ffff) as i64))
            }
            Srand => {
                self.w.rng = argv[0].as_int().map_err(Stop::Error)? as u64 | 1;
                Ok(Value::Int(0))
            }
        }
    }

    /// Drops a trailing `[0]` so `memcpy(a, b, n)` style calls address the
    /// containing object.
    fn container(loc: &Loc) -> Loc {
        let mut l = loc.clone();
        if matches!(l.path.last(), Some(CStep::Elem(0))) {
            l.path.pop();
        }
        l
    }
}

/// Recursively fills scalar slots with `fill` (the `memset` model).
fn fill_with(slot: &mut Value, fill: &Value) {
    match slot {
        Value::Record(_, fields) => {
            for f in fields {
                fill_with(f, fill);
            }
        }
        Value::Array(elems) => {
            for e in elems {
                fill_with(e, fill);
            }
        }
        Value::Union(_, inner) => fill_with(inner, fill),
        other => {
            *other = match fill {
                Value::Int(v) => Value::Int(*v),
                _ => Value::Int(0),
            }
        }
    }
}
