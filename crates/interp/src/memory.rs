//! The interpreter's memory model: a heap of object trees addressed by
//! `(object, path)` locations, plus the abstraction map onto the
//! analysis' base-location/access-path vocabulary.

use cfront::ast::ExprId;
use cfront::types::{RecordId, TypeId, TypeKind, TypeTable};
use std::collections::{HashMap, HashSet};

/// Where an object came from; the abstraction of its identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// A global variable.
    Global(u32),
    /// A local/parameter slot of some function activation. All
    /// activations share the abstraction (func, slot).
    Local {
        /// The owning function (a `cfront::ast::FuncId` index).
        func: u32,
        /// The variable slot within that function.
        slot: u32,
    },
    /// A heap object; identified by its allocating call expression
    /// (matching the VDG's one-base-per-static-site rule).
    Heap(ExprId),
    /// Storage of a string literal expression.
    Str(ExprId),
}

/// One concrete navigation step inside an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CStep {
    /// Struct field access (unions contribute no step; their members
    /// share storage).
    Field {
        /// The record the field belongs to.
        rec: RecordId,
        /// Field index within the record.
        idx: u32,
    },
    /// Array element access with a concrete index.
    Elem(u32),
}

/// A concrete location: an object plus a path inside it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Loc {
    /// The owning object.
    pub obj: u32,
    /// Steps from the object's root to the addressed slot.
    pub path: Vec<CStep>,
}

impl Loc {
    /// A whole-object location.
    pub fn of(obj: u32) -> Loc {
        Loc {
            obj,
            path: Vec::new(),
        }
    }

    /// Extends the location with one step.
    pub fn push(&self, step: CStep) -> Loc {
        let mut path = self.path.clone();
        path.push(step);
        Loc {
            obj: self.obj,
            path,
        }
    }

    /// Pointer arithmetic: adjusts the trailing element index.
    /// `offset == 0` on a non-element location is the identity.
    pub fn add(&self, offset: i64) -> Result<Loc, String> {
        if offset == 0 {
            return Ok(self.clone());
        }
        let mut path = self.path.clone();
        match path.last_mut() {
            Some(CStep::Elem(i)) => {
                let ni = *i as i64 + offset;
                if ni < 0 {
                    return Err("pointer arithmetic before start of array".to_string());
                }
                *i = ni as u32;
                Ok(Loc {
                    obj: self.obj,
                    path,
                })
            }
            _ => Err("pointer arithmetic on a non-array pointer".to_string()),
        }
    }
}

/// An abstract step: the analysis-level view of a [`CStep`] (array
/// indices collapse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsStep {
    /// Struct field selection.
    Field {
        /// The record the field belongs to.
        rec: RecordId,
        /// Field index within the record.
        idx: u32,
    },
    /// Array element access (indices collapse).
    Elem,
}

/// The abstraction of a concrete location: origin plus collapsed steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AbsLoc {
    /// Which abstract object.
    pub origin: Origin,
    /// Collapsed access steps.
    pub steps: Vec<AbsStep>,
}

/// A runtime value.
#[allow(missing_docs)] // variants mirror the C value categories
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Ptr(Loc),
    Null,
    Func(u32),
    /// Struct rvalue (deep copy).
    Record(RecordId, Vec<Value>),
    /// Union rvalue: the most recently written member's value.
    Union(RecordId, Box<Value>),
    /// Array rvalue (appears in whole-aggregate copies).
    Array(Vec<Value>),
    Uninit,
}

impl Value {
    /// C truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Ptr(_) | Value::Func(_) => true,
            Value::Null => false,
            Value::Uninit => false,
            _ => true,
        }
    }

    /// Integer view (uninit reads as 0, the deterministic stand-in).
    pub fn as_int(&self) -> Result<i64, String> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Float(v) => Ok(*v as i64),
            Value::Uninit => Ok(0),
            other => Err(format!("expected integer, found {other:?}")),
        }
    }

    /// Float view.
    pub fn as_float(&self) -> Result<f64, String> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            Value::Uninit => Ok(0.0),
            other => Err(format!("expected number, found {other:?}")),
        }
    }
}

/// One allocated object.
#[derive(Debug, Clone)]
pub struct Object {
    /// The current contents (a tree for aggregates).
    pub value: Value,
    /// The abstraction of this object's identity.
    pub origin: Origin,
}

/// The interpreter heap.
#[derive(Debug, Default)]
pub struct Memory {
    objs: Vec<Object>,
    /// Memoized string-literal objects per expression.
    str_objs: HashMap<ExprId, u32>,
    /// Objects deallocated by `free`; any later access is a dynamic
    /// error (the poisoning that gives the checker harness its runtime
    /// ground truth for use-after-free).
    freed: HashSet<u32>,
}

impl Memory {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an object with the given initial value.
    pub fn alloc(&mut self, value: Value, origin: Origin) -> u32 {
        let id = self.objs.len() as u32;
        self.objs.push(Object { value, origin });
        id
    }

    /// The memoized object for a string literal expression.
    pub fn str_object(&mut self, e: ExprId, text: &str) -> u32 {
        if let Some(&o) = self.str_objs.get(&e) {
            return o;
        }
        let mut elems: Vec<Value> = text.bytes().map(|b| Value::Int(b as i64)).collect();
        elems.push(Value::Int(0));
        let o = self.alloc(Value::Array(elems), Origin::Str(e));
        self.str_objs.insert(e, o);
        o
    }

    /// The origin of an object.
    pub fn origin(&self, obj: u32) -> Origin {
        self.objs[obj as usize].origin
    }

    /// Marks an object deallocated; later accesses through [`Memory::slot_mut`]
    /// fail. Freeing twice is the caller's double-free error to report —
    /// this returns whether the object was still live.
    pub fn free(&mut self, obj: u32) -> bool {
        self.freed.insert(obj)
    }

    /// Whether `obj` has been deallocated.
    pub fn is_freed(&self, obj: u32) -> bool {
        self.freed.contains(&obj)
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// Whether no objects exist.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }

    /// Builds a fully materialized object for a type (globals/locals).
    pub fn value_of_type(types: &TypeTable, ty: TypeId) -> Value {
        match types.kind(ty) {
            TypeKind::Record(r) => {
                let rec = types.record(*r);
                if rec.is_union {
                    Value::Union(*r, Box::new(Value::Uninit))
                } else {
                    let fields = rec
                        .fields
                        .iter()
                        .map(|f| Self::value_of_type(types, f.ty))
                        .collect();
                    Value::Record(*r, fields)
                }
            }
            TypeKind::Array(elem, n) => {
                let v = (0..*n.max(&1))
                    .map(|_| Self::value_of_type(types, *elem))
                    .collect();
                Value::Array(v)
            }
            _ => Value::Uninit,
        }
    }

    fn navigate<'v>(
        slot: &'v mut Value,
        step: CStep,
        types: &TypeTable,
    ) -> Result<&'v mut Value, String> {
        // Materialize lazily allocated (heap) storage on first touch.
        // A scalar in the slot means a union member (or untyped heap
        // cell) is being re-shaped by access through another member:
        // writing one union member invalidates the others, so the old
        // contents are discarded.
        if matches!(
            slot,
            Value::Int(_) | Value::Float(_) | Value::Ptr(_) | Value::Null | Value::Func(_)
        ) {
            *slot = Value::Uninit;
        }
        match step {
            CStep::Field { rec, idx } => {
                if matches!(slot, Value::Uninit) {
                    let r = types.record(rec);
                    if r.is_union {
                        *slot = Value::Union(rec, Box::new(Value::Uninit));
                    } else {
                        *slot =
                            Value::Record(rec, r.fields.iter().map(|_| Value::Uninit).collect());
                    }
                }
                match slot {
                    Value::Record(_, fields) => fields
                        .get_mut(idx as usize)
                        .ok_or_else(|| "field index out of range".to_string()),
                    Value::Union(_, inner) => Ok(inner.as_mut()),
                    other => Err(format!("field access on non-record {other:?}")),
                }
            }
            CStep::Elem(i) => {
                if matches!(slot, Value::Uninit) {
                    *slot = Value::Array(Vec::new());
                }
                match slot {
                    Value::Array(elems) => {
                        // Heap arrays grow on demand (malloc'd buffers have
                        // no static length in this model).
                        while elems.len() <= i as usize {
                            elems.push(Value::Uninit);
                        }
                        Ok(&mut elems[i as usize])
                    }
                    other => Err(format!("element access on non-array {other:?}")),
                }
            }
        }
    }

    /// Mutable access to the value slot at `loc`, materializing lazily.
    pub fn slot_mut(&mut self, loc: &Loc, types: &TypeTable) -> Result<&mut Value, String> {
        if self.freed.contains(&loc.obj) {
            return Err("use after free of heap object".to_string());
        }
        let mut slot = &mut self
            .objs
            .get_mut(loc.obj as usize)
            .ok_or_else(|| "dangling object reference".to_string())?
            .value;
        for &step in &loc.path {
            slot = Self::navigate(slot, step, types)?;
        }
        Ok(slot)
    }

    /// Reads the value at `loc` (deep copy for aggregates).
    pub fn read(&mut self, loc: &Loc, types: &TypeTable) -> Result<Value, String> {
        Ok(self.slot_mut(loc, types)?.clone())
    }

    /// Writes `v` at `loc`. Writing into a union records the value as the
    /// active member.
    pub fn write(&mut self, loc: &Loc, v: Value, types: &TypeTable) -> Result<(), String> {
        *self.slot_mut(loc, types)? = v;
        Ok(())
    }

    /// The abstraction of a concrete location: array indices collapse,
    /// object identity collapses to the origin, and union member steps
    /// vanish (union members share one abstract path, paper §2).
    pub fn abstract_loc(&self, loc: &Loc, types: &TypeTable) -> AbsLoc {
        AbsLoc {
            origin: self.origin(loc.obj),
            steps: loc
                .path
                .iter()
                .filter_map(|s| match *s {
                    CStep::Field { rec, idx } => {
                        if types.record(rec).is_union {
                            None
                        } else {
                            Some(AbsStep::Field { rec, idx })
                        }
                    }
                    CStep::Elem(_) => Some(AbsStep::Elem),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn types_with_pair() -> (TypeTable, RecordId) {
        let mut t = TypeTable::new();
        let int = t.int();
        let r = t.declare_record("pair", false);
        t.define_record(
            r,
            vec![
                cfront::types::Field {
                    name: "a".into(),
                    ty: int,
                },
                cfront::types::Field {
                    name: "b".into(),
                    ty: int,
                },
            ],
        );
        (t, r)
    }

    #[test]
    fn read_write_scalar() {
        let (t, _) = types_with_pair();
        let mut m = Memory::new();
        let o = m.alloc(Value::Uninit, Origin::Global(0));
        let loc = Loc::of(o);
        m.write(&loc, Value::Int(42), &t).unwrap();
        assert_eq!(m.read(&loc, &t).unwrap(), Value::Int(42));
    }

    #[test]
    fn lazy_materialization_of_heap_struct() {
        let (t, r) = types_with_pair();
        let mut m = Memory::new();
        let o = m.alloc(Value::Uninit, Origin::Heap(cfront::ast::ExprId(0)));
        let f1 = Loc::of(o).push(CStep::Field { rec: r, idx: 1 });
        m.write(&f1, Value::Int(7), &t).unwrap();
        assert_eq!(m.read(&f1, &t).unwrap(), Value::Int(7));
        let f0 = Loc::of(o).push(CStep::Field { rec: r, idx: 0 });
        assert_eq!(m.read(&f0, &t).unwrap(), Value::Uninit);
    }

    #[test]
    fn arrays_grow_on_demand() {
        let (t, _) = types_with_pair();
        let mut m = Memory::new();
        let o = m.alloc(Value::Uninit, Origin::Heap(cfront::ast::ExprId(1)));
        let e5 = Loc::of(o).push(CStep::Elem(5));
        m.write(&e5, Value::Int(9), &t).unwrap();
        assert_eq!(m.read(&e5, &t).unwrap(), Value::Int(9));
    }

    #[test]
    fn pointer_arithmetic_moves_element_index() {
        let o = Loc::of(3).push(CStep::Elem(2));
        assert_eq!(o.add(2).unwrap().path, vec![CStep::Elem(4)]);
        assert_eq!(o.add(-2).unwrap().path, vec![CStep::Elem(0)]);
        assert!(o.add(-3).is_err());
        let scalar = Loc::of(3);
        assert!(scalar.add(0).is_ok());
        assert!(scalar.add(1).is_err());
    }

    #[test]
    fn abstraction_collapses_indices() {
        let (t, r) = types_with_pair();
        let mut m = Memory::new();
        let o = m.alloc(Value::Uninit, Origin::Local { func: 1, slot: 2 });
        let loc = Loc::of(o)
            .push(CStep::Elem(7))
            .push(CStep::Field { rec: r, idx: 0 });
        let a = m.abstract_loc(&loc, &t);
        assert_eq!(a.origin, Origin::Local { func: 1, slot: 2 });
        assert_eq!(
            a.steps,
            vec![AbsStep::Elem, AbsStep::Field { rec: r, idx: 0 }]
        );
    }

    #[test]
    fn abstraction_skips_union_members() {
        let mut t = TypeTable::new();
        let int = t.int();
        let u = t.declare_record("u", true);
        t.define_record(
            u,
            vec![cfront::types::Field {
                name: "v".into(),
                ty: int,
            }],
        );
        let mut m = Memory::new();
        let g = m.alloc(Value::Union(u, Box::new(Value::Uninit)), Origin::Global(3));
        let loc = Loc::of(g).push(CStep::Field { rec: u, idx: 0 });
        assert!(m.abstract_loc(&loc, &t).steps.is_empty());
    }

    #[test]
    fn unions_share_storage() {
        let mut t = TypeTable::new();
        let int = t.int();
        let ip = t.ptr(int);
        let u = t.declare_record("u", true);
        t.define_record(
            u,
            vec![
                cfront::types::Field {
                    name: "p".into(),
                    ty: ip,
                },
                cfront::types::Field {
                    name: "v".into(),
                    ty: int,
                },
            ],
        );
        let mut m = Memory::new();
        let g = m.alloc(Value::Union(u, Box::new(Value::Uninit)), Origin::Global(0));
        let via_p = Loc::of(g).push(CStep::Field { rec: u, idx: 0 });
        let via_v = Loc::of(g).push(CStep::Field { rec: u, idx: 1 });
        m.write(&via_p, Value::Int(5), &t).unwrap();
        assert_eq!(m.read(&via_v, &t).unwrap(), Value::Int(5));
    }

    #[test]
    fn string_objects_are_memoized() {
        let mut m = Memory::new();
        let e = cfront::ast::ExprId(9);
        let a = m.str_object(e, "hi");
        let b = m.str_object(e, "hi");
        assert_eq!(a, b);
        assert_eq!(m.len(), 1);
    }
}
