//! Generator coverage audit: a seeded sweep of the campaign-preset
//! generator must exercise every VDG node kind and every statement
//! form, including the shapes added for ecosystem-scale campaigns
//! (pointer arrays, struct-held pointer arrays, function-pointer
//! tables, heap blocks, whole-struct copies). Guards against a
//! generator regression silently shrinking what the campaigns test.

use std::collections::BTreeSet;
use suite::generator::{generate, GenConfig};
use vdg::build::{lower, BuildOptions};
use vdg::graph::NodeKind;

/// Stable label for a node kind (parameters that matter for coverage —
/// the `indirect` flags — get their own labels).
fn kind_label(kind: &NodeKind) -> &'static str {
    match kind {
        NodeKind::Base(_) => "base",
        NodeKind::Alloc(_) => "alloc",
        NodeKind::FuncConst(_) => "func_const",
        NodeKind::InitStore => "init_store",
        NodeKind::ScalarConst => "scalar_const",
        NodeKind::NullConst => "null_const",
        NodeKind::Member(_) => "member",
        NodeKind::IndexElem => "index_elem",
        NodeKind::PassThrough => "pass_through",
        NodeKind::ExtractField(_) => "extract_field",
        NodeKind::ExtractElem => "extract_elem",
        NodeKind::Primop => "primop",
        NodeKind::Gamma => "gamma",
        NodeKind::Lookup { indirect: false } => "lookup_direct",
        NodeKind::Lookup { indirect: true } => "lookup_indirect",
        NodeKind::Update { indirect: false } => "update_direct",
        NodeKind::Update { indirect: true } => "update_indirect",
        NodeKind::Call => "call",
        NodeKind::Return { .. } => "return",
        NodeKind::Entry { .. } => "entry",
        NodeKind::CopyMem => "copy_mem",
        NodeKind::Free => "free",
    }
}

const SWEEP: u64 = 150;

fn sweep_kinds(cfg: &GenConfig) -> BTreeSet<&'static str> {
    let mut seen = BTreeSet::new();
    for seed in 0..SWEEP {
        let src = generate(seed, cfg);
        let program = cfront::compile(&src)
            .unwrap_or_else(|e| panic!("seed {seed} must compile: {e}\n{src}"));
        let graph = lower(&program, &BuildOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed} must lower: {e}"));
        for (_, node) in graph.nodes() {
            seen.insert(kind_label(&node.kind));
        }
    }
    seen
}

#[test]
fn campaign_sweep_exercises_every_node_kind() {
    let seen = sweep_kinds(&GenConfig::campaign());
    let required = [
        "base",
        "alloc",
        "func_const",
        "init_store",
        "scalar_const",
        "null_const",
        "member",
        "index_elem",
        "pass_through",
        "primop",
        "gamma",
        "lookup_direct",
        "lookup_indirect",
        "update_direct",
        "update_indirect",
        "call",
        "return",
        "entry",
        "copy_mem",
        "free",
    ];
    let missing: Vec<&str> = required
        .iter()
        .copied()
        .filter(|k| !seen.contains(k))
        .collect();
    assert!(
        missing.is_empty(),
        "campaign sweep ({SWEEP} seeds) never produced node kind(s): {missing:?}\nsaw: {seen:?}"
    );
}

#[test]
fn campaign_sweep_emits_every_statement_form() {
    let cfg = GenConfig::campaign();
    let mut corpus = String::new();
    for seed in 0..SWEEP {
        corpus.push_str(&generate(seed, &cfg));
    }
    // Statement-form markers: classic shapes plus every campaign shape.
    let markers = [
        // classic
        "while (",
        "if (",
        "->v",
        "->p",
        "->next",
        "gfp = fn",
        "gfp(",
        "return",
        // pointer arrays (global, local, struct-held)
        "gparr[",
        "larr[",
        "gpack.slots[",
        // function-pointer table: retargets and indexed indirect calls
        "ftab[",
        "] = fn",
        "](",
        // heap blocks and whole-struct copies
        "malloc(",
        "free(",
        "memcpy(",
    ];
    let missing: Vec<&str> = markers
        .iter()
        .copied()
        .filter(|m| !corpus.contains(m))
        .collect();
    assert!(
        missing.is_empty(),
        "campaign sweep ({SWEEP} seeds) never emitted statement form(s): {missing:?}"
    );
}

#[test]
fn default_config_emits_no_campaign_shapes() {
    // The default generator stream is frozen (seed-tuned tests depend
    // on it); the campaign shapes must stay behind their knobs.
    let cfg = GenConfig::default();
    let mut corpus = String::new();
    for seed in 0..SWEEP {
        corpus.push_str(&generate(seed, &cfg));
    }
    for marker in ["gparr", "larr", "gpack", "ftab", "malloc(", "memcpy("] {
        assert!(
            !corpus.contains(marker),
            "default config must not emit campaign shape `{marker}`"
        );
    }
}
