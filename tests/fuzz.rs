//! Integration tests for the differential fuzzing subsystem: the
//! generator's printer round-trip, a clean multi-threaded campaign, the
//! planted-bug minimization bound, and the committed regression
//! fixture a past minimization produced.

use alias::{Fault, SolverSpec};
use engine::fuzz::fuzz;
use engine::FuzzConfig;
use suite::generator::{generate, GenConfig};
use vdg::build::{lower, BuildOptions};

/// Generated programs — with and without the recursion / indirect-call
/// features the fuzzer leans on — survive the pretty-printer
/// round-trip and compile from their printed form. This is the property
/// the shrinker depends on: every intermediate candidate it renders is
/// a standalone repro.
#[test]
fn generated_programs_round_trip_and_recompile() {
    let configs = [
        GenConfig::default(),
        GenConfig {
            recursion: false,
            indirect_calls: false,
            ..GenConfig::default()
        },
        GenConfig {
            funcs: 6,
            stmts_per_func: 14,
            ..GenConfig::default()
        },
    ];
    for seed in 0..24u64 {
        for cfg in &configs {
            let src = generate(seed, cfg);
            let p1 = cfront::parser::parse(cfront::lexer::lex(&src).unwrap()).unwrap();
            let once = cfront::pretty::print_program(&p1);
            let p2 = cfront::parser::parse(cfront::lexer::lex(&once).unwrap()).unwrap();
            let twice = cfront::pretty::print_program(&p2);
            assert_eq!(once, twice, "seed {seed}: printer not a parse fixpoint");
            cfront::compile(&once)
                .unwrap_or_else(|e| panic!("seed {seed}: printed form rejected: {e}"));
        }
    }
}

/// A multi-threaded campaign over healthy solvers reports no
/// violations: all five analyses are sound against the interpreter,
/// ordered on the checked lattice edges, and delta/naive-convergent on
/// every generated program.
#[test]
fn campaign_over_healthy_solvers_is_clean() {
    let cfg = FuzzConfig {
        seeds: 32,
        threads: 0,
        ..FuzzConfig::default()
    };
    let r = fuzz(&cfg);
    assert_eq!(r.seeds, 32);
    assert!(
        r.violations.is_empty(),
        "differential violations on healthy solvers: {:#?}",
        r.violations
            .iter()
            .map(|v| (v.seed, &v.kind, &v.solver, &v.detail))
            .collect::<Vec<_>>()
    );
}

/// The planted over-strong-update fault is caught as a soundness
/// violation and the delta-debugger shrinks the generated ~100-line
/// program to a repro of at most 25 lines.
#[test]
fn planted_fault_is_minimized_to_a_small_repro() {
    let cfg = FuzzConfig {
        seeds: 1,
        start_seed: 192,
        threads: 1,
        shrink: true,
        fault: Fault::OverStrongUpdates,
        ..FuzzConfig::default()
    };
    let r = fuzz(&cfg);
    let v = r
        .violations
        .iter()
        .find(|v| v.kind == "soundness")
        .expect("planted fault should surface as a soundness violation");
    let m = v
        .minimized
        .as_ref()
        .expect("soundness violations get shrink slots first");
    assert!(
        m.lines().count() <= 25,
        "minimizer stalled at {} lines:\n{m}",
        m.lines().count()
    );
    // The minimized repro must stand alone: compile, run, and still
    // expose the faulted CI to the oracle.
    let prog = cfront::compile(m).expect("minimized repro compiles");
    let graph = lower(&prog, &BuildOptions::default()).expect("lowers");
    let out = interp::run(&prog, &interp::Config::default()).expect("runs");
    let bad = SolverSpec::ci()
        .fault(Fault::OverStrongUpdates)
        .solve_ci(&graph);
    assert!(
        !interp::check_solution(&prog, &graph, &bad, &out.trace).is_empty(),
        "minimized repro no longer exposes the planted fault"
    );
}

/// Budget exhaustion is a *typed, deterministic* outcome, not a silent
/// degradation: a step-starved solver or interpreter marks the seed
/// over-budget, the count lands in the report (and its JSON), and a
/// healthy run reports zero. Wall-clock overruns stay a separate,
/// advisory counter.
#[test]
fn step_budget_exhaustion_is_a_typed_outcome() {
    // Solver step starvation: CS and k=1 exhaust on every seed.
    let cfg = FuzzConfig {
        seeds: 3,
        threads: 1,
        shrink: false,
        max_steps: 1,
        ..FuzzConfig::default()
    };
    let r = fuzz(&cfg);
    assert_eq!(
        r.over_budget, 3,
        "every step-starved seed must be typed over-budget"
    );
    assert!(r.to_json().contains("\"over_budget\": 3"));
    assert!(r.summary().contains("over step budget"));

    // Interpreter step starvation is the same typed outcome.
    let cfg = FuzzConfig {
        seeds: 3,
        threads: 1,
        shrink: false,
        interp_steps: 1,
        ..FuzzConfig::default()
    };
    let r = fuzz(&cfg);
    assert_eq!(r.over_budget, 3, "interp starvation must be typed too");

    // A healthy run types every seed as completed.
    let cfg = FuzzConfig {
        seeds: 3,
        threads: 1,
        shrink: false,
        ..FuzzConfig::default()
    };
    assert_eq!(fuzz(&cfg).over_budget, 0);
}

/// The shrinker's emitted repro is a standalone violating program *and*
/// a fixpoint of the shrinker itself — re-running the exact shrink
/// predicate on the minimized text finds the same violation, and
/// re-shrinking changes nothing. Campaign dedup fingerprints key off
/// minimized text, so both properties are load-bearing.
#[test]
fn minimized_repro_still_violates_standalone_and_is_a_shrink_fixpoint() {
    let cfg = FuzzConfig {
        seeds: 1,
        start_seed: 192,
        threads: 1,
        shrink: true,
        fault: Fault::OverStrongUpdates,
        ..FuzzConfig::default()
    };
    let r = fuzz(&cfg);
    let v = r
        .violations
        .iter()
        .find(|v| v.minimized.is_some())
        .expect("the top-ranked violation gets a shrink slot");
    let m = v.minimized.as_ref().unwrap();
    let labels = engine::fuzz::check_source_for_test(m, &cfg, v.seed);
    assert!(
        labels.iter().any(|(k, s)| *k == v.kind && *s == v.solver),
        "minimized repro must reproduce ({}, {}) standalone; got {labels:?}",
        v.kind,
        v.solver
    );
    let pred = |s: &str| {
        engine::fuzz::check_source_for_test(s, &cfg, v.seed)
            .iter()
            .any(|(k, sv)| *k == v.kind && *sv == v.solver)
    };
    let again = engine::shrink::shrink(m, &pred);
    assert_eq!(&again, m, "emitted repros must be shrink fixpoints");
}

/// The committed fixture — a past run's auto-minimized counterexample —
/// keeps regressing the over-strong-update fault: the healthy CI solver
/// is sound on it, the faulted one is not. The shape is minimal: a
/// list-step (`s = s->next`) makes the store's location set
/// multi-referent, the faulted transfer kills every referent's
/// bindings, and a later read observes the wrongly-killed one.
#[test]
fn committed_fixture_regresses_the_fault() {
    let src = include_str!("fixtures/weakened_strong_update.c");
    assert!(
        src.lines().count() <= 25,
        "fixture grew past the minimization bound"
    );
    let prog = cfront::compile(src).expect("fixture compiles");
    let graph = lower(&prog, &BuildOptions::default()).expect("fixture lowers");
    let out = interp::run(&prog, &interp::Config::default()).expect("fixture runs");

    let good = SolverSpec::ci().solve_ci(&graph);
    let v = interp::check_solution(&prog, &graph, &good, &out.trace);
    assert!(
        v.is_empty(),
        "healthy CI must be sound on the fixture: {v:#?}"
    );

    let bad = SolverSpec::ci()
        .fault(Fault::OverStrongUpdates)
        .solve_ci(&graph);
    let v = interp::check_solution(&prog, &graph, &bad, &out.trace);
    assert!(
        !v.is_empty(),
        "the over-strong-update fault must be observable on the fixture"
    );
}
