//! Golden-snapshot regression tests for the five solvers.
//!
//! One snapshot file per paper benchmark, holding the canonical
//! solution dump (`alias::solver::solution_dump`: sorted, rendered,
//! schedule- and numbering-independent) of every solver. Any change to
//! a solver's *results* — not its scheduling — shows up as a readable
//! diff against `tests/snapshots/<bench>.txt`.
//!
//! After an intentional precision change, refresh with:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p engine --test snapshots
//! ```

use alias::solver::solution_dump;
use engine::{Engine, Job};
use std::path::PathBuf;

fn snapshot_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/snapshots")
}

fn render(bench: &engine::BenchOutput) -> String {
    let mut out = String::new();
    for s in &bench.solutions {
        out.push_str(&format!("==== {} ====\n", s.analysis));
        match s.solution.as_deref() {
            Some(sol) => out.push_str(&solution_dump(sol, &bench.graph)),
            None => out.push_str(&format!(
                "error: {}\n",
                s.error.as_deref().unwrap_or("unknown")
            )),
        }
        out.push('\n');
    }
    out
}

#[test]
fn suite_solutions_match_golden_snapshots() {
    let update = std::env::var_os("UPDATE_SNAPSHOTS").is_some();
    let dir = snapshot_dir();
    let run = Engine::new().run(&Job::suite()).expect("suite run");
    assert_eq!(run.benches.len(), 13);
    let mut stale: Vec<String> = Vec::new();
    for b in &run.benches {
        let got = render(b);
        let path = dir.join(format!("{}.txt", b.name));
        if update {
            std::fs::create_dir_all(&dir).expect("snapshot dir");
            std::fs::write(&path, &got).expect("write snapshot");
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("missing snapshot {path:?}; run with UPDATE_SNAPSHOTS=1"));
        if got != want {
            // Report the first diverging line per benchmark, not a
            // multi-thousand-line assert diff.
            let g: Vec<&str> = got.lines().collect();
            let w: Vec<&str> = want.lines().collect();
            let k = g
                .iter()
                .zip(&w)
                .position(|(a, b)| a != b)
                .unwrap_or(g.len().min(w.len()));
            stale.push(format!(
                "{}: line {} differs\n  got:  {}\n  want: {}",
                b.name,
                k + 1,
                g.get(k).unwrap_or(&"<eof>"),
                w.get(k).unwrap_or(&"<eof>")
            ));
        }
    }
    assert!(
        stale.is_empty(),
        "stale snapshots (UPDATE_SNAPSHOTS=1 to refresh after an intentional change):\n{}",
        stale.join("\n")
    );
}

#[test]
fn snapshots_cover_every_benchmark_and_solver() {
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        // The update pass may still be writing files in parallel.
        return;
    }
    let dir = snapshot_dir();
    for b in suite::benchmarks() {
        let path = dir.join(format!("{}.txt", b.name));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("missing snapshot {path:?}; run with UPDATE_SNAPSHOTS=1"));
        for solver in ["weihl", "steensgaard", "ci", "k1", "cs"] {
            assert!(
                text.contains(&format!("==== {solver} ====")),
                "{}: snapshot lacks {solver} section",
                b.name
            );
        }
        assert!(
            !text.contains("error:"),
            "{}: snapshot recorded a solver failure",
            b.name
        );
    }
}
