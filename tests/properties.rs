//! Property-based tests over randomly generated pointer programs.
//!
//! Each property is exercised over a deterministic sweep of generator
//! seeds (the repo has no external property-testing dependency, so the
//! "shrinking" story is simply: the failing seed is printed and the
//! whole program is reproducible from it).

use alias::{cs_subset_of_ci, SolverSpec, WorklistOrder};
use suite::generator::{generate, GenConfig};
use vdg::build::{lower, BuildOptions};

/// Seeds swept by the whole-program properties.
const CASES: u64 = 48;
/// Seeds swept by the slower CS-ablation properties.
const SLOW_CASES: u64 = 12;

fn build(seed: u64) -> (cfront::Program, vdg::Graph) {
    let src = generate(seed, &GenConfig::default());
    let prog = cfront::compile(&src)
        .unwrap_or_else(|e| panic!("seed {seed}: generated program rejected:\n{src}\n{e}"));
    let graph = lower(&prog, &BuildOptions::default())
        .unwrap_or_else(|e| panic!("seed {seed}: lowering failed: {e}"));
    (prog, graph)
}

/// The stripped CS solution is contained in the CI solution.
#[test]
fn cs_subset_of_ci_on_random_programs() {
    for seed in 0..CASES {
        let (_, graph) = build(seed);
        let ci = SolverSpec::ci().solve_ci(&graph);
        let cs = SolverSpec::cs()
            .solve(&graph, Some(&ci))
            .expect("budget")
            .into_cs()
            .expect("cs result");
        assert!(cs_subset_of_ci(&graph, &ci, &cs), "seed {seed}");
    }
}

/// The CI fixpoint does not depend on worklist scheduling.
#[test]
fn fixpoint_is_scheduling_independent() {
    for seed in 0..CASES {
        let (_, graph) = build(seed);
        let fifo = SolverSpec::ci().solve_ci(&graph);
        let lifo = SolverSpec::ci().order(WorklistOrder::Lifo).solve_ci(&graph);
        // Compare by rendered content: path ids are interned in visit order.
        for o in graph.output_ids() {
            let render = |r: &alias::CiResult| {
                let mut v: Vec<(String, String)> = r
                    .pairs(o)
                    .iter()
                    .map(|p| {
                        (
                            r.paths.display(p.path, &graph),
                            r.paths.display(p.referent, &graph),
                        )
                    })
                    .collect();
                v.sort();
                v
            };
            assert_eq!(render(&fifo), render(&lifo), "seed {seed}");
        }
    }
}

/// Strong updates only remove pairs relative to the weak ablation.
#[test]
fn strong_updates_only_filter() {
    for seed in 0..CASES {
        let (_, graph) = build(seed);
        let strong = SolverSpec::ci().solve_ci(&graph);
        let weak = SolverSpec::ci().strong_updates(false).solve_ci(&graph);
        for o in graph.output_ids() {
            let w: std::collections::HashSet<_> = weak.pairs(o).iter().collect();
            for p in strong.pairs(o) {
                assert!(
                    w.contains(p),
                    "seed {seed}: strong found a pair weak missed"
                );
            }
        }
    }
}

/// Subsumption (§4.2) never changes the stripped CS solution.
#[test]
fn subsumption_preserves_results() {
    for seed in 0..SLOW_CASES {
        let (_, graph) = build(seed);
        let ci = SolverSpec::ci().solve_ci(&graph);
        let optimized = SolverSpec::cs()
            .solve(&graph, Some(&ci))
            .expect("budget")
            .into_cs()
            .expect("cs result");
        let no_subsume = SolverSpec::cs()
            .subsumption(false)
            .max_steps(30_000_000)
            .solve(&graph, Some(&ci))
            .map(|s| s.into_cs().expect("cs result"));
        // Without subsumption the algorithm may legitimately blow its
        // budget; when it finishes, the answers must agree.
        if let Ok(no_subsume) = no_subsume {
            for o in graph.output_ids() {
                assert_eq!(optimized.pairs(o), no_subsume.pairs(o), "seed {seed}");
            }
        }
    }
}

/// CI pruning (§4.2) is sandwiched: it can only *add* conservative
/// pairs relative to the maximally precise CS (the paper's footnote 8
/// caveat — contexts where an operation references zero locations),
/// and everything it adds is still within the CI solution.
#[test]
fn ci_pruning_is_sandwiched() {
    for seed in 0..SLOW_CASES {
        let (_, graph) = build(seed);
        let ci = SolverSpec::ci().solve_ci(&graph);
        let pruned = SolverSpec::cs()
            .solve(&graph, Some(&ci))
            .expect("budget")
            .into_cs()
            .expect("cs result");
        let maximal = SolverSpec::cs()
            .ci_pruning(false)
            .max_steps(30_000_000)
            .solve(&graph, Some(&ci))
            .map(|s| s.into_cs().expect("cs result"));
        assert!(cs_subset_of_ci(&graph, &ci, &pruned), "seed {seed}");
        if let Ok(maximal) = maximal {
            for o in graph.output_ids() {
                let p: std::collections::HashSet<_> = pruned.pairs(o).iter().collect();
                for pr in maximal.pairs(o) {
                    assert!(
                        p.contains(pr),
                        "seed {seed}: pruning lost a maximal-CS pair"
                    );
                }
            }
        }
    }
}

/// Every runtime dereference target is predicted by both analyses.
#[test]
fn runtime_soundness() {
    for seed in 0..CASES {
        let (prog, graph) = build(seed);
        let out = interp::run(&prog, &interp::Config::default())
            .unwrap_or_else(|e| panic!("seed {seed}: generated program crashed: {e}"));
        let ci = SolverSpec::ci().solve_ci(&graph);
        let v = interp::check_solution(&prog, &graph, &ci, &out.trace);
        assert!(v.is_empty(), "seed {seed}: CI violations: {v:#?}");
        let cs = SolverSpec::cs()
            .solve(&graph, Some(&ci))
            .expect("budget")
            .into_cs()
            .expect("cs result");
        let v = interp::check_solution(&prog, &graph, &cs, &out.trace);
        assert!(v.is_empty(), "seed {seed}: CS violations: {v:#?}");
    }
}

/// The baseline analyses bracket CI on random programs:
/// Weihl ⊇ CI, Steensgaard ⊇ CI (base-wise), CI ⊇ k=1 ⊇ maximal CS.
#[test]
fn baseline_spectrum_on_random_programs() {
    for seed in 0..CASES {
        let (_, graph) = build(seed);
        let ci = SolverSpec::ci().solve_ci(&graph);
        let w = SolverSpec::weihl()
            .solve(&graph, Some(&ci))
            .expect("no budget")
            .into_weihl()
            .expect("weihl result");
        assert!(
            alias::weihl::ci_subset_of_weihl(&graph, &ci, &w),
            "seed {seed}"
        );
        let mut st = SolverSpec::steensgaard()
            .solve(&graph, None)
            .expect("no budget")
            .into_steens()
            .expect("steensgaard result");
        assert!(
            alias::steensgaard::ci_within_steensgaard(&graph, &ci, &mut st),
            "seed {seed}"
        );
        let k1 = SolverSpec::k1()
            .solve(&graph, Some(&ci))
            .expect("budget")
            .into_k1()
            .expect("k1 result");
        for o in graph.output_ids() {
            let ci_set: std::collections::HashSet<_> = ci.pairs(o).iter().collect();
            for p in k1.pairs(o) {
                assert!(ci_set.contains(p), "seed {seed}");
            }
        }
    }
}

/// The baselines are sound against real executions too.
#[test]
fn baselines_runtime_sound_on_random_programs() {
    for seed in 0..CASES {
        let (prog, graph) = build(seed);
        let out = interp::run(&prog, &interp::Config::default())
            .unwrap_or_else(|e| panic!("seed {seed}: crashed: {e}"));
        let w = SolverSpec::weihl()
            .solve(&graph, None)
            .expect("no budget")
            .into_weihl()
            .expect("weihl result");
        let v = interp::check_solution(&prog, &graph, &w, &out.trace);
        assert!(v.is_empty(), "seed {seed}: Weihl violations: {v:#?}");
        let k1 = SolverSpec::k1()
            .solve(&graph, None)
            .expect("budget")
            .into_k1()
            .expect("k1 result");
        let v = interp::check_solution(&prog, &graph, &k1, &out.trace);
        assert!(v.is_empty(), "seed {seed}: k=1 violations: {v:#?}");
    }
}

/// The pretty-printer is a parse fixpoint on generated programs.
#[test]
fn printer_round_trips() {
    for seed in 0..CASES {
        let src = generate(seed, &GenConfig::default());
        let p1 = cfront::parser::parse(cfront::lexer::lex(&src).unwrap()).unwrap();
        let once = cfront::pretty::print_program(&p1);
        let p2 = cfront::parser::parse(cfront::lexer::lex(&once).unwrap()).unwrap();
        let twice = cfront::pretty::print_program(&p2);
        assert_eq!(once, twice, "seed {seed}");
    }
}

/// Larger generated programs also flow through the whole pipeline.
#[test]
fn big_programs_stay_within_budget() {
    for seed in 0..SLOW_CASES {
        let cfg = GenConfig {
            funcs: 8,
            stmts_per_func: 16,
            max_depth: 3,
            ..GenConfig::default()
        };
        let src = generate(seed, &cfg);
        let prog = cfront::compile(&src).expect("compiles");
        let graph = lower(&prog, &BuildOptions::default()).expect("lowers");
        let ci = SolverSpec::ci().solve_ci(&graph);
        let cs = SolverSpec::cs()
            .solve(&graph, Some(&ci))
            .expect("budget")
            .into_cs()
            .expect("cs result");
        assert!(cs_subset_of_ci(&graph, &ci, &cs), "seed {seed}");
    }
}

/// Client-level monotonicity: the paper's two motivating clients
/// (§3.2 mod/ref and def/use), computed at the base granularity every
/// solver supports, nest along the precision spectrum — CS ⊆ CI ⊆
/// Weihl/Steensgaard and k=1 ⊆ CI, per function and per use — over all
/// 13 paper benchmarks. Plus direct unit tests for the base-granular
/// variants on hand-written fixtures.
mod client_monotonicity {
    use alias::defuse::def_use_bases;
    use alias::modref::{mod_ref_bases, ModRefBasesSummary};
    use alias::SolverSpec;
    use vdg::build::{lower, BuildOptions};

    /// Solver chains where the left solution's base sets are contained
    /// in the right's at every output.
    const CHAINS: [(&str, &str); 4] = [
        ("cs", "ci"),
        ("k1", "ci"),
        ("ci", "weihl"),
        ("ci", "steensgaard"),
    ];

    fn pipeline(src: &str) -> (vdg::Graph, alias::CiResult) {
        let prog = cfront::compile(src).expect("compiles");
        let graph = lower(&prog, &BuildOptions::default()).expect("lowers");
        let ci = SolverSpec::ci().solve_ci(&graph);
        (graph, ci)
    }

    fn summaries(
        graph: &vdg::Graph,
        ci: &alias::CiResult,
    ) -> Vec<(String, ModRefBasesSummary, alias::defuse::DefUse)> {
        SolverSpec::all()
            .iter()
            .map(|spec| {
                let sol = spec.solve(graph, Some(ci)).expect("budget");
                (
                    spec.name().to_string(),
                    mod_ref_bases(graph, sol.as_ref(), &ci.callees),
                    def_use_bases(graph, sol.as_ref(), &ci.callees),
                )
            })
            .collect()
    }

    fn assert_nested(
        bench: &str,
        graph: &vdg::Graph,
        all: &[(String, ModRefBasesSummary, alias::defuse::DefUse)],
    ) {
        let by_name = |n: &str| {
            all.iter()
                .find(|(name, _, _)| name == n)
                .expect("solver ran")
        };
        for (fine, coarse) in CHAINS {
            let (_, f_mr, f_du) = by_name(fine);
            let (_, c_mr, c_du) = by_name(coarse);
            for func in graph.func_ids() {
                for (label, f_sum, c_sum) in [
                    ("direct", &f_mr.direct[&func], &c_mr.direct[&func]),
                    (
                        "transitive",
                        &f_mr.transitive[&func],
                        &c_mr.transitive[&func],
                    ),
                ] {
                    assert!(
                        f_sum.refs.is_subset(&c_sum.refs) && f_sum.mods.is_subset(&c_sum.mods),
                        "{bench}: {label} mod/ref of {} not nested {fine} ⊆ {coarse}",
                        graph.func(func).name
                    );
                }
            }
            for (lookup, f_defs) in &f_du.uses {
                let c_defs = c_du.defs_of(*lookup);
                for d in f_defs {
                    assert!(
                        c_defs.contains(d),
                        "{bench}: def/use edge {lookup:?} -> {d:?} in {fine} missing from {coarse}"
                    );
                }
            }
        }
    }

    #[test]
    fn modref_and_defuse_nest_across_solvers_on_the_suite() {
        for b in suite::benchmarks() {
            let (graph, ci) = pipeline(b.source);
            let all = summaries(&graph, &ci);
            assert_nested(b.name, &graph, &all);
        }
    }

    #[test]
    fn base_granular_modref_works_for_the_unification_baseline() {
        // Steensgaard has no per-point pair sets, so only the base
        // variant can summarize it; the indirect write through `p` must
        // land in poke's mod set under every solver.
        let (graph, ci) = pipeline(
            "int x; int y;\n\
             void poke(int *p) { *p = 7; }\n\
             int main(void) { poke(&x); poke(&y); return x + y; }",
        );
        let poke = graph
            .func_ids()
            .find(|&f| graph.func(f).name == "poke")
            .expect("poke exists");
        for (name, mr, _) in summaries(&graph, &ci) {
            assert!(
                mr.direct[&poke].mods.len() >= 2,
                "{name}: poke must modify both x and y"
            );
            assert!(
                mr.direct[&poke].refs.is_empty(),
                "{name}: poke reads nothing"
            );
        }
    }

    #[test]
    fn base_granular_defuse_has_no_strong_kills() {
        // The path-granular walk kills the first `g = 1` at the strong
        // update `g = 2`; the base-granular walk deliberately keeps it
        // (whole-base kills are unsound for interior paths), so the read
        // sees both defs. This asymmetry is what makes the base variant
        // monotone across solvers.
        let src = "int g; int main(void) { int *p; p = &g; g = 1; g = 2; return *p; }";
        let (graph, ci) = pipeline(src);
        let read = graph
            .indirect_mem_ops()
            .into_iter()
            .find(|&(_, w)| !w)
            .map(|(n, _)| n)
            .expect("indirect read");
        let path_du = alias::defuse::def_use(&graph, &ci, &ci.callees);
        let base_du = def_use_bases(&graph, &ci, &ci.callees);
        assert_eq!(path_du.defs_of(read).len(), 1, "strong kill applies");
        assert_eq!(
            base_du.defs_of(read).len(),
            2,
            "no kill at base granularity"
        );
    }
}

/// Access-path algebra properties, driven by op scripts drawn from the
/// suite's deterministic PRNG instead of a strategy combinator.
mod path_algebra {
    use alias::{AccessOp, PathTable};
    use suite::rng::Rng;
    use vdg::graph::{BaseInfo, BaseKind, FieldId};

    const CASES: u64 = 256;

    /// Builds a graph with `n` bases (alternating strong/weak) and returns
    /// paths assembled from the op script.
    fn table(n_bases: u32) -> (vdg::Graph, PathTable) {
        let mut g = vdg::Graph::new();
        for i in 0..n_bases {
            g.add_base(BaseInfo {
                kind: BaseKind::Global {
                    name: format!("b{i}"),
                },
                single_instance: i % 2 == 0,
                cooper_older: None,
                site_expr: None,
            });
        }
        let t = PathTable::for_graph(&g);
        (g, t)
    }

    fn build_path(t: &mut PathTable, base: u32, ops: &[u8]) -> alias::PathId {
        let mut p = t.base_root(vdg::BaseId(base));
        for &op in ops {
            let op = if op % 3 == 0 {
                AccessOp::Index
            } else {
                AccessOp::Field(FieldId((op % 5) as u32))
            };
            p = t.child(p, op);
        }
        p
    }

    /// Draws an op script of length `0..max_len` with values `0..8`.
    fn ops(rng: &mut Rng, max_len: usize) -> Vec<u8> {
        let len = rng.gen_range(0..max_len);
        (0..len).map(|_| rng.gen_range(0..8usize) as u8).collect()
    }

    /// `dom` is a partial order on paths.
    #[test]
    fn dom_is_a_partial_order() {
        for case in 0..CASES {
            let mut rng = Rng::seed_from_u64(case);
            let base = rng.gen_range(0..4usize) as u32;
            let ops_a = ops(&mut rng, 5);
            let ops_b = ops(&mut rng, 5);
            let ops_c = ops(&mut rng, 3);
            let (_, mut t) = table(4);
            let a = build_path(&mut t, base, &ops_a);
            let b = build_path(&mut t, base, &ops_b);
            // Reflexive.
            assert!(t.dom(a, a), "case {case}");
            // Antisymmetric.
            if t.dom(a, b) && t.dom(b, a) {
                assert_eq!(a, b, "case {case}");
            }
            // Transitive: extend b to get a guaranteed dominatee.
            let c = {
                let mut p = b;
                for &op in &ops_c {
                    let op = if op % 2 == 0 {
                        AccessOp::Index
                    } else {
                        AccessOp::Field(FieldId(1))
                    };
                    p = t.child(p, op);
                }
                p
            };
            assert!(t.dom(b, c), "case {case}");
            if t.dom(a, b) {
                assert!(t.dom(a, c), "case {case}");
            }
        }
    }

    /// `strong_dom ⊆ dom`, and indexes kill strong updateability.
    #[test]
    fn strong_dom_is_a_subrelation() {
        for case in 0..CASES {
            let mut rng = Rng::seed_from_u64(case);
            let base = rng.gen_range(0..4usize) as u32;
            let ops_a = ops(&mut rng, 5);
            let ops_b = ops(&mut rng, 5);
            let (_, mut t) = table(4);
            let a = build_path(&mut t, base, &ops_a);
            let b = build_path(&mut t, base, &ops_b);
            if t.strong_dom(a, b) {
                assert!(t.dom(a, b), "case {case}");
                assert!(t.strongly_updateable(a), "case {case}");
            }
            if ops_a.iter().any(|o| o % 3 == 0) {
                assert!(
                    !t.strongly_updateable(a),
                    "case {case}: index op must weaken"
                );
            }
        }
    }

    /// `append` and `subtract` are mutually inverse.
    #[test]
    fn append_subtract_inverse() {
        for case in 0..CASES {
            let mut rng = Rng::seed_from_u64(case);
            let base = rng.gen_range(0..4usize) as u32;
            let ops_a = ops(&mut rng, 4);
            let ops_off = ops(&mut rng, 4);
            let (_, mut t) = table(4);
            let a = build_path(&mut t, base, &ops_a);
            // Build an offset (no base) with the same op script rules.
            let mut off = PathTable::EMPTY;
            for &op in &ops_off {
                let op = if op % 3 == 0 {
                    AccessOp::Index
                } else {
                    AccessOp::Field(FieldId((op % 5) as u32))
                };
                off = t.child(off, op);
            }
            let joined = t.append(a, off);
            assert!(t.dom(a, joined), "case {case}");
            assert_eq!(t.subtract(joined, a), off, "case {case}");
            assert_eq!(t.append(a, PathTable::EMPTY), a, "case {case}");
        }
    }

    /// Paths with different bases never dominate each other.
    #[test]
    fn different_bases_never_alias() {
        for case in 0..CASES {
            let mut rng = Rng::seed_from_u64(case);
            let ops_a = ops(&mut rng, 4);
            let ops_b = ops(&mut rng, 4);
            let (_, mut t) = table(4);
            let a = build_path(&mut t, 0, &ops_a);
            let b = build_path(&mut t, 1, &ops_b);
            assert!(!t.dom(a, b), "case {case}");
            assert!(!t.dom(b, a), "case {case}");
        }
    }
}
