/* Planted fault: read through a pointer after its block is freed.
 * Minimal form of the fuzzer's planted-fault family; every solver
 * must flag the final load as use-after-free. */
int main(void) {
    int *p;
    p = (int *) malloc(sizeof(int));
    *p = 1;
    free(p);
    return *p;
}
