/* Planted fault: the store through p writes x, which no lookup ever
 * reads — a dead store under every solver. The store through q is
 * observed by the return and must stay unflagged. */
int main(void) {
    int x;
    int y;
    int *p;
    int *q;
    p = &x;
    q = &y;
    *p = 1;
    *q = 2;
    return *q;
}
