/* Planted fault: the same block freed twice through an alias.
 * Every solver sees {p, q} -> the same heap block, so the second
 * free must be flagged as double-free. */
int main(void) {
    int *p;
    int *q;
    p = (int *) malloc(sizeof(int));
    q = p;
    free(p);
    free(q);
    return 0;
}
