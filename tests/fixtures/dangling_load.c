/* Planted fault: a local's address escapes its frame through the
 * return value. Every solver must flag the return as dangling. */
int *make_dangling(void) {
    int local;
    local = 1;
    return &local;
}

int main(void) {
    int *p;
    p = make_dangling();
    return 0;
}
