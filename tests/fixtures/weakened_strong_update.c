struct node {
    int *p;
    struct node *next;
};
int *fn1(struct node *s) {
    int *q0;
    if (((s)->next != NULL)) {
        s = (s)->next;
    }
    (s)->p = q0;
}
int *fn3(struct node *s) {
    *((s)->p);
}
int main(void) {
    int m0;
    struct node n1;
    struct node n2;
    (n1).p = &(m0);
    (n1).next = &(n2);
    fn1(&(n1));
    fn3(&(n1));
}
