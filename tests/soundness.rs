//! Interpreter-backed soundness: every memory access observed while
//! executing a benchmark must be covered by both the CI and CS points-to
//! solutions at the corresponding VDG node, under both recursive-local
//! schemes. (The paper argues soundness informally; here it is checked
//! against real executions.)

use alias::SolverSpec;
use interp::{check_solution, run, Config};
use vdg::build::{lower, BuildOptions};
use vdg::RecLocalScheme;

fn check_benchmark(name: &str, scheme: RecLocalScheme) {
    let b = suite::by_name(name).expect("benchmark exists");
    let prog = cfront::compile(b.source).unwrap();
    let graph = lower(
        &prog,
        &BuildOptions {
            rec_local_scheme: scheme,
        },
    )
    .unwrap();
    let out = run(
        &prog,
        &Config {
            input: b.input.to_vec(),
            ..Config::default()
        },
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(out.exit, b.expected_exit, "{name}: wrong exit status");

    let ci = SolverSpec::ci().solve_ci(&graph);
    let v = check_solution(&prog, &graph, &ci, &out.trace);
    assert!(v.is_empty(), "{name}: CI unsound ({scheme:?}): {v:#?}");

    let cs = SolverSpec::cs()
        .solve(&graph, Some(&ci))
        .unwrap()
        .into_cs()
        .expect("cs result");
    let v = check_solution(&prog, &graph, &cs, &out.trace);
    assert!(v.is_empty(), "{name}: CS unsound ({scheme:?}): {v:#?}");
}

#[test]
fn all_benchmarks_sound_weak_scheme() {
    for b in suite::benchmarks() {
        check_benchmark(b.name, RecLocalScheme::Weak);
    }
}

#[test]
fn all_benchmarks_sound_cooper_scheme() {
    for b in suite::benchmarks() {
        check_benchmark(b.name, RecLocalScheme::Cooper);
    }
}

#[test]
fn weak_update_ablation_is_sound_too() {
    // Disabling strong updates loses precision, never soundness.
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        let out = run(
            &prog,
            &Config {
                input: b.input.to_vec(),
                ..Config::default()
            },
        )
        .unwrap();
        let ci = SolverSpec::ci().strong_updates(false).solve_ci(&graph);
        let v = check_solution(&prog, &graph, &ci, &out.trace);
        assert!(v.is_empty(), "{}: weak-update CI unsound: {v:#?}", b.name);
    }
}

#[test]
fn recursive_downward_escape_is_sound_under_both_schemes() {
    // The case the paper's footnote 4 worries about: a recursive
    // procedure passes the address of a local pointer downward, and the
    // analysis must not strongly update across live instances.
    let src = "int g1; int g2;\n\
         void set(int **slot, int *v) { *slot = v; }\n\
         int walk(int n, int **parent_slot) {\n\
           int *mine; int acc;\n\
           mine = &g1;\n\
           set(&mine, &g2);\n\
           if (n > 0) { acc = walk(n - 1, &mine); } else { acc = 0; }\n\
           *parent_slot = mine;\n\
           return acc + *mine;\n\
         }\n\
         int main(void) { int *top; top = &g1; g1 = 5; g2 = 7; \
           return walk(3, &top) + *top; }";
    let prog = cfront::compile(src).unwrap();
    let out = run(&prog, &Config::default()).unwrap();
    for scheme in [RecLocalScheme::Weak, RecLocalScheme::Cooper] {
        let graph = lower(
            &prog,
            &BuildOptions {
                rec_local_scheme: scheme,
            },
        )
        .unwrap();
        let ci = SolverSpec::ci().solve_ci(&graph);
        let v = check_solution(&prog, &graph, &ci, &out.trace);
        assert!(v.is_empty(), "{scheme:?}: {v:#?}");
        let cs = SolverSpec::cs()
            .solve(&graph, Some(&ci))
            .unwrap()
            .into_cs()
            .expect("cs result");
        let v = check_solution(&prog, &graph, &cs, &out.trace);
        assert!(v.is_empty(), "{scheme:?} CS: {v:#?}");
    }
}
