//! PR 6 integration tests for the persistent analysis service.
//!
//! Covers the three pillars of the serving layer:
//!
//! 1. **Restart-replay** (the tentpole guarantee): analyzing an edit
//!    chain with periodic service restarts against a disk store yields
//!    byte-identical fingerprints to an uninterrupted run — across 100
//!    edit steps.
//! 2. **Store robustness** (satellite 3): corrupt, truncated, and
//!    version-mismatched cache files are rejected with a clean
//!    cold-start fallback; answers never go stale and nothing panics.
//! 3. **Concurrency** (satellite 4): N interleaved socket clients get
//!    exactly the answers a serial in-process caller gets.

use proto::{JobSpec, QueryAnswer, QueryKind, Request, Response};
use serve::store::LoadOutcome;
use serve::{Service, ServiceOptions, Store};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruf95-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn service(dir: &Path) -> Service {
    Service::new(ServiceOptions {
        store_dir: Some(dir.to_path_buf()),
        mem_budget: 0,
        threads: 0,
    })
    .expect("open service")
}

fn memory_service() -> Service {
    Service::new(ServiceOptions::default()).expect("open service")
}

fn suite_jobs(take: usize) -> Vec<JobSpec> {
    suite::benchmarks()
        .iter()
        .take(take)
        .map(|b| JobSpec {
            name: b.name.to_string(),
            source: b.source.to_string(),
            input: b.input.to_vec(),
        })
        .collect()
}

fn analyze(svc: &mut Service, project: &str, jobs: &[JobSpec]) -> Response {
    svc.handle(&Request::Analyze {
        project: project.to_string(),
        jobs: jobs.to_vec(),
        fresh: false,
        want_report: false,
    })
}

/// Extracts every per-bench, per-solver fingerprint from an Analyzed
/// response as one flat, ordered, comparable vector.
fn fingerprints_of(resp: &Response) -> Vec<(String, String, Option<String>)> {
    match resp {
        Response::Analyzed { benches, .. } => benches
            .iter()
            .flat_map(|b| {
                b.solvers
                    .iter()
                    .map(move |s| (b.name.clone(), s.analysis.clone(), s.fp.clone()))
            })
            .collect(),
        other => panic!("expected Analyzed, got {other:?}"),
    }
}

fn report_fp_of(resp: &Response) -> String {
    match resp {
        Response::Analyzed { report_fp, .. } => report_fp.clone(),
        other => panic!("expected Analyzed, got {other:?}"),
    }
}

fn check_fp_of(resp: &Response) -> String {
    match resp {
        Response::Checked { check_fp, .. } => check_fp.clone(),
        other => panic!("expected Checked, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Tentpole: restart-replay equivalence across a 100-step edit chain.
// ---------------------------------------------------------------------

/// The daemon-restart replay harness. Two runs over the same 100-step
/// edit chain:
///
/// - run A: one service, never restarted, no disk store;
/// - run B: a disk-backed service dropped and recreated every 10 steps
///   (the process-level equivalent of killing and restarting the
///   daemon), forcing a store restore and tier-3 seeded resume.
///
/// Every step must produce byte-identical solver fingerprints and
/// report fingerprints in both runs.
#[test]
fn restart_replay_100_step_edit_chain() {
    let bench = &suite::benchmarks()[0];
    let chain = suite::edit::edit_chain(bench.source, 0x9e37_79b9, 100);
    assert!(
        chain.len() >= 100,
        "edit chain too short: {} steps",
        chain.len()
    );

    let dir = temp_dir("restart-replay");
    let mut uninterrupted = memory_service();
    let mut restarted = Some(service(&dir));

    for (i, step) in chain.iter().enumerate() {
        // Kill and resurrect the disk-backed service every 10 steps.
        if i > 0 && i % 10 == 0 {
            drop(restarted.take());
            restarted = Some(service(&dir));
        }
        let jobs = vec![JobSpec {
            name: bench.name.to_string(),
            source: step.source.clone(),
            input: bench.input.to_vec(),
        }];
        let a = analyze(&mut uninterrupted, "chain", &jobs);
        let b = analyze(restarted.as_mut().unwrap(), "chain", &jobs);
        assert_eq!(
            fingerprints_of(&a),
            fingerprints_of(&b),
            "solver fingerprints diverged at step {i} ({})",
            step.edit.description
        );
        assert_eq!(
            report_fp_of(&a),
            report_fp_of(&b),
            "report fingerprint diverged at step {i} ({})",
            step.edit.description
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restoring from disk with unchanged source must replay to the exact
/// fingerprints of the original run, and flag itself as restored.
#[test]
fn restore_after_restart_matches_original() {
    let dir = temp_dir("restore-match");
    let jobs = suite_jobs(3);

    let mut svc = service(&dir);
    let first = analyze(&mut svc, "proj", &jobs);
    drop(svc);

    let mut svc = service(&dir);
    let second = analyze(&mut svc, "proj", &jobs);
    assert_eq!(fingerprints_of(&first), fingerprints_of(&second));
    assert_eq!(report_fp_of(&first), report_fp_of(&second));
    match &second {
        Response::Analyzed { serve, .. } => {
            assert!(serve.restored, "second service should restore from disk");
        }
        other => panic!("expected Analyzed, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Check fingerprints also survive a restart: same diagnostics, same
/// bytes.
#[test]
fn check_fingerprint_survives_restart() {
    let dir = temp_dir("check-restart");
    let jobs = suite_jobs(2);
    let req = Request::Check {
        project: "proj".into(),
        jobs: jobs.clone(),
        analysis: "ci".into(),
        want_report: false,
    };

    let mut svc = service(&dir);
    let first = check_fp_of(&svc.handle(&req));
    drop(svc);

    let mut svc = service(&dir);
    let second = check_fp_of(&svc.handle(&req));
    assert_eq!(first, second);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Queries answered from a restored session (no analyze request in
/// this process lifetime) match queries against a live session.
#[test]
fn query_after_restart_matches_live() {
    let dir = temp_dir("query-restart");
    let jobs = suite_jobs(1);
    let bench = jobs[0].name.clone();
    let query = |svc: &mut Service| {
        svc.handle(&Request::Query {
            project: "proj".into(),
            bench: bench.clone(),
            analysis: "ci".into(),
            query: QueryKind::ReferentsAt { site: 0 },
            job: None,
        })
    };

    let mut svc = service(&dir);
    analyze(&mut svc, "proj", &jobs);
    let live = query(&mut svc);
    drop(svc);

    // The restored service sees only the disk store; the query must
    // demand-analyze from the stored source and then agree.
    let mut svc = service(&dir);
    let restored = query(&mut svc);
    match (&live, &restored) {
        (Response::QueryResult { answer: a, .. }, Response::QueryResult { answer: b, .. }) => {
            assert_eq!(a, b)
        }
        other => panic!("expected two QueryResults, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Satellite 3: disk-store robustness.
// ---------------------------------------------------------------------

/// Writes a valid project file, then clobbers it in `mutate`, and
/// asserts that (a) the store rejects it without panicking and (b) a
/// service over the damaged store cold-starts to the same fingerprints
/// as a pristine service.
fn assert_cold_start_fallback(tag: &str, mutate: impl FnOnce(&Path)) {
    let dir = temp_dir(tag);
    let jobs = suite_jobs(2);
    let mut svc = service(&dir);
    let clean = analyze(&mut svc, "proj", &jobs);
    drop(svc);

    let file = Store::open(&dir).expect("open store").path_of("proj");
    assert!(file.exists(), "expected a persisted project file");
    mutate(&file);

    let store = Store::open(&dir).expect("open store");
    match store.load("proj") {
        LoadOutcome::Loaded(_) => panic!("{tag}: damaged store file was accepted"),
        LoadOutcome::Missing | LoadOutcome::Rejected { .. } => {}
    }

    let mut svc = service(&dir);
    let fallback = analyze(&mut svc, "proj", &jobs);
    assert_eq!(
        fingerprints_of(&clean),
        fingerprints_of(&fallback),
        "{tag}: cold-start answers diverged from the clean run"
    );
    match &fallback {
        Response::Analyzed { serve, .. } => {
            assert!(
                !serve.restored,
                "{tag}: damaged store must not seed a session"
            );
        }
        other => panic!("expected Analyzed, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_store_file_cold_starts() {
    assert_cold_start_fallback("truncate", |file| {
        let text = std::fs::read_to_string(file).unwrap();
        std::fs::write(file, &text[..text.len() / 2]).unwrap();
    });
}

#[test]
fn corrupted_store_payload_cold_starts() {
    assert_cold_start_fallback("corrupt", |file| {
        let mut bytes = std::fs::read(file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(file, bytes).unwrap();
    });
}

#[test]
fn version_mismatched_store_file_cold_starts() {
    assert_cold_start_fallback("version", |file| {
        let text = std::fs::read_to_string(file).unwrap();
        std::fs::write(file, text.replacen("ruf95-store v2 ", "ruf95-store v9 ", 1)).unwrap();
    });
}

/// A pre-unification `v1` store (CI-only summary schema) must be
/// rejected wholesale and cold-start, not half-decoded.
#[test]
fn v1_store_file_cold_starts() {
    assert_cold_start_fallback("v1", |file| {
        let text = std::fs::read_to_string(file).unwrap();
        std::fs::write(file, text.replacen("ruf95-store v2 ", "ruf95-store v1 ", 1)).unwrap();
    });
}

#[test]
fn garbage_store_file_cold_starts() {
    assert_cold_start_fallback("garbage", |file| {
        std::fs::write(file, "not a store file at all\n").unwrap();
    });
}

/// Stale stored summaries must never leak into answers for changed
/// source: the service recomputes everything the summaries merely seed.
#[test]
fn stale_store_cannot_leak_into_answers() {
    let dir = temp_dir("stale");
    let jobs_v1 = vec![JobSpec {
        name: "prog".into(),
        source: "int main() { int x; int *p; p = &x; *p = 1; return *p; }".into(),
        input: Vec::new(),
    }];
    let jobs_v2 = vec![JobSpec {
        name: "prog".into(),
        source: "int main() { int x; int y; int *p; p = &y; *p = 2; return *p; }".into(),
        input: Vec::new(),
    }];
    // Persist v1, then send v2 through a fresh service over the same
    // store: the stored v1 summaries must not leak into v2's answers.
    let mut svc = service(&dir);
    analyze(&mut svc, "proj", &jobs_v1);
    drop(svc);
    let mut stale = service(&dir);
    let stale_resp = analyze(&mut stale, "proj", &jobs_v2);
    let mut clean = memory_service();
    let clean_resp = analyze(&mut clean, "proj", &jobs_v2);
    assert_eq!(fingerprints_of(&stale_resp), fingerprints_of(&clean_resp));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Satellite 4: concurrent clients vs serial in-process.
// ---------------------------------------------------------------------

/// The per-client request script: analyze a project, query two sites,
/// check — returning the comparable parts of every response.
fn client_script(project: &str) -> Vec<Request> {
    let jobs = suite_jobs(2);
    let bench = jobs[0].name.clone();
    vec![
        Request::Analyze {
            project: project.to_string(),
            jobs: jobs.clone(),
            fresh: false,
            want_report: false,
        },
        Request::Query {
            project: project.to_string(),
            bench: bench.clone(),
            analysis: "ci".into(),
            query: QueryKind::MayAlias { a: 0, b: 1 },
            job: None,
        },
        Request::Query {
            project: project.to_string(),
            bench,
            analysis: "steensgaard".into(),
            query: QueryKind::ReferentsAt { site: 0 },
            job: None,
        },
        Request::Check {
            project: project.to_string(),
            jobs,
            analysis: "ci".into(),
            want_report: false,
        },
    ]
}

/// Strips the non-deterministic parts (latencies, replay counters) so
/// concurrent and serial responses compare equal.
fn comparable(resp: &Response) -> String {
    match resp {
        Response::Analyzed {
            project,
            benches,
            report_fp,
            ..
        } => format!("analyzed {project} {benches:?} {report_fp}"),
        Response::Checked {
            project,
            benches,
            check_fp,
            monotone_violation,
            refuted,
            ..
        } => {
            let solvers: Vec<_> = benches.iter().map(|b| (&b.name, &b.solvers)).collect();
            format!("checked {project} {solvers:?} {check_fp} {monotone_violation:?} {refuted:?}")
        }
        Response::QueryResult {
            bench,
            analysis,
            answer,
            ..
        } => format!("query {bench} {analysis} {answer:?}"),
        other => format!("{other:?}"),
    }
}

#[test]
fn concurrent_clients_match_serial_in_process() {
    const CLIENTS: usize = 4;
    let svc = memory_service();
    let handle = serve::daemon::spawn(svc, "127.0.0.1:0").expect("bind daemon");
    let addr = handle.addr();

    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let project = format!("proj{t}");
                let mut client = serve::Client::connect(addr).expect("connect");
                client_script(&project)
                    .iter()
                    .map(|req| comparable(&client.request(req).expect("request")))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let concurrent: Vec<Vec<String>> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    serve::request(addr, &Request::Shutdown).expect("shutdown");
    handle.join();

    // Serial oracle: one fresh in-process service, same scripts.
    for (t, got) in concurrent.iter().enumerate() {
        let mut oracle = memory_service();
        let want: Vec<String> = client_script(&format!("proj{t}"))
            .iter()
            .map(|req| comparable(&oracle.handle(req)))
            .collect();
        assert_eq!(&want, got, "client {t} diverged from serial in-process run");
    }
}

/// Two projects sharing one service must not observe each other's
/// state: evicting one leaves the other's session (and answers) alone.
#[test]
fn project_sessions_are_isolated() {
    let mut svc = memory_service();
    let jobs = suite_jobs(1);
    let a1 = analyze(&mut svc, "alpha", &jobs);
    analyze(&mut svc, "beta", &jobs);
    match svc.handle(&Request::Evict {
        project: Some("beta".into()),
    }) {
        Response::Ok => {}
        other => panic!("expected Ok, got {other:?}"),
    }
    let a2 = analyze(&mut svc, "alpha", &jobs);
    assert_eq!(fingerprints_of(&a1), fingerprints_of(&a2));
    match svc.handle(&Request::Stats) {
        Response::Stats { projects, .. } => {
            let names: Vec<_> = projects.iter().map(|p| p.name.as_str()).collect();
            assert!(names.contains(&"alpha"));
            assert!(!names.contains(&"beta"), "beta should be evicted");
        }
        other => panic!("expected Stats, got {other:?}"),
    }
}

/// Session eviction under a tiny memory budget must keep answers
/// correct (evicted projects transparently restore from disk).
#[test]
fn lru_eviction_under_budget_preserves_answers() {
    let dir = temp_dir("lru");
    let mut svc = Service::new(ServiceOptions {
        store_dir: Some(dir.to_path_buf()),
        mem_budget: 1, // absurdly small: every request evicts the rest
        threads: 0,
    })
    .expect("open service");
    let jobs = suite_jobs(1);
    let first = analyze(&mut svc, "alpha", &jobs);
    analyze(&mut svc, "beta", &jobs);
    analyze(&mut svc, "gamma", &jobs);
    let again = analyze(&mut svc, "alpha", &jobs);
    assert_eq!(fingerprints_of(&first), fingerprints_of(&again));
    match svc.handle(&Request::Stats) {
        Response::Stats { evictions, .. } => {
            assert!(evictions > 0, "budget of 1 byte must force evictions");
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Protocol-level sanity over the socket.
// ---------------------------------------------------------------------

#[test]
fn malformed_frame_gets_error_not_disconnect() {
    use std::io::{BufRead, BufReader, Write};
    let svc = memory_service();
    let handle = serve::daemon::spawn(svc, "127.0.0.1:0").expect("bind daemon");
    let stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    writer.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("error"),
        "expected an error frame, got {line:?}"
    );

    // The connection survives: a well-formed request still works.
    let mut client_line = proto::Request::Stats.to_value().render();
    client_line.push('\n');
    writer.write_all(client_line.as_bytes()).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("stats"),
        "expected a stats frame, got {line:?}"
    );

    drop(writer);
    serve::request(handle.addr(), &Request::Shutdown).expect("shutdown");
    handle.join();
}

#[test]
fn unknown_bench_and_bad_site_are_clean_errors() {
    let mut svc = memory_service();
    match svc.handle(&Request::Query {
        project: "proj".into(),
        bench: "nope".into(),
        analysis: "ci".into(),
        query: QueryKind::ReferentsAt { site: 0 },
        job: None,
    }) {
        Response::Error { message } => assert!(message.contains("analyze")),
        other => panic!("expected Error, got {other:?}"),
    }
    let jobs = suite_jobs(1);
    analyze(&mut svc, "proj", &jobs);
    match svc.handle(&Request::Query {
        project: "proj".into(),
        bench: jobs[0].name.clone(),
        analysis: "ci".into(),
        query: QueryKind::ReferentsAt { site: 100_000 },
        job: None,
    }) {
        Response::Error { message } => assert!(message.contains("out of range")),
        other => panic!("expected Error, got {other:?}"),
    }
    match svc.handle(&Request::Analyze {
        project: "../escape".into(),
        jobs,
        fresh: false,
        want_report: false,
    }) {
        Response::Error { message } => assert!(message.contains("invalid project")),
        other => panic!("expected Error, got {other:?}"),
    }
}

#[test]
fn may_alias_is_symmetric_and_witnessed() {
    let mut svc = memory_service();
    let jobs = vec![JobSpec {
        name: "alias".into(),
        source: "int main() { int x; int *p; int *q; p = &x; q = &x; *p = 1; return *q; }".into(),
        input: Vec::new(),
    }];
    analyze(&mut svc, "proj", &jobs);
    let ask = |svc: &mut Service, a: usize, b: usize| -> (bool, Vec<String>) {
        match svc.handle(&Request::Query {
            project: "proj".into(),
            bench: "alias".into(),
            analysis: "ci".into(),
            query: QueryKind::MayAlias { a, b },
            job: None,
        }) {
            Response::QueryResult {
                answer:
                    QueryAnswer::MayAlias {
                        may_alias,
                        witnesses,
                        ..
                    },
                ..
            } => (may_alias, witnesses),
            other => panic!("expected MayAlias answer, got {other:?}"),
        }
    };
    let (ab, wit_ab) = ask(&mut svc, 0, 1);
    let (ba, wit_ba) = ask(&mut svc, 1, 0);
    assert!(ab, "*p and *q both point at x: must alias");
    assert_eq!(ab, ba, "may-alias must be symmetric");
    assert_eq!(wit_ab, wit_ba);
    assert!(
        wit_ab.iter().any(|w| w.contains('x')),
        "witness should name x, got {wit_ab:?}"
    );
}
