//! Checker-level acceptance tests for the memory-safety subsystem:
//!
//! * the planted-fault fixtures under `tests/fixtures/` are flagged by
//!   every one of the five solvers,
//! * the 13 suite benchmarks produce zero oracle-refuted diagnostics
//!   (no runtime fault the checkers missed) and their false-positive
//!   counts are monotone along the precision spectrum,
//! * golden diagnostic snapshots (13 benchmarks × 5 solvers) under
//!   `tests/snapshots/checks/`, refreshed like the solver snapshots:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p engine --test checkers
//! ```

use engine::{Engine, Job};
use std::path::PathBuf;

fn repo_tests_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests")
}

fn fixture(name: &str) -> String {
    let path = repo_tests_dir().join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"))
}

#[test]
fn planted_fixtures_are_flagged_by_every_solver() {
    use checker::CheckKind;
    let cases = [
        ("use_after_free.c", CheckKind::UseAfterFree),
        ("double_free.c", CheckKind::DoubleFree),
        ("dangling_load.c", CheckKind::DanglingLocal),
        ("dead_store.c", CheckKind::DeadStore),
    ];
    for (file, kind) in cases {
        let src = fixture(file);
        let prog = cfront::compile(&src).unwrap_or_else(|e| panic!("{file}: {e:?}"));
        let graph = vdg::build::lower(&prog, &vdg::build::BuildOptions::default())
            .unwrap_or_else(|e| panic!("{file}: {e:?}"));
        let ci = alias::SolverSpec::ci().solve_ci(&graph);
        for spec in alias::SolverSpec::all() {
            let sol = spec
                .solve(&graph, Some(&ci))
                .unwrap_or_else(|e| panic!("{file}: {} failed: {e}", spec.name()));
            let diags = checker::run_checks(&graph, sol.as_ref(), &ci.callees);
            assert!(
                diags.iter().any(|d| d.kind == kind),
                "{file}: solver {} does not flag the planted {:?}; got {:?}",
                spec.name(),
                kind,
                diags.iter().map(|d| d.kind).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn dead_store_fixture_keeps_the_observed_store_unflagged() {
    let src = fixture("dead_store.c");
    let prog = cfront::compile(&src).expect("compiles");
    let graph = vdg::build::lower(&prog, &vdg::build::BuildOptions::default()).expect("lowers");
    let ci = alias::SolverSpec::ci().solve_ci(&graph);
    let diags = checker::run_checks(&graph, &ci, &ci.callees);
    let dead: Vec<_> = diags
        .iter()
        .filter(|d| d.kind == checker::CheckKind::DeadStore)
        .collect();
    assert_eq!(dead.len(), 1, "exactly the store of x is dead: {dead:?}");
}

#[test]
fn suite_checks_have_no_refuted_diagnostics_and_monotone_fps() {
    let mut run = Engine::new().run(&Job::suite()).expect("suite run");
    let checks = run.run_checks();
    assert_eq!(checks.len(), 13);
    for bc in &checks {
        for row in &bc.rows {
            assert!(
                row.refuted.is_none(),
                "{}: solver {} missed an oracle-trapped fault: {:?}",
                bc.name,
                row.solver,
                row.refuted
            );
        }
    }
    assert_eq!(engine::check::fp_monotone_violation(&checks), None);
    // Check metrics landed in the report for every (bench, solver).
    for b in &run.report.benchmarks {
        for s in &b.solvers {
            assert!(
                s.checks.is_some(),
                "{}/{}: no check row",
                b.name,
                s.analysis
            );
        }
    }
}

fn render_checks(b: &engine::BenchOutput, bc: &engine::BenchChecks) -> String {
    let file = cfront::SourceFile::new(&b.name, &b.source);
    let mut out = String::new();
    for row in &bc.rows {
        out.push_str(&format!("==== {} ====\n", row.solver));
        for l in &row.labeled {
            let lc = file.line_col(l.diag.span.start);
            out.push_str(&format!(
                "{}:{} [{}] {} ({})\n",
                lc.line,
                lc.col,
                l.diag.kind.name(),
                l.diag.message,
                l.label.name()
            ));
        }
        out.push('\n');
    }
    out
}

#[test]
fn suite_diagnostics_match_golden_snapshots() {
    let update = std::env::var_os("UPDATE_SNAPSHOTS").is_some();
    let dir = repo_tests_dir().join("snapshots/checks");
    let mut run = Engine::new().run(&Job::suite()).expect("suite run");
    let checks = run.run_checks();
    let mut stale: Vec<String> = Vec::new();
    for (b, bc) in run.benches.iter().zip(&checks) {
        let got = render_checks(b, bc);
        let path = dir.join(format!("{}.txt", b.name));
        if update {
            std::fs::create_dir_all(&dir).expect("snapshot dir");
            std::fs::write(&path, &got).expect("write snapshot");
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("missing snapshot {path:?}; run with UPDATE_SNAPSHOTS=1"));
        if got != want {
            let g: Vec<&str> = got.lines().collect();
            let w: Vec<&str> = want.lines().collect();
            let k = g
                .iter()
                .zip(&w)
                .position(|(a, b)| a != b)
                .unwrap_or(g.len().min(w.len()));
            stale.push(format!(
                "{}: line {} differs\n  got:  {}\n  want: {}",
                b.name,
                k + 1,
                g.get(k).unwrap_or(&"<eof>"),
                w.get(k).unwrap_or(&"<eof>")
            ));
        }
    }
    assert!(
        stale.is_empty(),
        "stale check snapshots (UPDATE_SNAPSHOTS=1 to refresh after an intentional change):\n{}",
        stale.join("\n")
    );
}

#[test]
fn check_snapshots_cover_every_benchmark_and_solver() {
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        // The update pass may still be writing files in parallel.
        return;
    }
    let dir = repo_tests_dir().join("snapshots/checks");
    for b in suite::benchmarks() {
        let path = dir.join(format!("{}.txt", b.name));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("missing snapshot {path:?}; run with UPDATE_SNAPSHOTS=1"));
        for solver in ["weihl", "steensgaard", "ci", "k1", "cs"] {
            assert!(
                text.contains(&format!("==== {solver} ====")),
                "{}: check snapshot lacks {solver} section",
                b.name
            );
        }
    }
}
