//! The precision spectrum over the whole benchmark suite:
//!
//! ```text
//! Weihl (program-wide)      ⊒ CI ⊒ k=1 call-strings
//! Steensgaard (unification) ⊒ CI        (at base-location granularity)
//! ```
//!
//! plus runtime soundness of every baseline against the interpreter.
//! (k=1 and assumption-set CS are pointwise incomparable — see
//! DESIGN.md §"Differential fuzzing" — so neither appears below the
//! other here; both
//! refine CI, which `engine::fuzz` checks on generated programs.)
//!
//! Every solver is constructed through [`alias::SolverSpec`]; the
//! free `analyze_*` entry points stay internal to `crates/alias`.

use alias::steensgaard::{ci_referent_bases, ci_within_steensgaard};
use alias::weihl::ci_subset_of_weihl;
use alias::{HeapNaming, Pair, SolverSpec};
use std::collections::HashSet;
use vdg::build::{lower, BuildOptions};

fn build(src: &str) -> (cfront::Program, vdg::Graph, alias::CiResult) {
    let prog = cfront::compile(src).unwrap();
    let graph = lower(&prog, &BuildOptions::default()).unwrap();
    let ci = SolverSpec::ci().solve_ci(&graph);
    (prog, graph, ci)
}

#[test]
fn ci_within_weihl_on_suite() {
    for b in suite::benchmarks() {
        let (_, graph, ci) = build(b.source);
        let w = SolverSpec::weihl()
            .solve(&graph, Some(&ci))
            .expect("no budget")
            .into_weihl()
            .expect("weihl result");
        assert!(
            ci_subset_of_weihl(&graph, &ci, &w),
            "{}: CI escaped the program-wide solution",
            b.name
        );
        // (allroots legitimately has an empty pointer store: its arrays
        // hold doubles, matching its all-zero store column in Figure 3.)
    }
}

#[test]
fn ci_within_steensgaard_on_suite() {
    for b in suite::benchmarks() {
        let (_, graph, ci) = build(b.source);
        let mut st = SolverSpec::steensgaard()
            .solve(&graph, None)
            .expect("no budget")
            .into_steens()
            .expect("steensgaard result");
        assert!(
            ci_within_steensgaard(&graph, &ci, &mut st),
            "{}: CI escaped the unification solution",
            b.name
        );
    }
}

#[test]
fn k1_within_ci_and_headline_holds_for_k1_too() {
    // k=1 is contained in CI per output; and since CS == CI at indirect
    // references on this suite (tests/headline.rs) and CS-at-derefs ⊆
    // k1-at-derefs ⊆ CI-at-derefs, k=1 must also equal CI there.
    for b in suite::benchmarks() {
        let (_, graph, ci) = build(b.source);
        let k1 = SolverSpec::k1()
            .solve(&graph, Some(&ci))
            .unwrap_or_else(|e| panic!("{}: {e}", b.name))
            .into_k1()
            .expect("k1 result");
        for o in graph.output_ids() {
            let ci_set: HashSet<Pair> = ci.pairs(o).iter().copied().collect();
            for p in k1.pairs(o) {
                assert!(ci_set.contains(p), "{}: k=1 pair outside CI", b.name);
            }
        }
        for (node, _) in graph.indirect_mem_ops() {
            assert_eq!(
                ci.loc_referents(&graph, node),
                k1.loc_referents(&graph, node),
                "{}: k=1 differs from CI at a deref",
                b.name
            );
        }
    }
}

#[test]
fn steensgaard_is_coarser_or_equal_at_every_op() {
    // Per memory op, the unification answer (in bases) contains the CI
    // answer; over the suite it is strictly coarser somewhere.
    let mut strictly_coarser = false;
    for b in suite::benchmarks() {
        let (_, graph, ci) = build(b.source);
        let mut st = SolverSpec::steensgaard()
            .solve(&graph, None)
            .expect("no budget")
            .into_steens()
            .expect("steensgaard result");
        for (node, _) in graph.all_mem_ops() {
            let fine = ci_referent_bases(&ci, &graph, node);
            let coarse = st.loc_bases(&graph, node);
            if coarse.len() > fine.len() {
                strictly_coarser = true;
            }
        }
    }
    assert!(
        strictly_coarser,
        "unification should lose precision somewhere on a 13-program suite"
    );
}

#[test]
fn baselines_are_runtime_sound() {
    for b in suite::benchmarks() {
        let (prog, graph, _) = build(b.source);
        let out = interp::run(
            &prog,
            &interp::Config {
                input: b.input.to_vec(),
                ..interp::Config::default()
            },
        )
        .unwrap();
        let w = SolverSpec::weihl()
            .solve(&graph, None)
            .expect("no budget")
            .into_weihl()
            .expect("weihl result");
        let v = interp::check_solution(&prog, &graph, &w, &out.trace);
        assert!(v.is_empty(), "{}: Weihl unsound: {v:#?}", b.name);
        let k1 = SolverSpec::k1()
            .solve(&graph, None)
            .unwrap()
            .into_k1()
            .expect("k1 result");
        let v = interp::check_solution(&prog, &graph, &k1, &out.trace);
        assert!(v.is_empty(), "{}: k=1 unsound: {v:#?}", b.name);
    }
}

#[test]
fn steensgaard_is_runtime_sound_at_base_granularity() {
    // The unification result predicts base-locations; every concrete
    // dereference base must be covered.
    for b in suite::benchmarks() {
        let (prog, graph, ci) = build(b.source);
        let out = interp::run(
            &prog,
            &interp::Config {
                input: b.input.to_vec(),
                ..interp::Config::default()
            },
        )
        .unwrap();
        // CI is runtime-sound (tests/soundness.rs); if CI bases are
        // within Steensgaard's bases at every op (checked above), then
        // Steensgaard is sound by inclusion. Assert the chain explicitly.
        let mut st = SolverSpec::steensgaard()
            .solve(&graph, None)
            .expect("no budget")
            .into_steens()
            .expect("steensgaard result");
        assert!(ci_within_steensgaard(&graph, &ci, &mut st), "{}", b.name);
        let v = interp::check_solution(&prog, &graph, &ci, &out.trace);
        assert!(v.is_empty(), "{}", b.name);
    }
}

#[test]
fn k1_heap_naming_is_a_refinement() {
    // Collapsing the per-caller heap clones recovers (a subset of) the
    // site-named CI solution on every benchmark, and the §5.1.1 effect
    // shows somewhere: at least one program's pair pool grows.
    let mut grew = false;
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        let site = SolverSpec::ci().solve_ci(&graph);
        let k1 = SolverSpec::ci()
            .heap_naming(HeapNaming::CallString1)
            .solve_ci(&graph);
        if k1.total_pairs() > site.total_pairs() {
            grew = true;
        }
        let mut k1_paths = k1.paths.clone();
        for o in graph.output_ids() {
            let site_set: HashSet<(String, String)> = site
                .pairs(o)
                .iter()
                .map(|p| {
                    (
                        site.paths.display(p.path, &graph),
                        site.paths.display(p.referent, &graph),
                    )
                })
                .collect();
            for pr in k1.pairs(o) {
                let c = (
                    {
                        let x = k1_paths.collapse_synthetic(pr.path);
                        k1_paths.display(x, &graph)
                    },
                    {
                        let x = k1_paths.collapse_synthetic(pr.referent);
                        k1_paths.display(x, &graph)
                    },
                );
                assert!(
                    site_set.contains(&c),
                    "{}: collapsed k=1 pair escaped the site solution: {c:?}",
                    b.name
                );
            }
        }
    }
    assert!(grew, "finer heap naming should enlarge some pair pool");
}

#[test]
fn k1_heap_naming_is_runtime_sound() {
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        let out = interp::run(
            &prog,
            &interp::Config {
                input: b.input.to_vec(),
                ..interp::Config::default()
            },
        )
        .unwrap();
        let k1 = SolverSpec::ci()
            .heap_naming(HeapNaming::CallString1)
            .solve_ci(&graph);
        let v = interp::check_solution(&prog, &graph, &k1, &out.trace);
        assert!(v.is_empty(), "{}: k=1 heap naming unsound: {v:#?}", b.name);
    }
}
