//! Demand-driven query equivalence harness (PR 7, satellite 2).
//!
//! The demand solver's contract is exactness: every answer it gives —
//! referent sets and may-alias verdicts alike — must be *identical* to
//! what the exhaustive CI fixpoint would say, on every benchmark, at
//! every site. No approximation is tolerated; the demand machinery is
//! an evaluation-order optimization, not a new abstraction.
//!
//! Three layers of evidence:
//!
//! 1. Suite-wide equivalence: both query kinds at every indirect
//!    memory site of all thirteen bundled benchmarks agree with the
//!    exhaustive solution, byte for byte.
//! 2. Materialization: demand-then-`materialize()` reaches the same
//!    solution fingerprint as a fresh exhaustive solve, so partial
//!    results compose into the canonical total one.
//! 3. The point of it all: a single query on `chain(128)` runs a
//!    strict fraction of the exhaustive fixpoint's flow steps.

use alias::solver::solution_fingerprint;
use alias::{analyze_ci, CiConfig, CiResult, DemandConfig, DemandState, Solution};
use proto::{JobSpec, QueryKind, Request, Response};
use serve::service::{Service, ServiceOptions};
use vdg::build::{lower, BuildOptions};
use vdg::graph::{Graph, NodeId};

fn graph_of(src: &str) -> Graph {
    let p = cfront::compile(src).expect("compiles");
    lower(&p, &BuildOptions::default()).expect("lowers")
}

fn rendered_ci(r: &CiResult, g: &Graph, node: NodeId) -> Vec<String> {
    let mut v: Vec<String> = r
        .loc_referents(g, node)
        .iter()
        .map(|&p| r.paths.display(p, g))
        .collect();
    v.sort();
    v
}

/// Every suite benchmark, every indirect site, both query kinds:
/// demand answers equal exhaustive CI answers exactly.
#[test]
fn demand_matches_exhaustive_ci_on_all_suite_benchmarks() {
    let benches = suite::benchmarks();
    assert_eq!(benches.len(), 13, "the paper suite has thirteen programs");
    for b in &benches {
        let g = graph_of(b.source);
        let ci = analyze_ci(&g, &CiConfig::default());
        let mut st = DemandState::new(&g, DemandConfig::default());
        let sites = g.indirect_mem_ops();
        // Referent sets at every site.
        for &(node, _) in &sites {
            assert_eq!(
                st.loc_referents_rendered(&g, node),
                rendered_ci(&ci, &g, node),
                "{}: referents at {node:?}",
                b.name
            );
        }
        // May-alias: pair every site with the first, its neighbour, and
        // itself — linear coverage that still touches every site in a
        // pair query (the full cross product is quadratic and adds no
        // coverage once the referent sets are known equal).
        for i in 0..sites.len() {
            for j in [0, i, (i + 1) % sites.len()] {
                let (hit, witnesses) = st.may_alias(&g, sites[i].0, sites[j].0);
                let ba = Solution::loc_referent_bases(&ci, &g, sites[i].0);
                let bb = Solution::loc_referent_bases(&ci, &g, sites[j].0);
                let want: Vec<_> = ba
                    .iter()
                    .copied()
                    .filter(|x| bb.binary_search(x).is_ok())
                    .collect();
                assert_eq!(witnesses, want, "{}: sites {i}/{j}", b.name);
                assert_eq!(hit, !want.is_empty(), "{}: sites {i}/{j}", b.name);
            }
        }
        let stats = st.stats();
        assert_eq!(stats.fallbacks, 0, "{}: no fallback expected", b.name);
        assert!(stats.demand_hits > 0, "{}: demand path never taken", b.name);
    }
}

/// Demand-then-materialize reaches the canonical exhaustive solution:
/// identical fingerprints on every suite benchmark.
#[test]
fn materialize_after_partial_queries_matches_fresh_ci() {
    for b in &suite::benchmarks() {
        let g = graph_of(b.source);
        let fresh = analyze_ci(&g, &CiConfig::default());
        let mut st = DemandState::new(&g, DemandConfig::default());
        if let Some(&(node, _)) = g.indirect_mem_ops().first() {
            let _ = st.loc_referents_rendered(&g, node);
        }
        let mat = st.materialize(&g);
        assert_eq!(
            solution_fingerprint(&fresh, &g),
            solution_fingerprint(&mat, &g),
            "{}: materialized fingerprint diverged",
            b.name
        );
    }
}

/// Satellite 3's regression: one query on `chain(128)` must not pay
/// for the exhaustive fixpoint. The flow-step counters prove it — the
/// demand run consumes a strict fraction of the exhaustive deliveries.
#[test]
fn single_query_on_chain_128_avoids_exhaustive_fixpoint() {
    let prog = suite::scaling::chain(128, 1995);
    let g = graph_of(&prog.source);
    let ci = analyze_ci(&g, &CiConfig::default());
    let sites = g.indirect_mem_ops();
    assert!(!sites.is_empty(), "chain has indirect sites");

    // The chain is emitted leaf-first, so the last indirect site sits
    // nearest `main` and slices off only the head of the call chain —
    // the case demand queries exist for. (The deepest site's backward
    // slice is the whole program; even there demand stays strictly
    // under the exhaustive step count, but the margin is small.)
    let site = sites[sites.len() - 1].0;
    let mut st = DemandState::new(&g, DemandConfig::default());
    let got = st.loc_referents_rendered(&g, site);
    assert_eq!(got, rendered_ci(&ci, &g, site));

    let stats = st.stats();
    assert_eq!(stats.fallbacks, 0, "must not fall back to exhaustive");
    assert_eq!(stats.demand_hits, 1);
    assert!(
        stats.steps * 10 < ci.flow_ins,
        "demand steps {} should be a small fraction of exhaustive flow_ins {}",
        stats.steps,
        ci.flow_ins
    );
}

/// The serve wire contract: a query against an unsolved session takes
/// the demand path (`demand: true`), and after an exhaustive analyze
/// the same query is a plain lookup (`demand: false`) with the same
/// answer.
#[test]
fn serve_first_query_is_demand_then_lookup_after_analyze() {
    let mut svc = Service::new(ServiceOptions {
        store_dir: None,
        mem_budget: 0,
        threads: 1,
    })
    .expect("in-memory service");
    let b = &suite::benchmarks()[0];
    let job = JobSpec {
        name: b.name.to_string(),
        source: b.source.to_string(),
        input: b.input.to_vec(),
    };
    let ask = |svc: &mut Service, job: Option<JobSpec>| {
        svc.handle(&Request::Query {
            project: "demand".into(),
            bench: b.name.to_string(),
            analysis: "ci".into(),
            query: QueryKind::ReferentsAt { site: 0 },
            job,
        })
    };

    let cold = ask(&mut svc, Some(job.clone()));
    let Response::QueryResult {
        demand: true,
        answer: cold_answer,
        ..
    } = cold
    else {
        panic!("expected a demand-path QueryResult, got {cold:?}");
    };

    match svc.handle(&Request::Analyze {
        project: "demand".into(),
        jobs: vec![job],
        fresh: false,
        want_report: false,
    }) {
        Response::Analyzed { .. } => {}
        other => panic!("analyze failed: {other:?}"),
    }

    let warm = ask(&mut svc, None);
    let Response::QueryResult {
        demand: false,
        answer: warm_answer,
        ..
    } = warm
    else {
        panic!("expected a lookup-path QueryResult, got {warm:?}");
    };
    assert_eq!(cold_answer, warm_answer, "demand and lookup must agree");
}
