//! Difference propagation is a pure scheduling optimization: for every
//! solver with the discipline knob, the naive (PR 1-style) worklist and
//! the delta-batched worklist must reach the *same* fixpoint — the same
//! pair sets on every output, pair for pair, and the same
//! schedule-independent cost counters (`flow_ins` counts deliveries and
//! `flow_outs` unique insertions, both properties of the fixpoint, not
//! of the order it was reached in).
//!
//! The checks run all five analyses over every suite benchmark; the
//! solvers without a discipline knob (Steensgaard's unification and the
//! assumption-set CS) ride along to pin down run-to-run determinism.

use alias::solver::{all_solvers, all_solvers_naive};
use vdg::build::{lower, BuildOptions};

#[test]
fn naive_and_delta_disciplines_reach_the_same_fixpoint() {
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        let delta = all_solvers();
        let naive = all_solvers_naive();
        assert_eq!(delta.len(), naive.len());
        for (d, n) in delta.iter().zip(&naive) {
            assert_eq!(d.name(), n.name(), "solver lists must stay aligned");
            let sd = d
                .solve(&graph, None)
                .unwrap_or_else(|e| panic!("{}: {} (delta) failed: {e:?}", b.name, d.name()));
            let sn = n
                .solve(&graph, None)
                .unwrap_or_else(|e| panic!("{}: {} (naive) failed: {e:?}", b.name, n.name()));
            assert_eq!(
                sd.pairs(),
                sn.pairs(),
                "{}: {} pair totals differ across disciplines",
                b.name,
                d.name()
            );
            assert_eq!(
                sd.flow_ins(),
                sn.flow_ins(),
                "{}: {} deliveries differ across disciplines",
                b.name,
                d.name()
            );
            assert_eq!(
                sd.flow_outs(),
                sn.flow_outs(),
                "{}: {} unique insertions differ across disciplines",
                b.name,
                d.name()
            );
            // Pair-for-pair: the canonicalized solutions must agree on
            // every output, not just in aggregate.
            if let (Some(pd), Some(pn)) = (sd.as_points_to(), sn.as_points_to()) {
                for o in graph.output_ids() {
                    assert_eq!(
                        pd.pairs_at(o),
                        pn.pairs_at(o),
                        "{}: {} pairs at output {o} differ across disciplines",
                        b.name,
                        d.name()
                    );
                }
            }
            // The delta discipline must actually be the delta discipline
            // (and the naive one must not fake the batching counter).
            if d.name() == "ci" || d.name() == "weihl" || d.name() == "k1" {
                assert!(
                    sd.delta_batches().is_some(),
                    "{}: {} delta run reports no batches",
                    b.name,
                    d.name()
                );
                assert_eq!(
                    sn.delta_batches(),
                    None,
                    "{}: {} naive run reports batches",
                    b.name,
                    n.name()
                );
            }
        }
    }
}

#[test]
fn scaling_programs_agree_across_disciplines() {
    // Same property on the synthetic scaling generator's shapes (one
    // small instance of each family; the full sweep is benchmarked, not
    // tested, for time).
    for p in [suite::scaling::chain(16, 7), suite::scaling::diamond(4, 7)] {
        let prog = cfront::compile(&p.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        for (d, n) in all_solvers().iter().zip(&all_solvers_naive()) {
            let sd = d.solve(&graph, None).unwrap();
            let sn = n.solve(&graph, None).unwrap();
            assert_eq!(
                sd.pairs(),
                sn.pairs(),
                "{}: {} pair totals differ across disciplines",
                p.name,
                d.name()
            );
            if let (Some(pd), Some(pn)) = (sd.as_points_to(), sn.as_points_to()) {
                for o in graph.output_ids() {
                    assert_eq!(pd.pairs_at(o), pn.pairs_at(o));
                }
            }
        }
    }
}
