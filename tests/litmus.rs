//! Acceptance tests for the data-race checker over the threaded litmus
//! suite ([`suite::litmus`]):
//!
//! * every planted race (`litmus_race_*`) is flagged by every one of
//!   the five solvers and confirmed by the bounded interleaving oracle,
//! * the race-free fixtures (`litmus_sync_*`) produce zero data-race
//!   diagnostics under every solver,
//! * no benchmark has an oracle-refuted fault or an oracle-refuted
//!   (observed but unpredicted) race,
//! * false-positive counts are monotone along the precision spectrum,
//! * golden diagnostic snapshots (7 litmus programs × 5 solvers) under
//!   `tests/snapshots/checks/`, refreshed like the solver snapshots:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p engine --test litmus
//! ```

use checker::{CheckKind, Label};
use engine::{BenchChecks, Engine, Job};
use std::path::PathBuf;

fn snapshot_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/snapshots/checks")
}

fn run_litmus() -> (engine::EngineRun, Vec<BenchChecks>) {
    let mut run = Engine::new().run(&Job::litmus()).expect("litmus run");
    let checks = run.run_checks();
    (run, checks)
}

#[test]
fn planted_races_are_flagged_by_every_solver_and_oracle_confirmed() {
    let (_, checks) = run_litmus();
    for bc in checks.iter().filter(|bc| suite::litmus_has_race(&bc.name)) {
        assert_eq!(bc.rows.len(), 5, "{}: five solver rows", bc.name);
        for row in &bc.rows {
            let races: Vec<_> = row
                .labeled
                .iter()
                .filter(|l| l.diag.kind == CheckKind::DataRace)
                .collect();
            assert!(
                !races.is_empty(),
                "{}/{}: the planted race was not flagged",
                bc.name,
                row.solver
            );
            assert!(
                races.iter().any(|l| l.label == Label::TruePositive),
                "{}/{}: no race diagnostic was oracle-confirmed: {:?}",
                bc.name,
                row.solver,
                races.iter().map(|l| l.label).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn race_free_fixtures_are_clean_under_every_solver() {
    let (_, checks) = run_litmus();
    for bc in checks.iter().filter(|bc| !suite::litmus_has_race(&bc.name)) {
        for row in &bc.rows {
            let races: Vec<_> = row
                .labeled
                .iter()
                .filter(|l| l.diag.kind == CheckKind::DataRace)
                .map(|l| &l.diag.message)
                .collect();
            assert!(
                races.is_empty(),
                "{}/{}: spurious race diagnostics: {races:?}",
                bc.name,
                row.solver
            );
        }
    }
}

#[test]
fn litmus_has_no_refuted_faults_or_races_and_monotone_fps() {
    let (run, checks) = run_litmus();
    for bc in &checks {
        for row in &bc.rows {
            assert!(
                row.refuted.is_none(),
                "{}/{}: oracle-refuted fault: {:?}",
                bc.name,
                row.solver,
                row.refuted
            );
            assert!(
                row.refuted_race.is_none(),
                "{}/{}: the oracle observed a race no diagnostic predicted: {:?}",
                bc.name,
                row.solver,
                row.refuted_race
            );
        }
    }
    assert_eq!(engine::check::fp_monotone_violation(&checks), None);
    // Check metrics (including the race column) landed in the report.
    for b in &run.report.benchmarks {
        for s in &b.solvers {
            assert!(
                s.checks.is_some(),
                "{}/{}: no check row",
                b.name,
                s.analysis
            );
        }
    }
}

fn render_checks(b: &engine::BenchOutput, bc: &BenchChecks) -> String {
    let file = cfront::SourceFile::new(&b.name, &b.source);
    let mut out = String::new();
    for row in &bc.rows {
        out.push_str(&format!("==== {} ====\n", row.solver));
        for l in &row.labeled {
            let lc = file.line_col(l.diag.span.start);
            out.push_str(&format!(
                "{}:{} [{}] {} ({})\n",
                lc.line,
                lc.col,
                l.diag.kind.name(),
                l.diag.message,
                l.label.name()
            ));
        }
        if let Some((x, y)) = &row.refuted_race {
            out.push_str(&format!("!! refuted race: sites {} {}\n", x.0, y.0));
        }
        out.push('\n');
    }
    out
}

#[test]
fn litmus_diagnostics_match_golden_snapshots() {
    let update = std::env::var_os("UPDATE_SNAPSHOTS").is_some();
    let dir = snapshot_dir();
    let (run, checks) = run_litmus();
    let mut stale: Vec<String> = Vec::new();
    for (b, bc) in run.benches.iter().zip(&checks) {
        let got = render_checks(b, bc);
        let path = dir.join(format!("{}.txt", b.name));
        if update {
            std::fs::create_dir_all(&dir).expect("snapshot dir");
            std::fs::write(&path, &got).expect("write snapshot");
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("missing snapshot {path:?}; run with UPDATE_SNAPSHOTS=1"));
        if got != want {
            let g: Vec<&str> = got.lines().collect();
            let w: Vec<&str> = want.lines().collect();
            let k = g
                .iter()
                .zip(&w)
                .position(|(a, b)| a != b)
                .unwrap_or(g.len().min(w.len()));
            stale.push(format!(
                "{}: line {} differs\n  got:  {}\n  want: {}",
                b.name,
                k + 1,
                g.get(k).unwrap_or(&"<eof>"),
                w.get(k).unwrap_or(&"<eof>")
            ));
        }
    }
    assert!(
        stale.is_empty(),
        "stale litmus snapshots (UPDATE_SNAPSHOTS=1 to refresh after an intentional change):\n{}",
        stale.join("\n")
    );
}

#[test]
fn litmus_snapshots_cover_every_benchmark_and_solver() {
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        return;
    }
    let dir = snapshot_dir();
    for b in suite::litmus() {
        let path = dir.join(format!("{}.txt", b.name));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("missing snapshot {path:?}; run with UPDATE_SNAPSHOTS=1"));
        for solver in ["weihl", "steensgaard", "ci", "k1", "cs"] {
            assert!(
                text.contains(&format!("==== {solver} ====")),
                "{}: litmus snapshot lacks {solver} section",
                b.name
            );
        }
    }
}
