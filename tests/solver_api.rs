//! The `Solver` trait objects must agree with the free-function entry
//! points they wrap: same referent bases at every indirect memory
//! reference, same pair counts where the notion exists.

use alias::solver::{solver_by_name, Solution};
use alias::{analyze_ci, analyze_cs, CiConfig, CsConfig};
use vdg::build::{lower, BuildOptions};
use vdg::NodeId;

const PROGRAMS: [&str; 2] = ["span", "part"];

fn graph_of(name: &str) -> vdg::Graph {
    let b = suite::by_name(name).expect("suite program");
    let prog = cfront::compile(b.source).unwrap();
    lower(&prog, &BuildOptions::default()).unwrap()
}

fn sorted_bases(s: &dyn Solution, graph: &vdg::Graph, node: NodeId) -> Vec<vdg::BaseId> {
    let mut v = s.loc_referent_bases(graph, node);
    v.sort();
    v
}

/// Runs `name` through the trait and checks it against `free` at every
/// indirect memory reference of both programs.
fn check_against(name: &str, free: impl Fn(&vdg::Graph, &alias::CiResult) -> Box<dyn Solution>) {
    let solver = solver_by_name(name).unwrap_or_else(|| panic!("no solver `{name}`"));
    for prog in PROGRAMS {
        let graph = graph_of(prog);
        let ci = analyze_ci(&graph, &CiConfig::default());
        let via_trait = solver.solve(&graph, Some(&ci)).unwrap();
        let via_free = free(&graph, &ci);
        assert_eq!(via_trait.analysis(), name);
        assert_eq!(
            via_trait.pairs(),
            via_free.pairs(),
            "{prog}/{name}: pair counts disagree"
        );
        for (node, _) in graph.indirect_mem_ops() {
            assert_eq!(
                sorted_bases(via_trait.as_ref(), &graph, node),
                sorted_bases(via_free.as_ref(), &graph, node),
                "{prog}/{name}: referent bases disagree at {node:?}"
            );
        }
    }
}

#[test]
fn ci_solver_matches_analyze_ci() {
    check_against("ci", |g, _| Box::new(analyze_ci(g, &CiConfig::default())));
}

#[test]
fn cs_solver_matches_analyze_cs() {
    check_against("cs", |g, ci| {
        Box::new(analyze_cs(g, ci, &CsConfig::default()).expect("budget"))
    });
}

#[test]
fn weihl_solver_matches_analyze_weihl() {
    check_against("weihl", |g, ci| {
        Box::new(alias::weihl::analyze_weihl_from(g, ci.paths.clone()))
    });
}

#[test]
fn callstring_solver_matches_analyze_callstring() {
    check_against("k1", |g, ci| {
        Box::new(
            alias::callstring::analyze_callstring_from(
                g,
                ci.paths.clone(),
                &alias::callstring::CallStringConfig::default(),
            )
            .expect("budget"),
        )
    });
}

/// Steensgaard's free entry point answers queries through `&mut self`
/// (union-find path compression), so it is compared directly rather
/// than through the `Solution` view.
#[test]
fn steensgaard_solver_matches_analyze_steensgaard() {
    let solver = solver_by_name("steensgaard").unwrap();
    for prog in PROGRAMS {
        let graph = graph_of(prog);
        let via_trait = solver.solve(&graph, None).unwrap();
        let mut via_free = alias::steensgaard::analyze_steensgaard(&graph);
        for (node, _) in graph.indirect_mem_ops() {
            let mut t = via_trait.loc_referent_bases(&graph, node);
            t.sort();
            let mut f = via_free.loc_bases(&graph, node);
            f.sort();
            assert_eq!(t, f, "{prog}/steensgaard: bases disagree at {node:?}");
        }
    }
}
