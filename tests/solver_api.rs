//! The `Solver` trait objects built by [`SolverSpec::build`] must agree
//! with the typed `solve_*` helpers on the same spec: same referent
//! bases at every indirect memory reference, same pair counts where the
//! notion exists. This pins the two faces of the spec API — the dynamic
//! engine path and the typed harness path — to one another.

use alias::solver::Solution;
use alias::SolverSpec;
use vdg::build::{lower, BuildOptions};
use vdg::NodeId;

const PROGRAMS: [&str; 2] = ["span", "part"];

fn graph_of(name: &str) -> vdg::Graph {
    let b = suite::by_name(name).expect("suite program");
    let prog = cfront::compile(b.source).unwrap();
    lower(&prog, &BuildOptions::default()).unwrap()
}

fn sorted_bases(s: &dyn Solution, graph: &vdg::Graph, node: NodeId) -> Vec<vdg::BaseId> {
    let mut v = s.loc_referent_bases(graph, node);
    v.sort();
    v
}

/// Runs `spec` through the trait object and checks it against the typed
/// helper's result at every indirect memory reference of both programs.
fn check_spec(
    spec: &SolverSpec,
    typed: impl Fn(&SolverSpec, &vdg::Graph, &alias::CiResult) -> Box<dyn Solution>,
) {
    let solver = spec.build();
    for prog in PROGRAMS {
        let graph = graph_of(prog);
        let ci = SolverSpec::ci().solve_ci(&graph);
        let via_trait = solver.solve(&graph, Some(&ci)).unwrap();
        let via_typed = typed(spec, &graph, &ci);
        assert_eq!(via_trait.analysis(), spec.name());
        assert_eq!(
            via_trait.pairs(),
            via_typed.pairs(),
            "{prog}/{}: pair counts disagree",
            spec.name()
        );
        for (node, _) in graph.indirect_mem_ops() {
            assert_eq!(
                sorted_bases(via_trait.as_ref(), &graph, node),
                sorted_bases(via_typed.as_ref(), &graph, node),
                "{prog}/{}: referent bases disagree at {node:?}",
                spec.name()
            );
        }
    }
}

#[test]
fn ci_build_matches_solve_ci() {
    check_spec(&SolverSpec::ci(), |s, g, _| Box::new(s.solve_ci(g)));
}

#[test]
fn cs_build_matches_solve_cs() {
    check_spec(&SolverSpec::cs(), |s, g, ci| {
        Box::new(s.solve_cs(g, Some(ci)).expect("budget"))
    });
}

#[test]
fn weihl_build_matches_solve_weihl() {
    check_spec(&SolverSpec::weihl(), |s, g, ci| {
        Box::new(s.solve_weihl(g, Some(ci)))
    });
}

#[test]
fn k1_build_matches_solve_k1() {
    check_spec(&SolverSpec::k1(), |s, g, ci| {
        Box::new(s.solve_k1(g, Some(ci)).expect("budget"))
    });
}

/// Steensgaard's typed result answers queries through `&mut self`
/// (union-find path compression), so it is compared directly rather
/// than through the `Solution` view.
#[test]
fn steensgaard_build_matches_solve_steensgaard() {
    let spec = SolverSpec::steensgaard();
    let solver = spec.build();
    for prog in PROGRAMS {
        let graph = graph_of(prog);
        let via_trait = solver.solve(&graph, None).unwrap();
        let mut via_typed = spec.solve_steensgaard(&graph);
        for (node, _) in graph.indirect_mem_ops() {
            let mut t = via_trait.loc_referent_bases(&graph, node);
            t.sort();
            let mut f = via_typed.loc_bases(&graph, node);
            f.sort();
            assert_eq!(t, f, "{prog}/steensgaard: bases disagree at {node:?}");
        }
    }
}

#[test]
fn by_name_round_trips_and_spectrum_order_is_stable() {
    let names: Vec<&str> = SolverSpec::all().iter().map(|s| s.name()).collect();
    assert_eq!(names, ["weihl", "steensgaard", "ci", "k1", "cs"]);
    for n in names {
        let spec = SolverSpec::by_name(n).unwrap_or_else(|| panic!("no solver `{n}`"));
        assert_eq!(spec.name(), n);
    }
    assert!(SolverSpec::by_name("andersen").is_none());
}

#[test]
fn typed_and_dynamic_paths_share_one_configuration_space() {
    // A knob set on the spec flows through both `build()` and the typed
    // helper: turning strong updates off must change both the same way.
    let graph = graph_of("span");
    let weak_spec = SolverSpec::ci().strong_updates(false);
    let weak_typed = weak_spec.solve_ci(&graph);
    let weak_dyn = weak_spec.build().solve(&graph, None).unwrap();
    assert_eq!(weak_dyn.pairs(), Some(weak_typed.total_pairs()));
    let strong = SolverSpec::ci().solve_ci(&graph);
    assert!(weak_typed.total_pairs() >= strong.total_pairs());
}
