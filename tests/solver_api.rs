//! The unified [`SolverSpec::solve`] path is the only way to construct
//! a solver stage outside `crates/alias`. These tests pin its two
//! faces to one another: the dynamic [`Solution`] view every engine
//! consumer queries, and the owned concrete results the `into_*`
//! downcasts hand to typed harnesses — same referent bases at every
//! indirect memory reference, same pair counts where the notion exists.

use alias::solver::Solution;
use alias::SolverSpec;
use vdg::build::{lower, BuildOptions};
use vdg::NodeId;

const PROGRAMS: [&str; 2] = ["span", "part"];

fn graph_of(name: &str) -> vdg::Graph {
    let b = suite::by_name(name).expect("suite program");
    let prog = cfront::compile(b.source).unwrap();
    lower(&prog, &BuildOptions::default()).unwrap()
}

fn sorted_bases(s: &dyn Solution, graph: &vdg::Graph, node: NodeId) -> Vec<vdg::BaseId> {
    let mut v = s.loc_referent_bases(graph, node);
    v.sort();
    v
}

/// Solves `spec` twice through the one unified path and checks the
/// dynamic view against the owned result of `downcast` at every
/// indirect memory reference of both programs.
fn check_spec(spec: &SolverSpec, downcast: impl Fn(Box<dyn Solution>) -> Box<dyn Solution>) {
    for prog in PROGRAMS {
        let graph = graph_of(prog);
        let ci = SolverSpec::ci().solve_ci(&graph);
        let via_trait = spec.solve(&graph, Some(&ci)).unwrap();
        let via_owned = downcast(spec.solve(&graph, Some(&ci)).unwrap());
        assert_eq!(via_trait.analysis(), spec.name());
        assert_eq!(
            via_trait.pairs(),
            via_owned.pairs(),
            "{prog}/{}: pair counts disagree",
            spec.name()
        );
        for (node, _) in graph.indirect_mem_ops() {
            assert_eq!(
                sorted_bases(via_trait.as_ref(), &graph, node),
                sorted_bases(via_owned.as_ref(), &graph, node),
                "{prog}/{}: referent bases disagree at {node:?}",
                spec.name()
            );
        }
    }
}

#[test]
fn ci_downcast_matches_dynamic_view() {
    check_spec(&SolverSpec::ci(), |s| {
        Box::new(s.into_ci().expect("ci result"))
    });
}

#[test]
fn cs_downcast_matches_dynamic_view() {
    check_spec(&SolverSpec::cs(), |s| {
        Box::new(s.into_cs().expect("cs result"))
    });
}

#[test]
fn weihl_downcast_matches_dynamic_view() {
    check_spec(&SolverSpec::weihl(), |s| {
        Box::new(s.into_weihl().expect("weihl result"))
    });
}

#[test]
fn k1_downcast_matches_dynamic_view() {
    check_spec(&SolverSpec::k1(), |s| {
        Box::new(s.into_k1().expect("k1 result"))
    });
}

/// Steensgaard's owned result answers queries through `&mut self`
/// (union-find path compression), so it is compared directly rather
/// than through the `Solution` view.
#[test]
fn steensgaard_downcast_matches_dynamic_view() {
    let spec = SolverSpec::steensgaard();
    for prog in PROGRAMS {
        let graph = graph_of(prog);
        let via_trait = spec.solve(&graph, None).unwrap();
        let mut via_owned = spec
            .solve(&graph, None)
            .unwrap()
            .into_steens()
            .expect("steensgaard result");
        for (node, _) in graph.indirect_mem_ops() {
            let mut t = via_trait.loc_referent_bases(&graph, node);
            t.sort();
            let mut f = via_owned.loc_bases(&graph, node);
            f.sort();
            assert_eq!(t, f, "{prog}/steensgaard: bases disagree at {node:?}");
        }
    }
}

/// A downcast to the wrong analysis refuses instead of lying.
#[test]
fn mismatched_downcasts_return_none() {
    let graph = graph_of("span");
    let ci = SolverSpec::ci().solve_ci(&graph);
    let cs = SolverSpec::cs().solve(&graph, Some(&ci)).unwrap();
    assert!(cs.into_ci().is_none());
    let w = SolverSpec::weihl().solve(&graph, None).unwrap();
    assert!(w.into_cs().is_none());
    let st = SolverSpec::steensgaard().solve(&graph, None).unwrap();
    assert!(st.into_k1().is_none());
    let k1 = SolverSpec::k1().solve(&graph, None).unwrap();
    assert!(k1.into_steens().is_none());
    let c = SolverSpec::ci().solve(&graph, None).unwrap();
    assert!(c.into_weihl().is_none());
}

#[test]
fn by_name_round_trips_and_spectrum_order_is_stable() {
    let names: Vec<&str> = SolverSpec::all().iter().map(|s| s.name()).collect();
    assert_eq!(names, ["weihl", "steensgaard", "ci", "k1", "cs"]);
    for n in names {
        let spec = SolverSpec::by_name(n).unwrap_or_else(|| panic!("no solver `{n}`"));
        assert_eq!(spec.name(), n);
    }
    assert!(SolverSpec::by_name("andersen").is_none());
}

#[test]
fn typed_and_dynamic_paths_share_one_configuration_space() {
    // A knob set on the spec flows through both `build()` and the
    // `solve_ci` projection: turning strong updates off must change
    // both the same way.
    let graph = graph_of("span");
    let weak_spec = SolverSpec::ci().strong_updates(false);
    let weak_typed = weak_spec.solve_ci(&graph);
    let weak_dyn = weak_spec.build().solve(&graph, None).unwrap();
    assert_eq!(weak_dyn.pairs(), Some(weak_typed.total_pairs()));
    let strong = SolverSpec::ci().solve_ci(&graph);
    assert!(weak_typed.total_pairs() >= strong.total_pairs());
}
