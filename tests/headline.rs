//! The paper's headline experiment (§4.3): on every benchmark program,
//! the fully context-sensitive analysis gives *identical* results to the
//! context-insensitive analysis at the location inputs of indirect
//! memory references, even though it strips a few percent of the total
//! points-to pairs — all of them on store-valued outputs.

use alias::stats::{compare_at_indirect_refs, indirect_ref_rows, spurious_by_kind, spurious_row};
use alias::SolverSpec;
use vdg::build::{lower, BuildOptions};

fn pipeline(src: &str) -> (vdg::Graph, alias::CiResult, alias::CsResult) {
    let prog = cfront::compile(src).expect("compiles");
    let graph = lower(&prog, &BuildOptions::default()).expect("lowers");
    let ci = SolverSpec::ci().solve_ci(&graph);
    let cs = SolverSpec::cs()
        .solve(&graph, Some(&ci))
        .expect("budget")
        .into_cs()
        .expect("cs result");
    (graph, ci, cs)
}

#[test]
fn cs_equals_ci_at_indirect_memory_references() {
    for b in suite::benchmarks() {
        let (graph, ci, cs) = pipeline(b.source);
        let mismatches = compare_at_indirect_refs(&graph, &ci, &cs);
        assert!(
            mismatches.is_empty(),
            "{}: {} indirect refs differ between CI and CS: {:#?}",
            b.name,
            mismatches.len(),
            mismatches
        );
    }
}

#[test]
fn figure4_is_unchanged_by_context_sensitivity() {
    // The same claim at the table level: the (reads, writes) rows of
    // Figure 4 computed from CS match those computed from CI.
    for b in suite::benchmarks() {
        let (graph, ci, cs) = pipeline(b.source);
        let ci_rows = indirect_ref_rows(&graph, &ci);
        let cs_rows = indirect_ref_rows(&graph, &cs);
        assert_eq!(ci_rows, cs_rows, "{}: Figure 4 rows differ", b.name);
    }
}

#[test]
fn spurious_percentage_is_small() {
    // Paper Figure 6: 0.0% .. 11.8%, average 2.0%. Our reconstructions
    // land in the same band.
    let mut total_ci = 0usize;
    let mut total_cs = 0usize;
    for b in suite::benchmarks() {
        let (graph, ci, cs) = pipeline(b.source);
        let row = spurious_row(&graph, &ci, &cs);
        assert!(
            row.percent_spurious < 15.0,
            "{}: {:.1}% spurious is out of band",
            b.name,
            row.percent_spurious
        );
        total_ci += row.ci_total;
        total_cs += row.cs.total();
    }
    let aggregate = 100.0 * (total_ci - total_cs) as f64 / total_ci as f64;
    assert!(
        aggregate > 0.5 && aggregate < 10.0,
        "aggregate spurious {aggregate:.1}% is out of the paper's band"
    );
}

#[test]
fn spurious_pairs_sit_on_store_outputs() {
    // Paper §5.2: "in every test case other than compress and span, all
    // of the spurious pairs are on store-valued outputs" (and those two
    // exceptions were dead library results). In our reconstructions the
    // property holds for every program.
    for b in suite::benchmarks() {
        let (graph, ci, cs) = pipeline(b.source);
        let k = spurious_by_kind(&graph, &ci, &cs);
        assert_eq!(k.pointer, 0, "{}: spurious pointer pairs", b.name);
        assert_eq!(k.function, 0, "{}: spurious function pairs", b.name);
        assert_eq!(k.aggregate, 0, "{}: spurious aggregate pairs", b.name);
    }
}

#[test]
fn most_indirect_references_touch_one_location() {
    // Paper Figure 4: on average, most indirect memory operations
    // reference very few locations (87% touch exactly one).
    let mut total = 0usize;
    let mut singles = 0usize;
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        let ci = SolverSpec::ci().solve_ci(&graph);
        let (r, w) = indirect_ref_rows(&graph, &ci);
        total += r.total + w.total;
        singles += r.n1 + w.n1;
        // The paper's per-program maxima run up to 60 (assembler reads
        // through string-table cursors); keep a generous sanity bound.
        assert!(
            r.max <= 64 && w.max <= 64,
            "{}: runaway location count",
            b.name
        );
        // Our assembler reconstruction's read average runs a little above
        // the paper's 2.34 because its smaller op population gives the
        // string-cursor tail more weight.
        assert!(
            r.avg < 5.0 && w.avg < 4.0,
            "{}: average locations out of band (paper max avg: 2.34)",
            b.name
        );
    }
    let pct = 100.0 * singles as f64 / total as f64;
    assert!(
        pct > 70.0,
        "only {pct:.0}% of indirect refs are single-location (paper: 87%)"
    );
}

#[test]
fn headline_carries_through_the_defuse_client() {
    // The §4.3 result restated where a compiler consumes it: reaching
    // definitions computed from the CI and CS solutions are identical on
    // every benchmark.
    for b in suite::benchmarks() {
        let (graph, ci, cs) = pipeline(b.source);
        let du_ci = alias::defuse::def_use(&graph, &ci, &ci.callees);
        let du_cs = alias::defuse::def_use(&graph, &cs, &ci.callees);
        assert_eq!(
            du_ci.edge_count(),
            du_cs.edge_count(),
            "{}: def/use edge totals differ",
            b.name
        );
        for (u, defs) in &du_ci.uses {
            assert_eq!(
                Some(defs),
                du_cs.uses.get(u),
                "{}: a use's reaching defs differ",
                b.name
            );
        }
    }
}

#[test]
fn cs_cost_exceeds_ci_cost() {
    // The §4.2 direction: the context-sensitive analysis performs at
    // least as many meet operations (flow-outs) as the CI analysis on
    // every benchmark, and strictly more wherever there is any real
    // cross-caller traffic (aggregate check).
    // (Per-program the ratio can dip below 1 — compress circulates fewer
    // pairs under CS than CI ever created — so only the aggregate
    // direction is asserted.)
    //
    // The paper's meet count is the number of emission *attempts*
    // (retained meets `flow_outs` plus attempts discarded as redundant,
    // `dedup_hits`). CS additionally performs one set union per
    // assumption in every Cartesian-product step at return boundaries
    // (`meet_steps`) — work that emission attempts no longer proxy now
    // that difference propagation avoids re-deriving known combinations.
    //
    // Difference propagation narrows the gap considerably on these small
    // benchmarks (the old discipline re-ran the full product at every
    // actual delivery, inflating CS's attempt counts several-fold), so
    // only the direction is asserted, with a margin well under the
    // deterministic observed ratio. The exponential blow-up of the
    // *unoptimized* configuration is exercised separately by the
    // step-budget and ablation tests.
    let mut ci_total = 0u64;
    let mut cs_total = 0u64;
    for b in suite::benchmarks() {
        let (_, ci, cs) = pipeline(b.source);
        ci_total += ci.flow_outs + ci.dedup_hits;
        cs_total += cs.flow_outs + cs.dedup_hits + cs.meet_steps;
    }
    assert!(
        cs_total as f64 > 1.1 * ci_total as f64,
        "aggregate CS meet work ({cs_total}) should exceed CI ({ci_total})"
    );
}
