//! End-to-end pipeline integration: every suite benchmark must flow
//! through frontend → VDG → CI → CS with structurally sane results.

use alias::{cs_subset_of_ci, SolverSpec};
use vdg::build::{lower, BuildOptions};
use vdg::stats::size_stats;

#[test]
fn all_benchmarks_flow_through_the_pipeline() {
    for b in suite::benchmarks() {
        let prog =
            cfront::compile(b.source).unwrap_or_else(|e| panic!("{}: frontend: {e}", b.name));
        let graph = lower(&prog, &BuildOptions::default())
            .unwrap_or_else(|e| panic!("{}: lowering: {e}", b.name));
        graph
            .validate()
            .unwrap_or_else(|e| panic!("{}: invalid graph: {e}", b.name));

        let sizes = size_stats(&graph, b.source);
        assert!(sizes.lines > 50, "{}: too few lines", b.name);
        assert!(
            sizes.nodes > sizes.lines,
            "{}: VDG smaller than the source?",
            b.name
        );
        assert!(sizes.alias_related_outputs > 0, "{}", b.name);

        let ci = SolverSpec::ci().solve_ci(&graph);
        assert!(ci.total_pairs() > 0, "{}: no points-to pairs", b.name);
        let cs = SolverSpec::cs()
            .solve(&graph, Some(&ci))
            .unwrap_or_else(|e| panic!("{}: CS blew the budget: {e}", b.name))
            .into_cs()
            .expect("cs result");
        assert!(
            cs_subset_of_ci(&graph, &ci, &cs),
            "{}: CS produced a pair CI lacks",
            b.name
        );
    }
}

#[test]
fn every_benchmark_has_indirect_memory_operations() {
    // Figure 4 needs a populated table: pointer-intensive programs must
    // actually dereference pointers.
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        assert!(
            !graph.indirect_mem_ops().is_empty(),
            "{}: no indirect reads/writes",
            b.name
        );
    }
}

#[test]
fn discovered_call_graph_reaches_every_function() {
    // The CI solver discovers calls from function values; every defined
    // function except the root must end up someone's callee (the suite
    // has no dead functions).
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(&prog, &BuildOptions::default()).unwrap();
        let ci = SolverSpec::ci().solve_ci(&graph);
        let mut called: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for fs in ci.callees.values() {
            called.extend(fs.iter().map(|f| f.0));
        }
        for f in graph.func_ids() {
            if f == graph.root() {
                continue;
            }
            assert!(
                called.contains(&f.0),
                "{}: function `{}` is never called",
                b.name,
                graph.func(f).name
            );
        }
    }
}

#[test]
fn cooper_scheme_pipeline_also_works() {
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source).unwrap();
        let graph = lower(
            &prog,
            &BuildOptions {
                rec_local_scheme: vdg::RecLocalScheme::Cooper,
            },
        )
        .unwrap();
        let ci = SolverSpec::ci().solve_ci(&graph);
        assert!(ci.total_pairs() > 0, "{}", b.name);
    }
}
