//! Campaign-runner integration tests: resume equivalence (a killed
//! campaign resumed at any cut point produces a byte-identical report),
//! journal robustness, quarantine end to end, and the campaign-preset
//! smoke run.

use engine::campaign::{self, CampaignError};
use engine::{CampaignConfig, FuzzConfig};
use std::fs;
use std::path::PathBuf;
use suite::generator::GenConfig;

/// A fresh per-test state directory under the system temp dir.
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruf95-campaign-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Small, fast campaign: 12 seeds in 4 chunks of 3, tiny programs, no
/// shrinking (the shrinker has its own tests), single-threaded.
fn small_cfg(dir: PathBuf) -> CampaignConfig {
    CampaignConfig {
        seeds: 12,
        start_seed: 0,
        chunk: 3,
        threads: 1,
        dir,
        fuzz: FuzzConfig {
            gen: GenConfig {
                funcs: 2,
                stmts_per_func: 4,
                ..GenConfig::default()
            },
            shrink: false,
            corpus_stats: true,
            ..FuzzConfig::default()
        },
        max_chunks: None,
        report_out: None,
        panic_seed: None,
        progress: false,
    }
}

fn report_bytes(dir: &std::path::Path) -> Vec<u8> {
    fs::read(dir.join("CAMPAIGN_report.json")).expect("report file exists")
}

#[test]
fn kill_and_resume_is_byte_identical_at_every_cut_point() {
    // Uninterrupted baseline.
    let base_dir = test_dir("baseline");
    let cfg = small_cfg(base_dir.clone());
    let outcome = campaign::run(&cfg).expect("baseline campaign runs");
    assert!(outcome.complete);
    assert_eq!(outcome.chunks_total, 4);
    assert_eq!(outcome.resumed_from, 0);
    let baseline = report_bytes(&base_dir);

    // Kill after 1, 2, and 3 chunks; resume; compare bytes.
    for cut in 1..4u64 {
        let dir = test_dir(&format!("cut{cut}"));
        let mut killed = small_cfg(dir.clone());
        killed.max_chunks = Some(cut);
        let partial = campaign::run(&killed).expect("partial campaign runs");
        assert!(!partial.complete, "cut at {cut}/4 must not complete");
        assert_eq!(partial.chunks_done, cut);
        assert!(partial.report.is_none(), "no report before completion");
        assert!(
            !dir.join("CAMPAIGN_report.json").exists(),
            "no report file before completion"
        );

        let resumed = campaign::run(&small_cfg(dir.clone())).expect("resume runs");
        assert!(resumed.complete);
        assert_eq!(resumed.resumed_from, cut, "must resume, not restart");
        assert_eq!(resumed.chunks_run, 4 - cut);
        assert_eq!(
            report_bytes(&dir),
            baseline,
            "resume after {cut} chunk(s) must reproduce the baseline report byte for byte"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    // Running an already-complete campaign again is a no-op that
    // re-renders the same bytes.
    let again = campaign::run(&cfg).expect("idempotent rerun");
    assert!(again.complete);
    assert_eq!(again.chunks_run, 0);
    assert_eq!(again.resumed_from, 4);
    assert_eq!(report_bytes(&base_dir), baseline);
    let _ = fs::remove_dir_all(&base_dir);
}

#[test]
fn corrupt_journal_restarts_cleanly_with_a_note() {
    let dir = test_dir("corrupt");
    let cfg = small_cfg(dir.clone());
    campaign::run(&cfg).expect("first run");
    let baseline = report_bytes(&dir);

    // Flip a payload byte: the checksum must reject the journal and the
    // campaign must restart from scratch rather than trust it.
    let journal = dir.join("journal.ruf95");
    let mut bytes = fs::read(&journal).unwrap();
    let n = bytes.len();
    bytes[n - 2] ^= 0x01;
    fs::write(&journal, &bytes).unwrap();

    let outcome = campaign::run(&cfg).expect("rerun over corrupt journal");
    assert!(
        outcome.journal_note.is_some(),
        "discarding a journal must be recorded"
    );
    assert_eq!(outcome.resumed_from, 0, "corrupt journal must not resume");
    assert!(outcome.complete);
    assert_eq!(
        report_bytes(&dir),
        baseline,
        "a fresh start over the same seeds reproduces the same report"
    );

    // Truncation is rejected the same way.
    fs::write(&journal, b"ruf95-campaign v1 0000").unwrap();
    let outcome = campaign::run(&cfg).expect("rerun over truncated journal");
    assert!(outcome.journal_note.is_some());
    assert_eq!(report_bytes(&dir), baseline);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn config_mismatch_is_a_hard_error_not_a_silent_restart() {
    let dir = test_dir("mismatch");
    let mut cfg = small_cfg(dir.clone());
    cfg.max_chunks = Some(1);
    campaign::run(&cfg).expect("partial run");

    let mut changed = small_cfg(dir.clone());
    changed.seeds = 9; // different range -> different campaign
    match campaign::run(&changed) {
        Err(CampaignError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }

    // The original configuration still resumes fine.
    let outcome = campaign::run(&small_cfg(dir.clone())).expect("original resumes");
    assert!(outcome.complete);
    assert_eq!(outcome.resumed_from, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn injected_panic_is_isolated_and_quarantined() {
    let dir = test_dir("panic");
    let mut cfg = small_cfg(dir.clone());
    cfg.panic_seed = Some(7);
    let outcome = campaign::run(&cfg).expect("a panicking job must not kill the campaign");
    let report = outcome.report.expect("campaign completes");
    assert_eq!(report.crashed, 1);
    assert_eq!(report.quarantine.len(), 1);
    let q = &report.quarantine[0];
    assert_eq!(q.seed, 7);
    assert_eq!(q.outcome, "crashed");
    assert!(q.detail.contains("injected test panic"));
    // An injected panic does not reproduce from source alone, so the
    // repro must be the full program, unshrunk.
    assert!(!q.shrunk);
    let repro = fs::read_to_string(outcome.quarantine_dir.join(&q.file))
        .expect("quarantine repro file exists");
    assert!(
        cfront::compile(&repro).is_ok(),
        "quarantined repro must be a standalone well-formed program"
    );
    // The other 11 seeds were unaffected.
    assert_eq!(report.clean + report.degraded, 11);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn step_budget_exhaustion_quarantines_as_over_budget_with_shrunk_repro() {
    let dir = test_dir("overbudget");
    let mut cfg = small_cfg(dir.clone());
    cfg.seeds = 2;
    cfg.chunk = 2;
    cfg.fuzz.max_steps = 1; // every solver job exhausts immediately
    cfg.fuzz.shrink = true; // exercise the quarantine shrink path
    let outcome = campaign::run(&cfg).expect("over-budget campaign runs");
    let report = outcome.report.expect("completes");
    assert_eq!(report.over_budget, 2);
    assert_eq!(report.quarantine.len(), 2);
    for q in &report.quarantine {
        assert_eq!(q.outcome, "over-budget");
        assert!(
            q.shrunk,
            "budget exhaustion reproduces from source, so the repro must be minimized"
        );
        let repro = fs::read_to_string(outcome.quarantine_dir.join(&q.file)).unwrap();
        assert!(
            cfront::compile(&repro).is_ok(),
            "shrunk over-budget repro must re-parse standalone"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn campaign_preset_smoke_is_clean_and_collects_corpus_stats() {
    let dir = test_dir("preset");
    let cfg = CampaignConfig {
        seeds: 10,
        chunk: 5,
        threads: 1,
        dir: dir.clone(),
        progress: false,
        ..CampaignConfig::default()
    };
    let outcome = campaign::run(&cfg).expect("campaign preset runs");
    let report = outcome.report.expect("completes");
    assert_eq!(report.violations_total, 0, "campaign shapes must be clean");
    assert!(report.quarantine.is_empty());
    assert_eq!(report.crashed, 0);
    // Corpus stats must actually be populated.
    assert!(report.diag_total > 0, "checker sweep ran per seed");
    assert!(report.diag_unique > 0 && report.diag_unique <= report.diag_total);
    assert!(report.func_total > 0, "function fingerprints collected");
    assert!(report.func_unique > 0 && report.func_unique <= report.func_total);
    assert!(report.demand_queries > 0);
    // Every property appears in the zero-filled table.
    let props: Vec<&str> = report.by_property.iter().map(|(p, _)| p.as_str()).collect();
    for want in [
        "soundness",
        "lattice",
        "divergence",
        "incremental",
        "checker",
        "demand",
        "roundtrip",
        "pipeline",
    ] {
        assert!(props.contains(&want), "missing property {want}");
    }
    // The rendered report is grep-friendly for the CI gate.
    let json = String::from_utf8(report_bytes(&dir)).unwrap();
    assert!(json.contains("\"soundness\": 0"));
    assert!(json.contains("\"quarantined\": 0"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn nonsense_configs_are_rejected() {
    let dir = test_dir("invalid");
    let mut cfg = small_cfg(dir.clone());
    cfg.seeds = 0;
    assert!(matches!(
        campaign::run(&cfg),
        Err(CampaignError::Invalid(_))
    ));
    let mut cfg = small_cfg(dir.clone());
    cfg.chunk = 0;
    assert!(matches!(
        campaign::run(&cfg),
        Err(CampaignError::Invalid(_))
    ));
    let _ = fs::remove_dir_all(&dir);
}
