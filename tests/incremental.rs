//! Edit-replay equivalence: incremental re-analysis must be invisible.
//!
//! The contract of `Engine::analyze_incremental` is that memoized
//! summaries, dirty-cone seeding, and verbatim replay are *pure*
//! optimizations — for any edit, the canonical solution dump (sorted,
//! schedule- and numbering-independent; see `alias::solver::
//! solution_dump`) of every solver must be byte-identical to a
//! from-scratch run on the edited source. The harness drives the
//! seeded edit generator (`suite::edit`) over every bundled benchmark:
//! ≥200 independent single edits, multi-step five-solver edit chains
//! threaded through one `SummaryCache`, a full five-solver pass under
//! both one worker thread and auto parallelism, and a direct
//! parallel-vs-serial cross-check of the composed summary maps.

use alias::solver::solution_dump;
use alias::SolverSpec;
use engine::{Engine, EngineRun, Job};
use suite::edit::{apply_random_edit, edit_chain};

fn job(name: &str, source: &str) -> Job {
    Job::new(name, source)
}

/// CI-only engine: the seeded-resume path is the only solver with a
/// genuinely incremental algorithm, so the wide sweeps isolate it.
fn ci_engine(threads: usize) -> Engine {
    Engine::new().threads(threads).specs(&[SolverSpec::ci()])
}

/// Asserts every solution of `inc` dumps byte-identically to the same
/// solver's solution in a from-scratch run of the same jobs.
fn assert_equivalent(inc: &EngineRun, fresh: &EngineRun, label: &str) {
    assert_eq!(inc.benches.len(), fresh.benches.len());
    for (ib, fb) in inc.benches.iter().zip(&fresh.benches) {
        for fs in &fb.solutions {
            let f = fs
                .solution
                .as_deref()
                .unwrap_or_else(|| panic!("{label}: fresh {} failed", fs.analysis));
            let i = ib
                .solution(&fs.analysis)
                .unwrap_or_else(|| panic!("{label}: incremental {} missing", fs.analysis));
            assert_eq!(
                solution_dump(i, &ib.graph),
                solution_dump(f, &fb.graph),
                "{label}: {} diverged on {}",
                fs.analysis,
                fb.name
            );
        }
    }
}

/// ≥200 independent seeded edits across all 13 benchmarks, each
/// verified against a from-scratch solve of the edited source.
#[test]
fn two_hundred_seeded_edits_match_from_scratch() {
    let e = ci_engine(1);
    let mut total = 0usize;
    let mut seeded = 0usize;
    for (bi, b) in suite::benchmarks().iter().enumerate() {
        let base = vec![job(b.name, b.source)];
        let prev = e.run(&base).expect("baseline run");
        let mut found = 0usize;
        let mut seed = 0u64;
        while found < 16 && seed < 96 {
            let s = (bi as u64) << 32 | seed;
            seed += 1;
            let Some(step) = apply_random_edit(b.source, s) else {
                continue;
            };
            let jobs = vec![job(b.name, &step.source)];
            let inc = e.analyze_incremental(&prev, &jobs).expect("incremental");
            let fresh = e.run(&jobs).expect("fresh");
            let label = format!("{} seed {s} ({})", b.name, step.edit.description);
            assert_equivalent(&inc, &fresh, &label);
            let stats = inc.report.incremental.as_ref().expect("stats");
            seeded += stats.benches_seeded;
            found += 1;
            total += 1;
        }
        assert!(found >= 14, "{}: only {found} edits landed", b.name);
    }
    assert!(total >= 200, "only {total} edits exercised");
    // The sweep must actually exercise the seeded-resume path, not
    // just graph-fingerprint replay of no-op edits.
    assert!(
        seeded >= total / 2,
        "only {seeded}/{total} edits reached a seeded resume"
    );
}

/// Multi-step edit chains threaded through one `SummaryCache`, with
/// the full five-solver stack: every step of every solver is verified,
/// so a stale summary absorbed at step k — in *any* solver's
/// vocabulary — would be caught at step k+1.
#[test]
fn edit_chains_stay_equivalent_at_every_step_for_all_five_solvers() {
    let e = Engine::new().threads(1);
    for (bi, b) in suite::benchmarks().iter().enumerate() {
        let mut cache = e.cache();
        e.analyze_incremental_with(&mut cache, &[job(b.name, b.source)])
            .expect("cold step");
        for (si, step) in edit_chain(b.source, 0xC0FFEE ^ bi as u64, 4)
            .iter()
            .enumerate()
        {
            let jobs = vec![job(b.name, &step.source)];
            let inc = e
                .analyze_incremental_with(&mut cache, &jobs)
                .expect("chain step");
            assert_eq!(
                inc.benches[0].solutions.len(),
                alias::SolverSpec::all().len(),
                "the chain must drive the whole solver spectrum"
            );
            let fresh = e.run(&jobs).expect("fresh");
            let label = format!("{} chain step {si} ({})", b.name, step.edit.description);
            assert_equivalent(&inc, &fresh, &label);
        }
    }
}

/// Summary composition is wave-parallel inside a solve; the composed
/// facts must not depend on the worker-thread count. One cache is
/// filled serially, one under auto parallelism, and every solver's
/// per-function summary map must agree exactly.
#[test]
fn parallel_and_serial_summary_composition_agree() {
    let jobs = Job::suite();
    let serial = Engine::new().threads(1);
    let parallel = Engine::new().threads(0);
    let mut serial_cache = serial.cache();
    let mut parallel_cache = parallel.cache();
    serial
        .analyze_incremental_with(&mut serial_cache, &jobs)
        .expect("serial run");
    parallel
        .analyze_incremental_with(&mut parallel_cache, &jobs)
        .expect("parallel run");
    assert_eq!(serial_cache.spec_key(), parallel_cache.spec_key());
    for j in &jobs {
        let (s_src, s_graph, s_sums) = serial_cache
            .summaries_of(&j.name)
            .unwrap_or_else(|| panic!("{}: missing from serial cache", j.name));
        let (p_src, p_graph, p_sums) = parallel_cache
            .summaries_of(&j.name)
            .unwrap_or_else(|| panic!("{}: missing from parallel cache", j.name));
        assert_eq!(
            (s_src, s_graph),
            (p_src, p_graph),
            "{}: keys differ",
            j.name
        );
        assert_eq!(
            s_sums.len(),
            alias::SolverSpec::all().len(),
            "{}: one summary payload per solver",
            j.name
        );
        for (solver, s) in &s_sums {
            let p = p_sums
                .get(solver)
                .unwrap_or_else(|| panic!("{}: {solver} missing from parallel cache", j.name));
            assert_eq!(
                **s, **p,
                "{}: {solver} summaries depend on the thread count",
                j.name
            );
        }
    }
}

/// The full five-solver stack, one edit per benchmark, under one
/// worker thread and auto parallelism: the dumps must agree with a
/// from-scratch run *and* across thread counts.
#[test]
fn full_solver_stack_is_equivalent_under_one_and_many_threads() {
    let base = Job::suite();
    let edited: Vec<Job> = base
        .iter()
        .enumerate()
        .map(|(bi, j)| {
            // A failed edit keeps the original source — that bench then
            // exercises the replay tier instead, which is fine.
            match apply_random_edit(&j.source, 0xFEED ^ bi as u64) {
                Some(step) => job(&j.name, &step.source),
                None => j.clone(),
            }
        })
        .collect();
    let mut dumps_by_threads: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 0] {
        let e = Engine::new().threads(threads);
        let prev = e.run(&base).expect("baseline run");
        let inc = e.analyze_incremental(&prev, &edited).expect("incremental");
        let fresh = e.run(&edited).expect("fresh");
        assert_equivalent(&inc, &fresh, &format!("threads={threads}"));
        dumps_by_threads.push(
            inc.benches
                .iter()
                .flat_map(|b| {
                    b.solutions
                        .iter()
                        .map(|s| solution_dump(s.solution.as_deref().unwrap(), &b.graph))
                })
                .collect(),
        );
    }
    assert_eq!(
        dumps_by_threads[0], dumps_by_threads[1],
        "solutions must not depend on the worker-thread count"
    );
}
