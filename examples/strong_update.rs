//! Demonstrates strong updates (paper §2/§3.1): a definite write through
//! a pointer to a single-instance location *kills* the location's old
//! binding, while writes through weakly-updateable paths (array elements,
//! heap cells) only add.
//!
//! ```sh
//! cargo run --example strong_update
//! ```

use alias::{Analysis, SolverSpec};

const SOURCE: &str = r#"
    int a; int b;
    int *strong_p;      /* single-instance global: strongly updateable  */
    int *weak_arr[4];   /* array contents: never strongly updateable    */

    int main(void) {
        int **q;
        strong_p = &a;
        q = &strong_p;
        *q = &b;          /* definite overwrite: kills strong_p -> a    */

        weak_arr[0] = &a;
        weak_arr[1] = &b; /* weak: weak_arr[*] accumulates both         */

        return *strong_p + *(weak_arr[0]);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Analysis::of_source(SOURCE)?;
    let graph = &analysis.graph;

    let show = |title: &str, ci: &alias::CiResult| {
        println!("{title}");
        for (node, is_write) in graph.indirect_mem_ops() {
            if is_write {
                continue;
            }
            let names: Vec<String> = ci
                .loc_referents(graph, node)
                .iter()
                .map(|&p| ci.paths.display(p, graph))
                .collect();
            println!(
                "  read at {:?} may reference {{{}}}",
                graph.node(node).span,
                names.join(", ")
            );
        }
        println!();
    };

    show("with strong updates (paper default):", &analysis.ci);

    let weak = SolverSpec::ci().strong_updates(false).solve_ci(graph);
    show("ablation — strong updates disabled:", &weak);

    println!(
        "The `*strong_p` read sees only `b` under strong updates but both\n\
         `a` and `b` without them; the array read sees both either way."
    );
    Ok(())
}
