//! One-screen report over the whole benchmark suite: sizes, analysis
//! results, and the headline verdict — a compact version of what the
//! `bench-harness` figure binaries print individually, produced by a
//! single parallel engine invocation instead of a serial loop.
//!
//! ```sh
//! cargo run --release -p engine --example suite_report
//! ```

use alias::solver::SolverSpec;
use alias::stats::{compare_at_indirect_refs, spurious_row};
use engine::Engine;
use vdg::stats::size_stats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = Engine::new()
        .specs(&[SolverSpec::ci(), SolverSpec::cs()])
        .run_suite()?;
    println!(
        "{:<10} {:>6} {:>6} {:>9} {:>9} {:>7} {:>6} {:>9}",
        "name", "lines", "nodes", "CI pairs", "CS pairs", "spur%", "refs", "verdict"
    );
    let mut total_refs = 0usize;
    let mut total_mismatches = 0usize;
    for b in &run.benches {
        let cs = b.cs().expect("CS within budget");
        let sizes = size_stats(&b.graph, &b.source);
        let row = spurious_row(&b.graph, &b.ci, cs);
        let mismatches = compare_at_indirect_refs(&b.graph, &b.ci, cs);
        let refs = b.graph.indirect_mem_ops().len();
        total_refs += refs;
        total_mismatches += mismatches.len();
        println!(
            "{:<10} {:>6} {:>6} {:>9} {:>9} {:>7.1} {:>6} {:>9}",
            b.name,
            sizes.lines,
            sizes.nodes,
            row.ci_total,
            row.cs.total(),
            row.percent_spurious,
            refs,
            if mismatches.is_empty() {
                "tie"
            } else {
                "DIFFERS"
            },
        );
    }
    println!(
        "\n{total_refs} indirect memory references across the suite, \
         {total_mismatches} where context-sensitivity changed the answer."
    );
    if total_mismatches == 0 {
        println!("The paper's §4.3 headline reproduces.");
    }
    println!(
        "(analyzed on {} thread(s) in {:.2?})",
        run.report.threads, run.report.total_wall
    );
    Ok(())
}
