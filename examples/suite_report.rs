//! One-screen report over the whole benchmark suite: sizes, analysis
//! results, and the headline verdict — a compact version of what the
//! `bench-harness` figure binaries print individually.
//!
//! ```sh
//! cargo run --release --example suite_report
//! ```

use alias::stats::{compare_at_indirect_refs, indirect_ref_rows, spurious_row};
use alias::{analyze_ci, analyze_cs, CiConfig, CsConfig};
use vdg::build::{lower, BuildOptions};
use vdg::stats::size_stats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>6} {:>6} {:>9} {:>9} {:>7} {:>6} {:>9}",
        "name", "lines", "nodes", "CI pairs", "CS pairs", "spur%", "refs", "verdict"
    );
    let mut total_refs = 0usize;
    let mut total_mismatches = 0usize;
    for b in suite::benchmarks() {
        let prog = cfront::compile(b.source)?;
        let graph = lower(&prog, &BuildOptions::default())?;
        let sizes = size_stats(&graph, b.source);
        let ci = analyze_ci(&graph, &CiConfig::default());
        let cs = analyze_cs(&graph, &ci, &CsConfig::default())?;
        let row = spurious_row(&graph, &ci, &cs);
        let mismatches = compare_at_indirect_refs(&graph, &ci, &cs);
        let refs = graph.indirect_mem_ops().len();
        total_refs += refs;
        total_mismatches += mismatches.len();
        println!(
            "{:<10} {:>6} {:>6} {:>9} {:>9} {:>7.1} {:>6} {:>9}",
            b.name,
            sizes.lines,
            sizes.nodes,
            row.ci_total,
            row.cs.total(),
            row.percent_spurious,
            refs,
            if mismatches.is_empty() { "tie" } else { "DIFFERS" },
        );
        let (r, w) = indirect_ref_rows(&graph, &ci);
        let _ = (r, w);
    }
    println!(
        "\n{total_refs} indirect memory references across the suite, \
         {total_mismatches} where context-sensitivity changed the answer."
    );
    if total_mismatches == 0 {
        println!("The paper's §4.3 headline reproduces.");
    }
    Ok(())
}
