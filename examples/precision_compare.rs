//! Compares the context-insensitive and context-sensitive analyses on
//! two programs: one where context-sensitivity genuinely wins at a
//! dereference (easy to construct, as the paper admits), and one in the
//! style of the benchmark suite where all the extra precision lands on
//! dead store pairs and no dereference improves — the paper's headline.
//!
//! ```sh
//! cargo run --example precision_compare
//! ```

use alias::stats::{compare_at_indirect_refs, spurious_row};
use alias::{Analysis, CsConfig};

const CS_WINS: &str = r#"
    int a; int b;
    int *id(int *p) { return p; }
    int main(void) {
        int *x; int *y;
        x = id(&a);
        y = id(&b);
        return *x + *y;
    }
"#;

const CS_TIES: &str = r#"
    int buffer;
    void fetch(int **slot) { *slot = &buffer; }
    int reader_one(void) { int *r; fetch(&r); return *r; }
    int reader_two(void) { int *r; fetch(&r); return *r; }
    int main(void) { return reader_one() + reader_two(); }
"#;

fn report(title: &str, source: &str) -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Analysis::of_source(source)?;
    let cs = analysis.run_cs(&CsConfig::default())?;
    let graph = &analysis.graph;
    let ci = &analysis.ci;
    let row = spurious_row(graph, ci, &cs);
    let mismatches = compare_at_indirect_refs(graph, ci, &cs);

    println!("== {title} ==");
    println!(
        "  CI pairs: {}   CS pairs: {}   spurious: {:.1}%",
        row.ci_total,
        row.cs.total(),
        row.percent_spurious
    );
    if mismatches.is_empty() {
        println!("  every indirect memory reference is IDENTICAL under CI and CS");
    } else {
        println!("  {} indirect reference(s) differ:", mismatches.len());
        for m in &mismatches {
            println!(
                "    {}: CI {{{}}} vs CS {{{}}}",
                if m.is_write { "write" } else { "read" },
                m.ci_referents.join(", "),
                m.cs_referents.join(", ")
            );
        }
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    report("adversarial program (context-sensitivity wins)", CS_WINS)?;
    report("suite-style program (the paper's headline: a tie)", CS_TIES)?;
    println!(
        "The paper's result: on all thirteen benchmark programs, the second\n\
         pattern dominates — run `cargo run -p bench-harness --bin headline`."
    );
    Ok(())
}
