//! Dead-store detection built on the def/use client: an `update` no
//! `lookup` ever observes writes a value the program never reads — the
//! kind of optimization whose quality "depends crucially on the ability
//! to approximate the targets of indirect memory operations" (paper
//! introduction).
//!
//! ```sh
//! cargo run --example dead_store
//! ```

use alias::defuse::def_use;
use alias::Analysis;
use std::collections::HashSet;

const SOURCE: &str = r#"
    int config;
    int scratch;

    void set_config(int *slot, int v) { *slot = v; }

    int main(void) {
        int result;
        set_config(&config, 10);   /* feeds the read below              */
        set_config(&scratch, 99);  /* scratch is never read...          */
        result = config * 2;
        scratch = 5;               /* ...and this direct store is dead  */
        return result;
    }
"#;

// Note what the report shows: the *shared* store inside `set_config` is
// one VDG node writing {config, scratch}; because the `config` call is
// live, the node is live — a context-insensitive client cannot claim the
// `scratch` call's write separately. (And per the paper's headline, the
// context-sensitive analysis would not change the node-level answer
// either: both callers' targets are realizable at that update.) The
// direct `scratch = 5` store, by contrast, is provably dead.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = Analysis::of_source(SOURCE)?;
    let du = def_use(&a.graph, &a.ci, &a.ci.callees);

    let live: HashSet<vdg::NodeId> = du.uses.values().flatten().copied().collect();
    let file = cfront::SourceFile::new("dead_store.c", SOURCE);

    println!("stores and their liveness (CI points-to + def/use):\n");
    let mut dead = 0;
    for (node, is_write) in a.graph.all_mem_ops() {
        if !is_write {
            continue;
        }
        let span = a.graph.node(node).span;
        let lc = file.line_col(span.start);
        let targets: Vec<String> =
            a.ci.loc_referents(&a.graph, node)
                .iter()
                .map(|&p| a.ci.paths.display(p, &a.graph))
                .collect();
        let status = if live.contains(&node) {
            "live"
        } else {
            dead += 1;
            "DEAD"
        };
        println!(
            "  line {:>2}: write to {{{}}} — {}",
            lc.line,
            targets.join(", "),
            status
        );
    }
    println!("\n{dead} dead store(s) found.");
    Ok(())
}
