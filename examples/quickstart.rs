//! Quickstart: run the context-insensitive points-to analysis on a small
//! C program and print what each indirect memory operation may touch.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use alias::Analysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        struct node { int v; struct node *next; };

        struct node *cons(int v, struct node *tail) {
            struct node *n;
            n = (struct node*)malloc(sizeof(struct node));
            n->v = v;
            n->next = tail;
            return n;
        }

        int sum(struct node *l) {
            int s;
            s = 0;
            while (l != NULL) {
                s += l->v;
                l = l->next;
            }
            return s;
        }

        int main(void) {
            struct node *list;
            list = cons(1, cons(2, cons(3, NULL)));
            return sum(list);
        }
    "#;

    let analysis = Analysis::of_source(source)?;
    let graph = &analysis.graph;
    let ci = &analysis.ci;

    println!(
        "VDG: {} nodes, {} outputs",
        graph.node_count(),
        graph.output_count()
    );
    println!(
        "analysis: {} flow-ins, {} flow-outs, {} total points-to pairs",
        ci.flow_ins,
        ci.flow_outs,
        ci.total_pairs()
    );
    println!();
    println!("indirect memory operations and the locations they may reference:");
    for (node, is_write) in graph.indirect_mem_ops() {
        let refs = ci.loc_referents(graph, node);
        let names: Vec<String> = refs.iter().map(|&p| ci.paths.display(p, graph)).collect();
        println!(
            "  {} at {:?}: {{{}}}",
            if is_write { "write" } else { "read " },
            graph.node(node).span,
            names.join(", ")
        );
    }
    Ok(())
}
