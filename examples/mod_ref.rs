//! Mod/ref analysis of a suite benchmark — the client application the
//! paper uses to motivate points-to precision (§3.2).
//!
//! ```sh
//! cargo run --example mod_ref [benchmark-name]
//! ```

use alias::modref::mod_ref;
use alias::Analysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "part".to_string());
    let bench = suite::by_name(&name)
        .ok_or_else(|| format!("unknown benchmark `{name}`; try `part` or `loader`"))?;

    let analysis = Analysis::of_source(bench.source)?;
    let graph = &analysis.graph;
    let ci = &analysis.ci;
    let summary = mod_ref(graph, ci, &ci.callees);

    println!("mod/ref summary for `{name}` (transitive, via the CI solution):\n");
    for f in graph.func_ids() {
        let info = graph.func(f);
        if info.name == "<root>" {
            continue;
        }
        let Some(mr) = summary.transitive.get(&f) else {
            continue;
        };
        let fmt = |set: &std::collections::BTreeSet<alias::PathId>| -> String {
            let mut v: Vec<String> = set.iter().map(|&p| ci.paths.display(p, graph)).collect();
            v.sort();
            if v.len() > 8 {
                format!("{} locations", v.len())
            } else {
                format!("{{{}}}", v.join(", "))
            }
        };
        println!(
            "  {:<16} ref {:<40} mod {}",
            info.name,
            fmt(&mr.refs),
            fmt(&mr.mods)
        );
    }
    Ok(())
}
